//! Linear-algebra benchmarks: vector add, tiled matrix multiply, a matmul
//! chain, LU decomposition, scalar product and segmented reduction — plus
//! real-compute runners for the ones the examples and tests exercise
//! numerically.

use crate::suite::{Benchmark, Boundedness};
use synergy_kernel::{Inst, IrBuilder, KernelIr};
use synergy_rt::{Buffer, Event, Queue};

/// `z[i] = x[i] + y[i]` — the canonical streaming (memory-bound) kernel.
pub fn vec_add() -> Benchmark {
    let ir = IrBuilder::new()
        .ops(Inst::GlobalLoad, 2)
        .ops(Inst::FloatAdd, 1)
        .ops(Inst::GlobalStore, 1)
        .build("vec_add");
    Benchmark {
        name: "vec_add",
        description: "streaming elementwise vector addition",
        ir,
        work_items: 1 << 24,
        bound: Boundedness::MemoryBound,
    }
}

/// Run vec_add with real numerics.
pub fn run_vec_add(q: &Queue, x: &Buffer<f32>, y: &Buffer<f32>, z: &Buffer<f32>) -> Event {
    let n = x.len();
    assert_eq!(n, y.len());
    assert_eq!(n, z.len());
    let (xa, ya, za) = (x.accessor(), y.accessor(), z.accessor());
    let ir = vec_add().ir;
    q.submit(move |h| {
        h.parallel_for(n, &ir, move |i| za.set(i, xa.get(i) + ya.get(i)));
    })
}

/// Tile width of the shared-memory matmul.
pub const MATMUL_TILE: u64 = 4;
/// Inner dimension of the default matmul problem.
pub const MATMUL_K: u64 = 512;

fn mat_mul_ir(name: &str, k: u64) -> KernelIr {
    // One output element per work-item; K/TILE tiles, each staging two
    // elements per item into local memory then doing TILE MACs out of it.
    IrBuilder::new()
        .loop_n(k / MATMUL_TILE, |b| {
            b.ops(Inst::GlobalLoad, 2)
                .ops(Inst::LocalStore, 2)
                .loop_n(MATMUL_TILE, |b| {
                    b.ops(Inst::LocalLoad, 2)
                        .ops(Inst::FloatMul, 1)
                        .ops(Inst::FloatAdd, 1)
                })
        })
        .ops(Inst::GlobalStore, 1)
        .build(name)
}

/// Tiled GEMM. Calibrated just under the V100 balance point so its Pareto
/// front is flat in speedup (Section 8.2: 0.95–1.01) with a steep energy
/// slope (33% saving at 5% loss).
pub fn mat_mul() -> Benchmark {
    Benchmark {
        name: "mat_mul",
        description: "tiled single-precision matrix multiplication",
        ir: mat_mul_ir("mat_mul", MATMUL_K),
        work_items: 1024 * 1024,
        bound: Boundedness::MemoryBound,
    }
}

/// Two chained GEMMs (A·B·C); slightly more compute per byte than mat_mul.
pub fn matmul_chain() -> Benchmark {
    let mut ir = mat_mul_ir("matmul_chain", MATMUL_K);
    // The chain reuses the intermediate from cache: ~30% more arithmetic
    // per DRAM byte.
    ir.body.push(synergy_kernel::Stmt::loop_n(
        MATMUL_K / 8,
        vec![
            synergy_kernel::Stmt::ops(Inst::FloatMul, 1),
            synergy_kernel::Stmt::ops(Inst::FloatAdd, 1),
        ],
    ));
    Benchmark {
        name: "matmul_chain",
        description: "chained matrix multiplications sharing an intermediate",
        ir,
        work_items: 1024 * 1024,
        bound: Boundedness::Mixed,
    }
}

/// Dense matmul with real numerics: `c = a·b` for `n × n` matrices
/// (row-major), launched one work-item per output element.
pub fn run_mat_mul(
    q: &Queue,
    a: &Buffer<f32>,
    b: &Buffer<f32>,
    c: &Buffer<f32>,
    n: usize,
) -> Event {
    assert_eq!(a.len(), n * n);
    assert_eq!(b.len(), n * n);
    assert_eq!(c.len(), n * n);
    let (aa, ba, ca) = (a.accessor(), b.accessor(), c.accessor());
    let ir = mat_mul_ir("mat_mul", n as u64);
    q.submit(move |h| {
        h.parallel_for(n * n, &ir, move |idx| {
            let (row, col) = (idx / n, idx % n);
            let mut acc = 0.0f32;
            for k in 0..n {
                acc += aa.get(row * n + k) * ba.get(k * n + col);
            }
            ca.set(idx, acc);
        });
    })
}

/// LU decomposition (one elimination step per item over a band).
pub fn lud() -> Benchmark {
    let ir = IrBuilder::new()
        .ops(Inst::GlobalLoad, 4)
        .loop_n(170, |b| b.ops(Inst::FloatMul, 1).ops(Inst::FloatAdd, 1))
        .ops(Inst::FloatDiv, 1)
        .ops(Inst::GlobalStore, 1)
        .build("lud")
        .with_dram_fraction(0.4);
    Benchmark {
        name: "lud",
        description: "blocked LU decomposition elimination step",
        ir,
        work_items: 1 << 20,
        bound: Boundedness::Mixed,
    }
}

/// Scalar (dot) product with local-memory tree reduction.
pub fn scalar_prod() -> Benchmark {
    let ir = IrBuilder::new()
        .ops(Inst::GlobalLoad, 2)
        .ops(Inst::FloatMul, 1)
        .ops(Inst::FloatAdd, 2)
        .ops(Inst::LocalStore, 1)
        .ops(Inst::LocalLoad, 1)
        .ops(Inst::IntBitwise, 2)
        .ops(Inst::GlobalStore, 1)
        .build("scalar_prod");
    Benchmark {
        name: "scalar_prod",
        description: "dot product with work-group tree reduction",
        ir,
        work_items: 1 << 24,
        bound: Boundedness::MemoryBound,
    }
}

/// Real scalar product; returns the partial sums buffer (one per chunk).
pub fn run_scalar_prod(
    q: &Queue,
    x: &Buffer<f32>,
    y: &Buffer<f32>,
    partials: &Buffer<f32>,
    chunk: usize,
) -> Event {
    let n = x.len();
    assert_eq!(n, y.len());
    assert_eq!(partials.len(), n.div_ceil(chunk));
    let (xa, ya, pa) = (x.accessor(), y.accessor(), partials.accessor());
    let ir = scalar_prod().ir;
    let groups = partials.len();
    q.submit(move |h| {
        h.parallel_for(groups, &ir, move |g| {
            let lo = g * chunk;
            let hi = (lo + chunk).min(n);
            let mut acc = 0.0f32;
            for i in lo..hi {
                acc += xa.get(i) * ya.get(i);
            }
            pa.set(g, acc);
        });
    })
}

/// Segmented reduction: per-element add into its segment accumulator.
pub fn segmented_reduction() -> Benchmark {
    let ir = IrBuilder::new()
        .ops(Inst::GlobalLoad, 2)
        .ops(Inst::IntAdd, 2)
        .ops(Inst::IntBitwise, 2)
        .ops(Inst::FloatAdd, 1)
        .ops(Inst::GlobalStore, 1)
        .build("segmented_reduction");
    Benchmark {
        name: "segmented_reduction",
        description: "reduction over irregular segments",
        ir,
        work_items: 1 << 24,
        bound: Boundedness::MemoryBound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use synergy_sim::{DeviceSpec, SimDevice};

    fn queue() -> Queue {
        Queue::new(SimDevice::new(DeviceSpec::v100(), 0))
    }

    #[test]
    fn vec_add_computes() {
        let q = queue();
        let n = 4096;
        let x = Buffer::from_slice(&vec![1.5f32; n]);
        let y = Buffer::from_slice(&vec![2.5f32; n]);
        let z: Buffer<f32> = Buffer::zeros(n);
        run_vec_add(&q, &x, &y, &z).wait();
        assert!(z.to_vec().iter().all(|&v| v == 4.0));
    }

    #[test]
    fn mat_mul_matches_reference() {
        let q = queue();
        let n = 24;
        let a: Vec<f32> = (0..n * n).map(|i| (i % 7) as f32 - 3.0).collect();
        let b: Vec<f32> = (0..n * n).map(|i| (i % 5) as f32 * 0.5).collect();
        let ab = Buffer::from_slice(&a);
        let bb = Buffer::from_slice(&b);
        let cb: Buffer<f32> = Buffer::zeros(n * n);
        run_mat_mul(&q, &ab, &bb, &cb, n).wait();
        let c = cb.to_vec();
        // Reference check of a few entries.
        for &(i, j) in &[(0usize, 0usize), (3, 7), (n - 1, n - 1)] {
            let want: f32 = (0..n).map(|k| a[i * n + k] * b[k * n + j]).sum();
            assert!((c[i * n + j] - want).abs() < 1e-3);
        }
    }

    #[test]
    fn scalar_prod_sums_correctly() {
        let q = queue();
        let n = 10_000;
        let x = Buffer::from_slice(&vec![2.0f32; n]);
        let y = Buffer::from_slice(&vec![3.0f32; n]);
        let chunk = 256;
        let partials: Buffer<f32> = Buffer::zeros(n.div_ceil(chunk));
        run_scalar_prod(&q, &x, &y, &partials, chunk).wait();
        let total: f32 = partials.to_vec().iter().sum();
        assert_eq!(total, 60_000.0);
    }

    #[test]
    fn mat_mul_sits_below_balance_on_v100() {
        // The calibration promise: R < 1 so the Pareto front is flat.
        let spec = DeviceSpec::v100();
        let info = synergy_kernel::extract(&mat_mul().ir);
        let cycles: f64 = synergy_kernel::FeatureClass::ALL
            .iter()
            .map(|&c| spec.cpi[c as usize] * info.features[c])
            .sum();
        let r = cycles * spec.mem_bw_gbps * 1e9
            / (info.global_bytes_per_item
                * spec.total_lanes() as f64
                * spec.freq_table.max_core() as f64
                * 1e6);
        assert!(r < 1.0, "mat_mul R = {r:.2} should be memory-leaning");
        assert!(r > 0.3, "mat_mul R = {r:.2} should not be purely streaming");
    }

    #[test]
    fn device_shared_across_runs_advances_time() {
        let dev = SimDevice::new(DeviceSpec::v100(), 0);
        let q = Queue::new(Arc::clone(&dev));
        let x = Buffer::from_slice(&vec![0.0f32; 1024]);
        let y = Buffer::from_slice(&vec![0.0f32; 1024]);
        let z: Buffer<f32> = Buffer::zeros(1024);
        run_vec_add(&q, &x, &y, &z).wait();
        let t1 = dev.now_ns();
        run_vec_add(&q, &x, &y, &z).wait();
        assert!(dev.now_ns() > t1);
    }
}
