//! Physics and finance benchmarks: molecular dynamics, N-body (the most
//! compute-bound kernel of the suite), Black-Scholes (the mild-tradeoff
//! kernel of Figures 4 and 5), HotSpot thermal stencil and PathFinder
//! dynamic programming.

use crate::suite::{Benchmark, Boundedness};
use synergy_kernel::{Inst, IrBuilder};
use synergy_rt::{Buffer, Event, Queue};

/// Neighbours per atom in the molecular-dynamics force kernel.
pub const MOLDYN_NEIGHBORS: u64 = 32;

/// Lennard-Jones force evaluation over a fixed neighbour list.
pub fn mol_dyn() -> Benchmark {
    let ir = IrBuilder::new()
        .ops(Inst::GlobalLoad, 4)
        .loop_n(MOLDYN_NEIGHBORS, |b| {
            b.ops(Inst::GlobalLoad, 1)
                .ops(Inst::FloatAdd, 5)
                .ops(Inst::FloatMul, 6)
                .ops(Inst::FloatDiv, 1)
                .ops(Inst::SpecialFn, 1)
        })
        .ops(Inst::GlobalStore, 3)
        .build("mol_dyn")
        .with_dram_fraction(0.3);
    Benchmark {
        name: "mol_dyn",
        description: "Lennard-Jones force evaluation over neighbour lists",
        ir,
        work_items: 1 << 20,
        bound: Boundedness::ComputeBound,
    }
}

/// Bodies interacting per work-item (one on-chip tile).
pub const NBODY_TILE: u64 = 256;

/// All-pairs N-body tile: the classic compute-bound GPU kernel.
pub fn nbody() -> Benchmark {
    let ir = IrBuilder::new()
        .ops(Inst::GlobalLoad, 4)
        .loop_n(NBODY_TILE, |b| {
            b.ops(Inst::LocalLoad, 2)
                .ops(Inst::FloatAdd, 6)
                .ops(Inst::FloatMul, 6)
                .ops(Inst::SpecialFn, 1) // rsqrt
        })
        .ops(Inst::GlobalStore, 4)
        .build("nbody")
        .with_dram_fraction(0.5);
    Benchmark {
        name: "nbody",
        description: "all-pairs gravitational N-body (tiled)",
        ir,
        work_items: 1 << 17,
        bound: Boundedness::ComputeBound,
    }
}

/// Run one real N-body acceleration step over `n` bodies in 2-D
/// (positions `[x0, y0, x1, y1, ...]`, softened gravity, unit masses).
pub fn run_nbody_step(
    q: &Queue,
    pos: &Buffer<f32>,
    acc: &Buffer<f32>,
    softening: f32,
) -> Event {
    let n = pos.len() / 2;
    assert_eq!(acc.len(), pos.len());
    let (pa, aa) = (pos.accessor(), acc.accessor());
    let ir = nbody().ir;
    q.submit(move |h| {
        h.parallel_for(n, &ir, move |i| {
            let (xi, yi) = (pa.get(2 * i), pa.get(2 * i + 1));
            let (mut ax, mut ay) = (0.0f32, 0.0f32);
            for j in 0..n {
                if j == i {
                    continue;
                }
                let dx = pa.get(2 * j) - xi;
                let dy = pa.get(2 * j + 1) - yi;
                let d2 = dx * dx + dy * dy + softening * softening;
                let inv = 1.0 / (d2 * d2.sqrt());
                ax += dx * inv;
                ay += dy * inv;
            }
            aa.set(2 * i, ax);
            aa.set(2 * i + 1, ay);
        });
    })
}

/// Black-Scholes European option pricing — the kernel of Figures 4 and 5:
/// transcendental-heavy but streaming, yielding the classic mild tradeoff
/// curve where MIN_EDP sits between MIN_ENERGY and MAX_PERF.
pub fn black_scholes() -> Benchmark {
    let ir = IrBuilder::new()
        .ops(Inst::GlobalLoad, 3)
        .ops(Inst::FloatMul, 20)
        .ops(Inst::FloatAdd, 15)
        .ops(Inst::FloatDiv, 2)
        .ops(Inst::SpecialFn, 8) // exp, log, sqrt, CND polynomials
        .ops(Inst::GlobalStore, 2)
        .build("black_scholes");
    Benchmark {
        name: "black_scholes",
        description: "Black-Scholes European option pricing",
        ir,
        work_items: 1 << 23,
        bound: Boundedness::Mixed,
    }
}

/// Real Black-Scholes call/put pricing.
///
/// Inputs: spot, strike, time-to-expiry (years). Rate and volatility are
/// scalar parameters. Outputs: call and put premia.
#[allow(clippy::too_many_arguments)] // mirrors the kernel's parameter list
pub fn run_black_scholes(
    q: &Queue,
    spot: &Buffer<f32>,
    strike: &Buffer<f32>,
    expiry: &Buffer<f32>,
    call: &Buffer<f32>,
    put: &Buffer<f32>,
    rate: f32,
    vol: f32,
) -> Event {
    let n = spot.len();
    for b in [strike.len(), expiry.len(), call.len(), put.len()] {
        assert_eq!(b, n);
    }
    let (sa, ka, ta, ca, pa) = (
        spot.accessor(),
        strike.accessor(),
        expiry.accessor(),
        call.accessor(),
        put.accessor(),
    );
    let ir = black_scholes().ir;
    q.submit(move |h| {
        h.parallel_for(n, &ir, move |i| {
            let s = sa.get(i);
            let k = ka.get(i);
            let t = ta.get(i);
            let sqrt_t = t.sqrt();
            let d1 = ((s / k).ln() + (rate + 0.5 * vol * vol) * t) / (vol * sqrt_t);
            let d2 = d1 - vol * sqrt_t;
            let disc = (-rate * t).exp();
            let c = s * cnd(d1) - k * disc * cnd(d2);
            ca.set(i, c);
            // Put-call parity.
            pa.set(i, c - s + k * disc);
        });
    })
}

/// Cumulative normal distribution (Abramowitz–Stegun polynomial).
pub fn cnd(x: f32) -> f32 {
    const A: [f32; 5] = [0.319_381_54, -0.356_563_78, 1.781_477_9, -1.821_255_9, 1.330_274_5];
    let l = x.abs();
    let k = 1.0 / (1.0 + 0.2316419 * l);
    let poly = k * (A[0] + k * (A[1] + k * (A[2] + k * (A[3] + k * A[4]))));
    let w = 1.0 - (-l * l / 2.0).exp() / (2.0 * std::f32::consts::PI).sqrt() * poly;
    if x < 0.0 {
        1.0 - w
    } else {
        w
    }
}

/// HotSpot 5-point thermal stencil.
pub fn hotspot() -> Benchmark {
    let ir = IrBuilder::new()
        .ops(Inst::IntAdd, 4)
        .ops(Inst::GlobalLoad, 7)
        .ops(Inst::FloatMul, 6)
        .ops(Inst::FloatAdd, 6)
        .ops(Inst::GlobalStore, 1)
        .build("hotspot")
        .with_dram_fraction(0.25);
    Benchmark {
        name: "hotspot",
        description: "HotSpot thermal simulation stencil",
        ir,
        work_items: 2048 * 2048,
        bound: Boundedness::Mixed,
    }
}

/// PathFinder dynamic-programming row relaxation.
pub fn pathfinder() -> Benchmark {
    let ir = IrBuilder::new()
        .ops(Inst::GlobalLoad, 4)
        .ops(Inst::IntAdd, 6)
        .ops(Inst::IntBitwise, 4)
        .ops(Inst::GlobalStore, 1)
        .build("pathfinder")
        .with_dram_fraction(0.5);
    Benchmark {
        name: "pathfinder",
        description: "PathFinder shortest-path DP row relaxation",
        ir,
        work_items: 1 << 23,
        bound: Boundedness::MemoryBound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synergy_sim::{DeviceSpec, SimDevice};

    fn queue() -> Queue {
        Queue::new(SimDevice::new(DeviceSpec::v100(), 0))
    }

    #[test]
    fn black_scholes_matches_known_value() {
        // S=100, K=100, T=1, r=5%, vol=20%: call ≈ 10.4506, put ≈ 5.5735.
        let q = queue();
        let s = Buffer::from_slice(&[100.0f32]);
        let k = Buffer::from_slice(&[100.0f32]);
        let t = Buffer::from_slice(&[1.0f32]);
        let c: Buffer<f32> = Buffer::zeros(1);
        let p: Buffer<f32> = Buffer::zeros(1);
        run_black_scholes(&q, &s, &k, &t, &c, &p, 0.05, 0.20).wait();
        assert!((c.to_vec()[0] - 10.4506).abs() < 0.01, "call {}", c.to_vec()[0]);
        assert!((p.to_vec()[0] - 5.5735).abs() < 0.01, "put {}", p.to_vec()[0]);
    }

    #[test]
    fn put_call_parity_holds_across_grid() {
        let q = queue();
        let n = 64;
        let spots: Vec<f32> = (0..n).map(|i| 50.0 + i as f32).collect();
        let strikes = vec![90.0f32; n];
        let expiries: Vec<f32> = (0..n).map(|i| 0.25 + (i as f32) * 0.01).collect();
        let (r, v) = (0.03f32, 0.25f32);
        let sb = Buffer::from_slice(&spots);
        let kb = Buffer::from_slice(&strikes);
        let tb = Buffer::from_slice(&expiries);
        let cb: Buffer<f32> = Buffer::zeros(n);
        let pb: Buffer<f32> = Buffer::zeros(n);
        run_black_scholes(&q, &sb, &kb, &tb, &cb, &pb, r, v).wait();
        let (c, p) = (cb.to_vec(), pb.to_vec());
        for i in 0..n {
            let parity = c[i] - p[i];
            let want = spots[i] - strikes[i] * (-r * expiries[i]).exp();
            assert!((parity - want).abs() < 1e-3, "i={i}");
        }
    }

    #[test]
    fn nbody_two_bodies_attract() {
        let q = queue();
        let pos = Buffer::from_slice(&[0.0f32, 0.0, 1.0, 0.0]);
        let acc: Buffer<f32> = Buffer::zeros(4);
        run_nbody_step(&q, &pos, &acc, 0.01).wait();
        let a = acc.to_vec();
        assert!(a[0] > 0.0, "body 0 pulled towards +x");
        assert!(a[2] < 0.0, "body 1 pulled towards -x");
        assert!((a[0] + a[2]).abs() < 1e-3, "forces are equal and opposite");
    }

    #[test]
    fn nbody_is_most_compute_bound() {
        let spec = DeviceSpec::v100();
        let ratio = |b: &Benchmark| {
            let info = synergy_kernel::extract(&b.ir);
            let cycles: f64 = synergy_kernel::FeatureClass::ALL
                .iter()
                .map(|&c| spec.cpi[c as usize] * info.features[c])
                .sum();
            cycles * spec.mem_bw_gbps * 1e9
                / (info.global_bytes_per_item
                    * spec.total_lanes() as f64
                    * spec.freq_table.max_core() as f64
                    * 1e6)
        };
        assert!(ratio(&nbody()) > 10.0);
        assert!(ratio(&nbody()) > ratio(&black_scholes()));
        assert!(ratio(&black_scholes()) > ratio(&pathfinder()));
    }
}
