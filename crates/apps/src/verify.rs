//! One-stop verification runner: executes a *small real instance* of any
//! suite benchmark through a queue — every one of the 23 kernels has a
//! genuine numeric implementation, not just a model. Used by integration
//! tests and handy for smoke-testing new device models.

use crate::{datamining, image, linalg, physics, reference};
use synergy_rt::{Buffer, Queue};

/// Run a small real-compute instance of benchmark `name` through `q`.
/// Returns `false` for unknown names; panics only if a runner's own
/// numeric sanity check fails.
pub fn run_small_reference(q: &Queue, name: &str) -> bool {
    let n = 1 << 12;
    let (w, h) = (32usize, 32usize);
    let img: Vec<f32> = (0..w * h).map(|i| (i % 97) as f32 / 97.0).collect();
    match name {
        "vec_add" => {
            let x = Buffer::from_slice(&vec![1.0f32; n]);
            let y = Buffer::from_slice(&vec![2.0f32; n]);
            let z: Buffer<f32> = Buffer::zeros(n);
            linalg::run_vec_add(q, &x, &y, &z).wait();
            assert_eq!(z.to_vec()[0], 3.0);
        }
        "mat_mul" => {
            let m = 16;
            let a = Buffer::from_slice(&vec![1.0f32; m * m]);
            let b = Buffer::from_slice(&vec![2.0f32; m * m]);
            let c: Buffer<f32> = Buffer::zeros(m * m);
            linalg::run_mat_mul(q, &a, &b, &c, m).wait();
            assert_eq!(c.to_vec()[0], 2.0 * m as f32);
        }
        "matmul_chain" => {
            let m = 8;
            let a = Buffer::from_slice(&vec![1.0f32; m * m]);
            let b = Buffer::from_slice(&vec![1.0f32; m * m]);
            let c = Buffer::from_slice(&vec![1.0f32; m * m]);
            let tmp: Buffer<f32> = Buffer::zeros(m * m);
            let out: Buffer<f32> = Buffer::zeros(m * m);
            reference::run_matmul_chain(q, &a, &b, &c, &tmp, &out, m);
            assert_eq!(out.to_vec()[0], (m * m) as f32);
        }
        "lud" => {
            let m = 6;
            let mut a = vec![0.5f32; m * m];
            for i in 0..m {
                a[i * m + i] = 8.0;
            }
            let buf = Buffer::from_slice(&a);
            reference::run_lud(q, &buf, m);
            assert!(buf.to_vec().iter().all(|v| v.is_finite()));
        }
        "scalar_prod" => {
            let x = Buffer::from_slice(&vec![1.5f32; n]);
            let y = Buffer::from_slice(&vec![2.0f32; n]);
            let p: Buffer<f32> = Buffer::zeros(n.div_ceil(256));
            linalg::run_scalar_prod(q, &x, &y, &p, 256).wait();
            let total: f32 = p.to_vec().iter().sum();
            assert_eq!(total, 3.0 * n as f32);
        }
        "segmented_reduction" => {
            let d = Buffer::from_slice(&vec![1.0f32; n]);
            let s: Buffer<f32> = Buffer::zeros(n.div_ceil(64));
            reference::run_segmented_reduction(q, &d, &s, 64).wait();
            assert_eq!(s.to_vec()[0], 64.0);
        }
        "sobel3" => {
            let src = Buffer::from_slice(&img);
            let dst: Buffer<f32> = Buffer::zeros(w * h);
            image::run_sobel3(q, &src, &dst, w, h).wait();
        }
        "sobel5" | "sobel7" => {
            let width = if name == "sobel5" { 5 } else { 7 };
            let src = Buffer::from_slice(&img);
            let dst: Buffer<f32> = Buffer::zeros(w * h);
            reference::run_sobel(q, width, &src, &dst, w, h).wait();
        }
        "median_filter" => {
            let src = Buffer::from_slice(&img);
            let dst: Buffer<f32> = Buffer::zeros(w * h);
            image::run_median_filter(q, &src, &dst, w, h).wait();
        }
        "gaussian_blur" => {
            let src = Buffer::from_slice(&img);
            let dst: Buffer<f32> = Buffer::zeros(w * h);
            reference::run_gaussian_blur(q, &src, &dst, w, h).wait();
        }
        "susan" => {
            let src = Buffer::from_slice(&img);
            let usan: Buffer<f32> = Buffer::zeros(w * h);
            reference::run_susan(q, &src, &usan, w, h, 0.1).wait();
        }
        "linear_regression" => {
            let xs = Buffer::from_slice(&vec![1.0f32; 64]);
            let ys = Buffer::from_slice(&vec![2.0f32; 64]);
            let s = Buffer::from_slice(&[2.0f32]);
            let b = Buffer::from_slice(&[0.0f32]);
            let e: Buffer<f32> = Buffer::zeros(1);
            datamining::run_linear_regression(q, &xs, &ys, &s, &b, &e).wait();
            assert!(e.to_vec()[0] < 1e-6);
        }
        "lin_reg_coeff" => {
            let xs: Vec<f32> = (0..64).map(|i| i as f32).collect();
            let ys: Vec<f32> = xs.iter().map(|&x| 3.0 * x).collect();
            let c: Buffer<f32> = Buffer::zeros(1);
            reference::run_lin_reg_coeff(
                q,
                &Buffer::from_slice(&xs),
                &Buffer::from_slice(&ys),
                &c,
                64,
            )
            .wait();
            assert!((c.to_vec()[0] - 1.0).abs() < 1e-3);
        }
        "kmeans" => {
            use datamining::{KMEANS_DIM, KMEANS_K};
            let pts = Buffer::from_slice(&vec![0.0f32; 32 * KMEANS_DIM]);
            let cents = Buffer::from_slice(&vec![1.0f32; KMEANS_K * KMEANS_DIM]);
            let assign: Buffer<u32> = Buffer::zeros(32);
            datamining::run_kmeans_assign(q, &pts, &cents, &assign).wait();
        }
        "nearest_neighbor" => {
            let queries = Buffer::from_slice(&vec![0.0f32; 64]);
            let refs = Buffer::from_slice(&[1.0f32, 0.0]);
            let best: Buffer<f32> = Buffer::zeros(32);
            reference::run_nearest_neighbor(q, &queries, &refs, &best).wait();
        }
        "geometric_mean" => {
            let d = Buffer::from_slice(&vec![2.0f32; 64]);
            let m: Buffer<f32> = Buffer::zeros(1);
            reference::run_geometric_mean(q, &d, &m, 64).wait();
            assert!((m.to_vec()[0] - 2.0).abs() < 1e-4);
        }
        "mersenne_twister" => {
            let out: Buffer<f32> = Buffer::zeros(1 << 10);
            reference::run_mersenne_twister(q, 7, &out).wait();
        }
        "mol_dyn" => {
            let pos: Vec<f32> = (0..64).map(|i| i as f32 * 1.2).collect();
            let pb = Buffer::from_slice(&pos);
            let fb: Buffer<f32> = Buffer::zeros(64);
            reference::run_mol_dyn(q, &pb, &fb, 1.0, 1.0).wait();
        }
        "nbody" => {
            let pos = Buffer::from_slice(&vec![0.5f32; 64]);
            let acc: Buffer<f32> = Buffer::zeros(64);
            physics::run_nbody_step(q, &pos, &acc, 0.1).wait();
        }
        "black_scholes" => {
            let s = Buffer::from_slice(&[100.0f32; 32]);
            let k = Buffer::from_slice(&[95.0f32; 32]);
            let t = Buffer::from_slice(&[1.0f32; 32]);
            let c: Buffer<f32> = Buffer::zeros(32);
            let p: Buffer<f32> = Buffer::zeros(32);
            physics::run_black_scholes(q, &s, &k, &t, &c, &p, 0.05, 0.2).wait();
            assert!(c.to_vec()[0] > 0.0);
        }
        "hotspot" => {
            let tin = Buffer::from_slice(&img);
            let pw: Buffer<f32> = Buffer::zeros(w * h);
            let tout: Buffer<f32> = Buffer::zeros(w * h);
            reference::run_hotspot_step(q, &tin, &pw, &tout, w, h, 0.2).wait();
        }
        "pathfinder" => {
            let prev = Buffer::from_slice(&vec![1.0f32; 128]);
            let cost = Buffer::from_slice(&vec![1.0f32; 128]);
            let next: Buffer<f32> = Buffer::zeros(128);
            reference::run_pathfinder_row(q, &prev, &cost, &next).wait();
            assert_eq!(next.to_vec()[0], 2.0);
        }
        _ => return false,
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use synergy_sim::{DeviceSpec, SimDevice};

    #[test]
    fn every_suite_benchmark_is_runnable_with_real_numerics() {
        let q = synergy_rt::Queue::new(SimDevice::new(DeviceSpec::v100(), 0));
        for b in crate::suite() {
            assert!(
                run_small_reference(&q, b.name),
                "{} has no real-compute runner",
                b.name
            );
        }
        // The device actually executed one kernel per benchmark (some
        // runners submit more, e.g. LU's per-pivot steps).
        assert!(q.device().kernels_executed() >= 23);
    }

    #[test]
    fn unknown_names_return_false() {
        let q = synergy_rt::Queue::new(SimDevice::new(DeviceSpec::v100(), 0));
        assert!(!run_small_reference(&q, "not_a_benchmark"));
    }
}
