//! Reference (host-computed) implementations for the rest of the suite,
//! so that **every** benchmark is runnable with real numerics — not just
//! modeled. Each runner submits through the energy-aware queue with the
//! benchmark's calibrated IR, so profiling/frequency scaling applies to
//! real computations.

use crate::{datamining, image, linalg, physics};
use synergy_rt::{Buffer, Event, Queue};

/// Generic Sobel for width 3/5/7 (gradient magnitude with box-like taps).
pub fn run_sobel(
    q: &Queue,
    width: usize,
    src: &Buffer<f32>,
    dst: &Buffer<f32>,
    w: usize,
    h: usize,
) -> Event {
    assert!(matches!(width, 3 | 5 | 7));
    assert_eq!(src.len(), w * h);
    assert_eq!(dst.len(), w * h);
    let (sa, da) = (src.accessor(), dst.accessor());
    let bench = match width {
        3 => image::sobel3(),
        5 => image::sobel5(),
        _ => image::sobel7(),
    };
    let ir = bench.ir;
    let r = width / 2;
    q.submit(move |hd| {
        hd.parallel_for(w * h, &ir, move |idx| {
            let (x, y) = (idx % w, idx / w);
            if x < r || y < r || x + r >= w || y + r >= h {
                da.set(idx, 0.0);
                return;
            }
            // Separable derivative taps: weight = offset along the axis.
            let (mut gx, mut gy) = (0.0f32, 0.0f32);
            for dy in -(r as isize)..=(r as isize) {
                for dx in -(r as isize)..=(r as isize) {
                    let p = sa.get(
                        ((y as isize + dy) as usize) * w + (x as isize + dx) as usize,
                    );
                    gx += dx as f32 * p;
                    gy += dy as f32 * p;
                }
            }
            da.set(idx, (gx * gx + gy * gy).sqrt());
        });
    })
}

/// 5×5 Gaussian blur with σ≈1 binomial weights (normalized).
pub fn run_gaussian_blur(
    q: &Queue,
    src: &Buffer<f32>,
    dst: &Buffer<f32>,
    w: usize,
    h: usize,
) -> Event {
    const K: [f32; 5] = [1.0, 4.0, 6.0, 4.0, 1.0]; // binomial row, sum 16
    assert_eq!(src.len(), w * h);
    assert_eq!(dst.len(), w * h);
    let (sa, da) = (src.accessor(), dst.accessor());
    let ir = image::gaussian_blur().ir;
    q.submit(move |hd| {
        hd.parallel_for(w * h, &ir, move |idx| {
            let (x, y) = (idx % w, idx / w);
            if x < 2 || y < 2 || x + 2 >= w || y + 2 >= h {
                da.set(idx, sa.get(idx));
                return;
            }
            let mut acc = 0.0f32;
            for (dy, ky) in (-2isize..=2).zip(K) {
                for (dx, kx) in (-2isize..=2).zip(K) {
                    let p = sa.get(
                        ((y as isize + dy) as usize) * w + (x as isize + dx) as usize,
                    );
                    acc += kx * ky * p;
                }
            }
            da.set(idx, acc / 256.0);
        });
    })
}

/// SUSAN response: count of neighbours within `threshold` brightness of
/// the nucleus (the "USAN area" — small at corners, large on flat areas).
pub fn run_susan(
    q: &Queue,
    src: &Buffer<f32>,
    usan: &Buffer<f32>,
    w: usize,
    h: usize,
    threshold: f32,
) -> Event {
    assert_eq!(src.len(), w * h);
    assert_eq!(usan.len(), w * h);
    let (sa, ua) = (src.accessor(), usan.accessor());
    let ir = image::susan().ir;
    q.submit(move |hd| {
        hd.parallel_for(w * h, &ir, move |idx| {
            let (x, y) = (idx % w, idx / w);
            if x < 3 || y < 3 || x + 3 >= w || y + 3 >= h {
                ua.set(idx, 37.0);
                return;
            }
            let nucleus = sa.get(idx);
            let mut area = 0.0f32;
            for dy in -3isize..=3 {
                for dx in -3isize..=3 {
                    if dx * dx + dy * dy > 9 {
                        continue; // circular mask, 37 pixels
                    }
                    let p = sa.get(
                        ((y as isize + dy) as usize) * w + (x as isize + dx) as usize,
                    );
                    let d = (p - nucleus) / threshold;
                    area += (-(d * d * d * d * d * d)).exp();
                }
            }
            ua.set(idx, area);
        });
    })
}

/// One LU elimination step for pivot `k` on an `n × n` matrix (in place):
/// computes the multipliers column and updates the trailing submatrix.
pub fn run_lud_step(q: &Queue, a: &Buffer<f32>, n: usize, k: usize) -> Event {
    assert_eq!(a.len(), n * n);
    assert!(k < n);
    let aa = a.accessor();
    let ir = linalg::lud().ir;
    let rows = n - k - 1;
    q.submit(move |hd| {
        hd.parallel_for(rows.max(1), &ir, move |r| {
            if rows == 0 {
                return;
            }
            let i = k + 1 + r;
            let pivot = aa.get(k * n + k);
            if pivot == 0.0 {
                return;
            }
            let m = aa.get(i * n + k) / pivot;
            aa.set(i * n + k, m);
            for j in (k + 1)..n {
                aa.set(i * n + j, aa.get(i * n + j) - m * aa.get(k * n + j));
            }
        });
    })
}

/// Full LU decomposition via repeated elimination steps.
pub fn run_lud(q: &Queue, a: &Buffer<f32>, n: usize) {
    for k in 0..n - 1 {
        run_lud_step(q, a, n, k);
    }
    q.wait();
}

/// Chained matmul `(A·B)·C` via two GEMM launches.
pub fn run_matmul_chain(
    q: &Queue,
    a: &Buffer<f32>,
    b: &Buffer<f32>,
    c: &Buffer<f32>,
    tmp: &Buffer<f32>,
    out: &Buffer<f32>,
    n: usize,
) -> Event {
    linalg::run_mat_mul(q, a, b, tmp, n).wait();
    let ev = linalg::run_mat_mul(q, tmp, c, out, n);
    ev.wait();
    ev
}

/// Segmented reduction: `sums[seg[i]] += data[i]` with fixed-size segments.
pub fn run_segmented_reduction(
    q: &Queue,
    data: &Buffer<f32>,
    sums: &Buffer<f32>,
    segment: usize,
) -> Event {
    let n = data.len();
    assert_eq!(sums.len(), n.div_ceil(segment));
    let (da, sa) = (data.accessor(), sums.accessor());
    let ir = linalg::segmented_reduction().ir;
    let groups = sums.len();
    q.submit(move |hd| {
        hd.parallel_for(groups, &ir, move |g| {
            let lo = g * segment;
            let hi = (lo + segment).min(n);
            let mut acc = 0.0f32;
            for i in lo..hi {
                acc += da.get(i);
            }
            sa.set(g, acc);
        });
    })
}

/// Pearson correlation coefficient per chunk of `(x, y)` pairs.
pub fn run_lin_reg_coeff(
    q: &Queue,
    xs: &Buffer<f32>,
    ys: &Buffer<f32>,
    coeffs: &Buffer<f32>,
    chunk: usize,
) -> Event {
    let n = xs.len();
    assert_eq!(n, ys.len());
    assert_eq!(coeffs.len(), n.div_ceil(chunk));
    let (xa, ya, ca) = (xs.accessor(), ys.accessor(), coeffs.accessor());
    let ir = datamining::lin_reg_coeff().ir;
    let groups = coeffs.len();
    q.submit(move |hd| {
        hd.parallel_for(groups, &ir, move |g| {
            let lo = g * chunk;
            let hi = (lo + chunk).min(n);
            let m = (hi - lo) as f32;
            let (mut sx, mut sy, mut sxx, mut syy, mut sxy) = (0.0f32, 0.0, 0.0, 0.0, 0.0);
            for i in lo..hi {
                let (x, y) = (xa.get(i), ya.get(i));
                sx += x;
                sy += y;
                sxx += x * x;
                syy += y * y;
                sxy += x * y;
            }
            let cov = sxy - sx * sy / m;
            let vx = sxx - sx * sx / m;
            let vy = syy - sy * sy / m;
            let denom = (vx * vy).sqrt();
            ca.set(g, if denom > 0.0 { cov / denom } else { 0.0 });
        });
    })
}

/// Nearest-neighbour: distance from each 2-D query to its closest of `k`
/// reference points (`refs` is `[x0, y0, x1, y1, ...]`).
pub fn run_nearest_neighbor(
    q: &Queue,
    queries: &Buffer<f32>,
    refs: &Buffer<f32>,
    best: &Buffer<f32>,
) -> Event {
    let n = queries.len() / 2;
    let k = refs.len() / 2;
    assert_eq!(best.len(), n);
    let (qa, ra, ba) = (queries.accessor(), refs.accessor(), best.accessor());
    let ir = datamining::nearest_neighbor().ir;
    q.submit(move |hd| {
        hd.parallel_for(n, &ir, move |i| {
            let (x, y) = (qa.get(2 * i), qa.get(2 * i + 1));
            let mut d2 = f32::MAX;
            for j in 0..k {
                let dx = x - ra.get(2 * j);
                let dy = y - ra.get(2 * j + 1);
                d2 = d2.min(dx * dx + dy * dy);
            }
            ba.set(i, d2.sqrt());
        });
    })
}

/// Geometric mean per chunk via log-domain sums.
pub fn run_geometric_mean(
    q: &Queue,
    data: &Buffer<f32>,
    means: &Buffer<f32>,
    chunk: usize,
) -> Event {
    let n = data.len();
    assert_eq!(means.len(), n.div_ceil(chunk));
    let (da, ma) = (data.accessor(), means.accessor());
    let ir = datamining::geometric_mean().ir;
    let groups = means.len();
    q.submit(move |hd| {
        hd.parallel_for(groups, &ir, move |g| {
            let lo = g * chunk;
            let hi = (lo + chunk).min(n);
            let mut acc = 0.0f32;
            for i in lo..hi {
                acc += da.get(i).max(1e-20).ln();
            }
            ma.set(g, (acc / (hi - lo) as f32).exp());
        });
    })
}

/// MT19937-style tempering over per-item SplitMix state, then Box–Muller
/// to standard normals. Deterministic per (seed, index).
pub fn run_mersenne_twister(q: &Queue, seed: u32, normals: &Buffer<f32>) -> Event {
    let n = normals.len();
    assert!(n.is_multiple_of(2), "Box-Muller emits pairs");
    let na = normals.accessor();
    let ir = datamining::mersenne_twister().ir;
    q.submit(move |hd| {
        hd.parallel_for(n / 2, &ir, move |i| {
            let word = |salt: u32| -> f32 {
                // Strong 32-bit avalanche (murmur3 fmix32) of the per-item
                // state, followed by the MT19937 tempering shifts.
                let mut y = (seed ^ (i as u32).wrapping_mul(2_654_435_761)).wrapping_add(salt);
                y ^= y >> 16;
                y = y.wrapping_mul(0x85EB_CA6B);
                y ^= y >> 13;
                y = y.wrapping_mul(0xC2B2_AE35);
                y ^= y >> 16;
                y ^= y >> 11;
                y ^= (y << 7) & 0x9D2C_5680;
                y ^= (y << 15) & 0xEFC6_0000;
                y ^= y >> 18;
                // (0, 1]: avoid ln(0).
                (y as f32 + 1.0) / (u32::MAX as f32 + 2.0)
            };
            let u1 = word(0x9E37);
            let u2 = word(0x79B9);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            na.set(2 * i, r * theta.cos());
            na.set(2 * i + 1, r * theta.sin());
        });
    })
}

/// One HotSpot thermal step: 5-point diffusion plus a power source.
pub fn run_hotspot_step(
    q: &Queue,
    temp_in: &Buffer<f32>,
    power: &Buffer<f32>,
    temp_out: &Buffer<f32>,
    w: usize,
    h: usize,
    alpha: f32,
) -> Event {
    assert_eq!(temp_in.len(), w * h);
    assert_eq!(power.len(), w * h);
    assert_eq!(temp_out.len(), w * h);
    let (ta, pa, oa) = (temp_in.accessor(), power.accessor(), temp_out.accessor());
    let ir = physics::hotspot().ir;
    q.submit(move |hd| {
        hd.parallel_for(w * h, &ir, move |idx| {
            let (x, y) = (idx % w, idx / w);
            if x == 0 || y == 0 || x + 1 >= w || y + 1 >= h {
                oa.set(idx, ta.get(idx));
                return;
            }
            let lap = ta.get(idx - 1) + ta.get(idx + 1) + ta.get(idx - w) + ta.get(idx + w)
                - 4.0 * ta.get(idx);
            oa.set(idx, ta.get(idx) + alpha * lap + pa.get(idx));
        });
    })
}

/// One PathFinder DP row relaxation:
/// `next[i] = cost[i] + min(prev[i-1], prev[i], prev[i+1])`.
pub fn run_pathfinder_row(
    q: &Queue,
    prev: &Buffer<f32>,
    cost: &Buffer<f32>,
    next: &Buffer<f32>,
) -> Event {
    let n = prev.len();
    assert_eq!(cost.len(), n);
    assert_eq!(next.len(), n);
    let (pa, ca, na) = (prev.accessor(), cost.accessor(), next.accessor());
    let ir = physics::pathfinder().ir;
    q.submit(move |hd| {
        hd.parallel_for(n, &ir, move |i| {
            let mut m = pa.get(i);
            if i > 0 {
                m = m.min(pa.get(i - 1));
            }
            if i + 1 < n {
                m = m.min(pa.get(i + 1));
            }
            na.set(i, ca.get(i) + m);
        });
    })
}

/// Lennard-Jones forces over a fixed-stride neighbour list on a 2-D
/// particle set (`pos` is `[x0, y0, ...]`; neighbours are the next
/// `MOLDYN_NEIGHBORS` particles cyclically).
pub fn run_mol_dyn(q: &Queue, pos: &Buffer<f32>, force: &Buffer<f32>, eps: f32, sigma: f32) -> Event {
    let n = pos.len() / 2;
    assert_eq!(force.len(), pos.len());
    let (pa, fa) = (pos.accessor(), force.accessor());
    let ir = physics::mol_dyn().ir;
    let neigh = physics::MOLDYN_NEIGHBORS as usize;
    q.submit(move |hd| {
        hd.parallel_for(n, &ir, move |i| {
            let (xi, yi) = (pa.get(2 * i), pa.get(2 * i + 1));
            let (mut fx, mut fy) = (0.0f32, 0.0f32);
            for d in 1..=neigh.min(n.saturating_sub(1)) {
                let j = (i + d) % n;
                let dx = pa.get(2 * j) - xi;
                let dy = pa.get(2 * j + 1) - yi;
                let r2 = (dx * dx + dy * dy).max(1e-6);
                let sr2 = sigma * sigma / r2;
                let sr6 = sr2 * sr2 * sr2;
                // F/r = 24ε(2σ¹²/r¹² − σ⁶/r⁶)/r²
                let mag = 24.0 * eps * (2.0 * sr6 * sr6 - sr6) / r2;
                fx -= mag * dx;
                fy -= mag * dy;
            }
            fa.set(2 * i, fx);
            fa.set(2 * i + 1, fy);
        });
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use synergy_sim::{DeviceSpec, SimDevice};

    fn queue() -> Queue {
        Queue::new(SimDevice::new(DeviceSpec::v100(), 0))
    }

    #[test]
    fn sobel5_and_7_respond_to_edges() {
        let q = queue();
        let (w, h) = (24, 24);
        let img: Vec<f32> = (0..w * h)
            .map(|i| if i % w < w / 2 { 0.0 } else { 1.0 })
            .collect();
        let src = Buffer::from_slice(&img);
        for width in [5usize, 7] {
            let dst: Buffer<f32> = Buffer::zeros(w * h);
            run_sobel(&q, width, &src, &dst, w, h).wait();
            let out = dst.to_vec();
            assert!(out[10 * w + w / 2] > 0.5, "sobel{width} missed the edge");
            assert_eq!(out[10 * w + 4], 0.0, "sobel{width} fired on flat area");
        }
    }

    #[test]
    fn gaussian_blur_preserves_constants_and_spreads_impulses() {
        let q = queue();
        let (w, h) = (16, 16);
        // Constant image stays constant.
        let flat = Buffer::from_slice(&vec![3.0f32; w * h]);
        let out: Buffer<f32> = Buffer::zeros(w * h);
        run_gaussian_blur(&q, &flat, &out, w, h).wait();
        assert!((out.to_vec()[8 * w + 8] - 3.0).abs() < 1e-5);
        // Impulse spreads but keeps its mass (interior).
        let mut img = vec![0.0f32; w * h];
        img[8 * w + 8] = 256.0;
        let src = Buffer::from_slice(&img);
        let dst: Buffer<f32> = Buffer::zeros(w * h);
        run_gaussian_blur(&q, &src, &dst, w, h).wait();
        let v = dst.to_vec();
        assert!((v[8 * w + 8] - 36.0).abs() < 1e-3, "centre weight 36/256");
        let total: f32 = v.iter().sum();
        assert!((total - 256.0).abs() < 1e-2, "blur must conserve mass");
    }

    #[test]
    fn susan_distinguishes_corner_from_flat() {
        let q = queue();
        let (w, h) = (24, 24);
        // Bright quadrant: pixel at the quadrant corner sees ~1/4 similar.
        let img: Vec<f32> = (0..w * h)
            .map(|i| {
                let (x, y) = (i % w, i / w);
                if x >= 12 && y >= 12 {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        let src = Buffer::from_slice(&img);
        let usan: Buffer<f32> = Buffer::zeros(w * h);
        run_susan(&q, &src, &usan, w, h, 0.1).wait();
        let v = usan.to_vec();
        let corner = v[12 * w + 12];
        let flat = v[6 * w + 6];
        assert!(
            corner < flat * 0.5,
            "corner USAN {corner} should be well below flat {flat}"
        );
    }

    #[test]
    fn lud_reconstructs_matrix() {
        let q = queue();
        let n = 8;
        // Diagonally dominant matrix: LU without pivoting is stable.
        let mut a = vec![0.0f32; n * n];
        for i in 0..n {
            for j in 0..n {
                a[i * n + j] = if i == j { 10.0 } else { 1.0 / (1.0 + (i + j) as f32) };
            }
        }
        let buf = Buffer::from_slice(&a);
        run_lud(&q, &buf, n);
        let lu = buf.to_vec();
        // Reconstruct A = L·U and compare.
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0f32;
                for k in 0..=i.min(j) {
                    let l = if k == i { 1.0 } else { lu[i * n + k] };
                    let u = lu[k * n + j];
                    if k <= j && k <= i {
                        acc += if k == i { u } else { l * u };
                    }
                }
                // General reconstruction: sum_k L[i][k] U[k][j], L unit diag.
                let mut full = 0.0f32;
                for k in 0..n {
                    let l = if k < i {
                        lu[i * n + k]
                    } else if k == i {
                        1.0
                    } else {
                        0.0
                    };
                    let u = if k <= j { lu[k * n + j] } else { 0.0 };
                    full += l * u;
                }
                let _ = acc;
                assert!(
                    (full - a[i * n + j]).abs() < 1e-3,
                    "A[{i}][{j}] = {} reconstructed {full}",
                    a[i * n + j]
                );
            }
        }
    }

    #[test]
    fn matmul_chain_matches_direct_product() {
        let q = queue();
        let n = 12;
        let a: Vec<f32> = (0..n * n).map(|i| ((i % 7) as f32 - 3.0) * 0.25).collect();
        let b: Vec<f32> = (0..n * n).map(|i| ((i % 5) as f32) * 0.5).collect();
        let c: Vec<f32> = (0..n * n).map(|i| ((i % 3) as f32) - 1.0).collect();
        let (ab, bb, cb) = (
            Buffer::from_slice(&a),
            Buffer::from_slice(&b),
            Buffer::from_slice(&c),
        );
        let tmp: Buffer<f32> = Buffer::zeros(n * n);
        let out: Buffer<f32> = Buffer::zeros(n * n);
        run_matmul_chain(&q, &ab, &bb, &cb, &tmp, &out, n);
        // Reference: (A·B)·C at one position.
        let mut ab_ref = vec![0.0f32; n * n];
        for i in 0..n {
            for j in 0..n {
                ab_ref[i * n + j] = (0..n).map(|k| a[i * n + k] * b[k * n + j]).sum();
            }
        }
        let want: f32 = (0..n).map(|k| ab_ref[3 * n + k] * c[k * n + 4]).sum();
        assert!((out.to_vec()[3 * n + 4] - want).abs() < 1e-2);
    }

    #[test]
    fn segmented_reduction_sums_segments() {
        let q = queue();
        let data: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let db = Buffer::from_slice(&data);
        let sums: Buffer<f32> = Buffer::zeros(4);
        run_segmented_reduction(&q, &db, &sums, 25).wait();
        let s = sums.to_vec();
        assert_eq!(s[0], (0..25).sum::<i32>() as f32);
        assert_eq!(s[3], (75..100).sum::<i32>() as f32);
    }

    #[test]
    fn lin_reg_coeff_detects_perfect_correlation() {
        let q = queue();
        let xs: Vec<f32> = (0..64).map(|i| i as f32).collect();
        let ys_pos: Vec<f32> = xs.iter().map(|&x| 2.0 * x + 1.0).collect();
        let ys_neg: Vec<f32> = xs.iter().map(|&x| -x).collect();
        for (ys, want) in [(ys_pos, 1.0f32), (ys_neg, -1.0)] {
            let out: Buffer<f32> = Buffer::zeros(1);
            run_lin_reg_coeff(
                &q,
                &Buffer::from_slice(&xs),
                &Buffer::from_slice(&ys),
                &out,
                64,
            )
            .wait();
            assert!((out.to_vec()[0] - want).abs() < 1e-3);
        }
    }

    #[test]
    fn nearest_neighbor_finds_closest() {
        let q = queue();
        let queries = Buffer::from_slice(&[0.0f32, 0.0, 10.0, 10.0]);
        let refs = Buffer::from_slice(&[1.0f32, 0.0, 10.0, 11.0, -5.0, -5.0]);
        let best: Buffer<f32> = Buffer::zeros(2);
        run_nearest_neighbor(&q, &queries, &refs, &best).wait();
        let b = best.to_vec();
        assert!((b[0] - 1.0).abs() < 1e-5);
        assert!((b[1] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn geometric_mean_known_values() {
        let q = queue();
        let data = Buffer::from_slice(&[1.0f32, 4.0, 2.0, 8.0]);
        let means: Buffer<f32> = Buffer::zeros(1);
        run_geometric_mean(&q, &data, &means, 4).wait();
        // (1·4·2·8)^(1/4) = 64^(1/4) = 2.828...
        assert!((means.to_vec()[0] - 64f32.powf(0.25)).abs() < 1e-3);
    }

    #[test]
    fn mersenne_twister_normals_are_standard() {
        let q = queue();
        let n = 1 << 16;
        let out: Buffer<f32> = Buffer::zeros(n);
        run_mersenne_twister(&q, 12345, &out).wait();
        let v = out.to_vec();
        let mean = v.iter().sum::<f32>() / n as f32;
        let var = v.iter().map(|x| x * x).sum::<f32>() / n as f32 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
        // Deterministic.
        let out2: Buffer<f32> = Buffer::zeros(n);
        run_mersenne_twister(&q, 12345, &out2).wait();
        assert_eq!(v[..64], out2.to_vec()[..64]);
    }

    #[test]
    fn hotspot_diffuses_heat() {
        let q = queue();
        let (w, h) = (16, 16);
        let mut t0 = vec![0.0f32; w * h];
        t0[8 * w + 8] = 100.0;
        let tin = Buffer::from_slice(&t0);
        let power: Buffer<f32> = Buffer::zeros(w * h);
        let tout: Buffer<f32> = Buffer::zeros(w * h);
        run_hotspot_step(&q, &tin, &power, &tout, w, h, 0.2).wait();
        let v = tout.to_vec();
        assert!(v[8 * w + 8] < 100.0, "peak must cool");
        assert!(v[8 * w + 9] > 0.0, "neighbour must warm");
        let total: f32 = v.iter().sum();
        assert!((total - 100.0).abs() < 1e-3, "diffusion conserves heat");
    }

    #[test]
    fn pathfinder_relaxation_matches_reference() {
        let q = queue();
        let prev = vec![5.0f32, 1.0, 7.0, 3.0];
        let cost = vec![1.0f32, 1.0, 1.0, 1.0];
        let pb = Buffer::from_slice(&prev);
        let cb = Buffer::from_slice(&cost);
        let nb: Buffer<f32> = Buffer::zeros(4);
        run_pathfinder_row(&q, &pb, &cb, &nb).wait();
        assert_eq!(nb.to_vec(), vec![2.0, 2.0, 2.0, 4.0]);
    }

    #[test]
    fn mol_dyn_equilibrium_distance_has_zero_force() {
        let q = queue();
        // Two particles at the LJ minimum r = 2^(1/6) σ: force ≈ 0.
        let sigma = 1.0f32;
        let r_min = 2f32.powf(1.0 / 6.0) * sigma;
        let pos = Buffer::from_slice(&[0.0f32, 0.0, r_min, 0.0]);
        let force: Buffer<f32> = Buffer::zeros(4);
        run_mol_dyn(&q, &pos, &force, 1.0, sigma).wait();
        let f = force.to_vec();
        assert!(f[0].abs() < 1e-3, "force at equilibrium: {}", f[0]);
        // Closer than equilibrium: strong repulsion.
        let pos2 = Buffer::from_slice(&[0.0f32, 0.0, 0.8, 0.0]);
        let force2: Buffer<f32> = Buffer::zeros(4);
        run_mol_dyn(&q, &pos2, &force2, 1.0, sigma).wait();
        assert!(force2.to_vec()[0] < -1.0, "repulsion pushes body 0 to -x");
    }
}
