//! # synergy-apps
//!
//! The evaluation workloads of the SYnergy paper: a 23-kernel benchmark
//! suite in the style of SYCL-Bench (Section 8.1) and two real-world
//! mini-apps — CloverLeaf (2-D compressible Euler hydrodynamics) and
//! MiniWeather (2-D stratified atmospheric flow) — decomposed into the
//! per-timestep kernels whose differing energy characterizations make
//! fine-grained tuning pay off.
//!
//! Every benchmark carries a calibrated [`synergy_kernel::KernelIr`] that
//! drives the device timing/energy model; a representative subset (and both
//! mini-apps) additionally provide real host-computed numerics through the
//! runtime so results can be validated.

#![warn(missing_docs)]

pub mod cloverleaf;
pub mod datamining;
pub mod image;
pub mod linalg;
pub mod physics;
pub mod reference;
pub mod suite;
pub mod verify;

pub use cloverleaf::CloverLeaf;
pub use miniweather::MiniWeather;
pub use suite::{by_name, figure7_selection, suite, Benchmark, Boundedness};
pub use verify::run_small_reference;

pub mod miniweather;
