//! Image-processing benchmarks: Sobel filters (3×3, 5×5, 7×7), median
//! filter, Gaussian blur and the SUSAN corner detector.
//!
//! Stencils issue many global loads but most hit cache (neighbouring items
//! reuse pixels), so their `dram_fraction` is well below 1 — they are
//! issue-/compute-sensitive, which is why Sobel3 shows the widest speedup
//! range of the paper's Figure 7.

use crate::suite::{Benchmark, Boundedness};
use synergy_kernel::{Inst, IrBuilder, KernelIr};
use synergy_rt::{Buffer, Event, Queue};

fn sobel_ir(name: &str, width: u64) -> KernelIr {
    let taps = width * width;
    IrBuilder::new()
        .ops(Inst::IntAdd, 2 + width) // pixel/row index arithmetic
        .ops(Inst::IntMul, 2)
        .ops(Inst::GlobalLoad, taps)
        .ops(Inst::FloatMul, taps)
        .ops(Inst::FloatAdd, taps.saturating_sub(1))
        .ops(Inst::SpecialFn, 1) // gradient magnitude sqrt
        .ops(Inst::GlobalStore, 1)
        .build(name)
        .with_dram_fraction(match width {
            3 => 0.15,
            5 => 0.12,
            _ => 0.10,
        })
}

/// 3×3 Sobel edge detector — the compute-sensitive pole of Figure 7
/// (speedup 0.73–1.15 along the Pareto front).
pub fn sobel3() -> Benchmark {
    Benchmark {
        name: "sobel3",
        description: "3x3 Sobel edge detection",
        ir: sobel_ir("sobel3", 3),
        work_items: 2048 * 2048,
        bound: Boundedness::ComputeBound,
    }
}

/// 5×5 Sobel.
pub fn sobel5() -> Benchmark {
    Benchmark {
        name: "sobel5",
        description: "5x5 Sobel edge detection",
        ir: sobel_ir("sobel5", 5),
        work_items: 2048 * 2048,
        bound: Boundedness::ComputeBound,
    }
}

/// 7×7 Sobel.
pub fn sobel7() -> Benchmark {
    Benchmark {
        name: "sobel7",
        description: "7x7 Sobel edge detection",
        ir: sobel_ir("sobel7", 7),
        work_items: 2048 * 2048,
        bound: Boundedness::ComputeBound,
    }
}

/// Run a real 3×3 Sobel over a `w × h` grayscale image.
pub fn run_sobel3(q: &Queue, src: &Buffer<f32>, dst: &Buffer<f32>, w: usize, h: usize) -> Event {
    assert_eq!(src.len(), w * h);
    assert_eq!(dst.len(), w * h);
    let (sa, da) = (src.accessor(), dst.accessor());
    let ir = sobel_ir("sobel3", 3);
    q.submit(move |h_| {
        h_.parallel_for(w * h, &ir, move |idx| {
            let (x, y) = (idx % w, idx / w);
            if x == 0 || y == 0 || x + 1 >= w || y + 1 >= h {
                da.set(idx, 0.0);
                return;
            }
            let p = |dx: isize, dy: isize| -> f32 {
                let xi = (x as isize + dx) as usize;
                let yi = (y as isize + dy) as usize;
                sa.get(yi * w + xi)
            };
            let gx = -p(-1, -1) - 2.0 * p(-1, 0) - p(-1, 1)
                + p(1, -1)
                + 2.0 * p(1, 0)
                + p(1, 1);
            let gy = -p(-1, -1) - 2.0 * p(0, -1) - p(1, -1)
                + p(-1, 1)
                + 2.0 * p(0, 1)
                + p(1, 1);
            da.set(idx, (gx * gx + gy * gy).sqrt());
        });
    })
}

/// 3×3 median filter — the "friendly" kernel of Figure 2b: 20%+ energy
/// savings with modest performance loss (mild memory lean).
pub fn median_filter() -> Benchmark {
    let ir = IrBuilder::new()
        .ops(Inst::IntAdd, 6)
        .ops(Inst::GlobalLoad, 9)
        .ops(Inst::FloatAdd, 19) // min/max network on 9 elements
        .ops(Inst::IntBitwise, 4)
        .ops(Inst::GlobalStore, 1)
        .build("median_filter")
        .with_dram_fraction(0.5)
        .with_coalescing(0.9);
    Benchmark {
        name: "median_filter",
        description: "3x3 median filter (min/max sorting network)",
        ir,
        work_items: 2048 * 2048,
        bound: Boundedness::Mixed,
    }
}

/// Run a real 3×3 median filter.
pub fn run_median_filter(
    q: &Queue,
    src: &Buffer<f32>,
    dst: &Buffer<f32>,
    w: usize,
    h: usize,
) -> Event {
    assert_eq!(src.len(), w * h);
    assert_eq!(dst.len(), w * h);
    let (sa, da) = (src.accessor(), dst.accessor());
    let ir = median_filter().ir;
    q.submit(move |h_| {
        h_.parallel_for(w * h, &ir, move |idx| {
            let (x, y) = (idx % w, idx / w);
            if x == 0 || y == 0 || x + 1 >= w || y + 1 >= h {
                da.set(idx, sa.get(idx));
                return;
            }
            let mut v = [0.0f32; 9];
            let mut k = 0;
            for dy in -1isize..=1 {
                for dx in -1isize..=1 {
                    let xi = (x as isize + dx) as usize;
                    let yi = (y as isize + dy) as usize;
                    v[k] = sa.get(yi * w + xi);
                    k += 1;
                }
            }
            v.sort_by(f32::total_cmp);
            da.set(idx, v[4]);
        });
    })
}

/// 5×5 Gaussian blur: separable weights, decent cache reuse.
pub fn gaussian_blur() -> Benchmark {
    let ir = IrBuilder::new()
        .ops(Inst::IntAdd, 8)
        .ops(Inst::GlobalLoad, 25)
        .ops(Inst::FloatMul, 25)
        .ops(Inst::FloatAdd, 24)
        .ops(Inst::GlobalStore, 1)
        .build("gaussian_blur")
        .with_dram_fraction(0.3);
    Benchmark {
        name: "gaussian_blur",
        description: "5x5 Gaussian blur",
        ir,
        work_items: 2048 * 2048,
        bound: Boundedness::Mixed,
    }
}

/// SUSAN corner detection: exponential similarity weights (SFU-heavy).
pub fn susan() -> Benchmark {
    let ir = IrBuilder::new()
        .ops(Inst::IntAdd, 10)
        .ops(Inst::GlobalLoad, 37)
        .ops(Inst::FloatAdd, 36)
        .ops(Inst::FloatMul, 14)
        .ops(Inst::SpecialFn, 36) // exp() per neighbour
        .ops(Inst::GlobalStore, 1)
        .build("susan")
        .with_dram_fraction(0.2);
    Benchmark {
        name: "susan",
        description: "SUSAN corner detector with exponential weighting",
        ir,
        work_items: 1024 * 1024,
        bound: Boundedness::ComputeBound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synergy_sim::{DeviceSpec, SimDevice};

    fn queue() -> Queue {
        Queue::new(SimDevice::new(DeviceSpec::v100(), 0))
    }

    #[test]
    fn sobel3_detects_an_edge() {
        let q = queue();
        let (w, h) = (16, 16);
        // Vertical step edge at x = 8.
        let img: Vec<f32> = (0..w * h)
            .map(|i| if i % w < 8 { 0.0 } else { 1.0 })
            .collect();
        let src = Buffer::from_slice(&img);
        let dst: Buffer<f32> = Buffer::zeros(w * h);
        run_sobel3(&q, &src, &dst, w, h).wait();
        let out = dst.to_vec();
        // Strong response on the edge column, none far from it.
        assert!(out[5 * w + 8] > 1.0, "edge response {}", out[5 * w + 8]);
        assert_eq!(out[5 * w + 3], 0.0);
    }

    #[test]
    fn median_removes_salt_noise() {
        let q = queue();
        let (w, h) = (16, 16);
        let mut img = vec![1.0f32; w * h];
        img[5 * w + 5] = 100.0; // salt pixel
        let src = Buffer::from_slice(&img);
        let dst: Buffer<f32> = Buffer::zeros(w * h);
        run_median_filter(&q, &src, &dst, w, h).wait();
        assert_eq!(dst.to_vec()[5 * w + 5], 1.0);
    }

    #[test]
    fn sobel_ir_scales_with_width() {
        let i3 = synergy_kernel::extract(&sobel3().ir);
        let i7 = synergy_kernel::extract(&sobel7().ir);
        assert!(
            i7.features[synergy_kernel::FeatureClass::GlobalAccess]
                > i3.features[synergy_kernel::FeatureClass::GlobalAccess] * 4.0
        );
    }

    #[test]
    fn sobel3_is_issue_bound_on_v100() {
        let spec = DeviceSpec::v100();
        let info = synergy_kernel::extract(&sobel3().ir);
        let cycles: f64 = synergy_kernel::FeatureClass::ALL
            .iter()
            .map(|&c| spec.cpi[c as usize] * info.features[c])
            .sum();
        let r = cycles * spec.mem_bw_gbps * 1e9
            / (info.global_bytes_per_item
                * spec.total_lanes() as f64
                * spec.freq_table.max_core() as f64
                * 1e6);
        assert!(r > 1.5, "sobel3 R = {r:.2} should be compute-leaning");
    }
}
