//! CloverLeaf mini-app: 2-D compressible Euler hydrodynamics on a
//! staggered Cartesian grid (Herdman et al. 2012), reduced to the kernel
//! structure that matters for per-kernel energy tuning: eight kernels per
//! timestep spanning the compute-bound ↔ memory-bound spectrum.
//!
//! The implementation is *real*: state arrays live in runtime buffers, each
//! kernel is a `parallel_for` with genuine numerics (ideal-gas EOS,
//! artificial viscosity, PdV work, donor-cell advection, reductions), and
//! the accompanying IR drives the device timing/energy model. The
//! multi-node Figure-10 experiment reuses the same IRs through the modeled
//! path.

use std::collections::HashMap;
use synergy_kernel::{Inst, IrBuilder, KernelIr};
use synergy_metrics::EnergyTarget;
use synergy_rt::{Buffer, Event, Queue};

/// Ratio of specific heats for the ideal-gas EOS.
const GAMMA: f32 = 1.4;

/// The per-step kernels of the mini-app, in submission order.
pub fn kernel_irs() -> Vec<KernelIr> {
    vec![
        // EOS: two loads, a handful of flops, a sqrt — mildly compute.
        IrBuilder::new()
            .ops(Inst::GlobalLoad, 2)
            .ops(Inst::FloatMul, 4)
            .ops(Inst::FloatDiv, 1)
            .ops(Inst::SpecialFn, 1)
            .ops(Inst::GlobalStore, 2)
            .build("clover_ideal_gas")
            .with_dram_fraction(0.8),
        // Artificial viscosity: 9-point velocity stencil — issue heavy.
        IrBuilder::new()
            .ops(Inst::GlobalLoad, 10)
            .ops(Inst::FloatAdd, 12)
            .ops(Inst::FloatMul, 10)
            .ops(Inst::GlobalStore, 1)
            .build("clover_viscosity")
            .with_dram_fraction(0.25),
        // dt reduction: streaming min.
        IrBuilder::new()
            .ops(Inst::GlobalLoad, 4)
            .ops(Inst::FloatDiv, 1)
            .ops(Inst::FloatAdd, 2)
            .ops(Inst::GlobalStore, 1)
            .build("clover_calc_dt")
            .with_dram_fraction(0.9),
        // PdV: compression work update.
        IrBuilder::new()
            .ops(Inst::GlobalLoad, 6)
            .ops(Inst::FloatMul, 6)
            .ops(Inst::FloatAdd, 6)
            .ops(Inst::FloatDiv, 2)
            .ops(Inst::GlobalStore, 2)
            .build("clover_pdv")
            .with_dram_fraction(0.5),
        // Face fluxes: streaming.
        IrBuilder::new()
            .ops(Inst::GlobalLoad, 3)
            .ops(Inst::FloatMul, 2)
            .ops(Inst::GlobalStore, 2)
            .build("clover_flux_calc")
            .with_dram_fraction(1.0),
        // Donor-cell advection: branchy stencil.
        IrBuilder::new()
            .ops(Inst::GlobalLoad, 8)
            .ops(Inst::FloatMul, 6)
            .ops(Inst::FloatAdd, 8)
            .ops(Inst::IntBitwise, 2)
            .ops(Inst::GlobalStore, 2)
            .build("clover_advec_cell")
            .with_dram_fraction(0.4),
        // Momentum advection: the heaviest stencil.
        IrBuilder::new()
            .ops(Inst::GlobalLoad, 12)
            .ops(Inst::FloatMul, 10)
            .ops(Inst::FloatAdd, 12)
            .ops(Inst::FloatDiv, 2)
            .ops(Inst::GlobalStore, 2)
            .build("clover_advec_mom")
            .with_dram_fraction(0.35),
        // Field summary: streaming reduction.
        IrBuilder::new()
            .ops(Inst::GlobalLoad, 4)
            .ops(Inst::FloatMul, 3)
            .ops(Inst::FloatAdd, 4)
            .ops(Inst::GlobalStore, 1)
            .build("clover_field_summary")
            .with_dram_fraction(1.0),
    ]
}

fn ir_by_name(name: &str) -> KernelIr {
    kernel_irs()
        .into_iter()
        .find(|k| k.name == name)
        .expect("known kernel")
}

/// The simulation state on one device (one MPI rank in the paper's runs).
pub struct CloverLeaf {
    /// Cells in x (without halo).
    pub nx: usize,
    /// Cells in y (without halo).
    pub ny: usize,
    density: Buffer<f32>,
    energy: Buffer<f32>,
    pressure: Buffer<f32>,
    soundspeed: Buffer<f32>,
    viscosity: Buffer<f32>,
    velocity_x: Buffer<f32>,
    velocity_y: Buffer<f32>,
    flux_x: Buffer<f32>,
    /// Sweep counter: even steps advect along x, odd steps along y
    /// (CloverLeaf's alternating directional splitting).
    sweep: usize,
    dt_field: Buffer<f32>,
    summary: Buffer<f32>,
    /// Current timestep (set by `calc_dt`).
    pub dt: f32,
}

impl CloverLeaf {
    /// Initialize the classic CloverLeaf shock-tube: a dense, energetic
    /// square in the lower-left corner of an ambient field.
    pub fn new(nx: usize, ny: usize) -> CloverLeaf {
        let n = nx * ny;
        let mut density = vec![0.2f32; n];
        let mut energy = vec![1.0f32; n];
        for y in 0..ny / 2 {
            for x in 0..nx / 2 {
                density[y * nx + x] = 1.0;
                energy[y * nx + x] = 2.5;
            }
        }
        CloverLeaf {
            nx,
            ny,
            density: Buffer::from_slice(&density),
            energy: Buffer::from_slice(&energy),
            pressure: Buffer::zeros(n),
            soundspeed: Buffer::zeros(n),
            viscosity: Buffer::zeros(n),
            velocity_x: Buffer::zeros(n),
            velocity_y: Buffer::zeros(n),
            flux_x: Buffer::zeros(n),
            sweep: 0,
            dt_field: Buffer::zeros(n),
            summary: Buffer::zeros(3),
            dt: 0.04,
        }
    }

    /// Work-items per kernel launch.
    pub fn items(&self) -> usize {
        self.nx * self.ny
    }

    fn submit(
        &self,
        q: &Queue,
        target: Option<EnergyTarget>,
        cgf: impl FnOnce(&mut synergy_rt::Handler),
    ) -> Event {
        match target {
            Some(t) => q.submit_with_target(t, cgf),
            None => q.submit(cgf),
        }
    }

    /// Run one full timestep, submitting every kernel through `q` (with a
    /// per-kernel energy target when given). Returns the events in
    /// submission order.
    pub fn step(&mut self, q: &Queue, target: Option<EnergyTarget>) -> Vec<Event> {
        let (nx, ny) = (self.nx, self.ny);
        let n = self.items();
        let mut events = Vec::with_capacity(8);

        // 1. ideal_gas: p = (γ-1) ρ e, c = sqrt(γ p / ρ).
        {
            let (d, e, p, c) = (
                self.density.accessor(),
                self.energy.accessor(),
                self.pressure.accessor(),
                self.soundspeed.accessor(),
            );
            let ir = ir_by_name("clover_ideal_gas");
            events.push(self.submit(q, target, move |h| {
                h.parallel_for(n, &ir, move |i| {
                    let rho = d.get(i).max(1e-6);
                    let press = (GAMMA - 1.0) * rho * e.get(i);
                    p.set(i, press);
                    c.set(i, (GAMMA * press / rho).max(0.0).sqrt());
                });
            }));
        }

        // 2. viscosity: quadratic artificial viscosity on compression.
        {
            let (u, v, d, visc) = (
                self.velocity_x.accessor(),
                self.velocity_y.accessor(),
                self.density.accessor(),
                self.viscosity.accessor(),
            );
            let ir = ir_by_name("clover_viscosity");
            events.push(self.submit(q, target, move |h| {
                h.parallel_for(n, &ir, move |i| {
                    let (x, y) = (i % nx, i / nx);
                    if x == 0 || y == 0 || x + 1 >= nx || y + 1 >= ny {
                        visc.set(i, 0.0);
                        return;
                    }
                    let div = (u.get(i + 1) - u.get(i - 1)) + (v.get(i + nx) - v.get(i - nx));
                    let q2 = if div < 0.0 { 2.0 * d.get(i) * div * div } else { 0.0 };
                    visc.set(i, q2);
                });
            }));
        }

        // 3. calc_dt: per-cell CFL limit (host reduces the buffer after).
        {
            let (c, u, dtf) = (
                self.soundspeed.accessor(),
                self.velocity_x.accessor(),
                self.dt_field.accessor(),
            );
            let ir = ir_by_name("clover_calc_dt");
            let dx = 1.0f32 / nx as f32;
            events.push(self.submit(q, target, move |h| {
                h.parallel_for(n, &ir, move |i| {
                    let speed = c.get(i) + u.get(i).abs() + 1e-6;
                    dtf.set(i, 0.7 * dx / speed);
                });
            }));
        }

        // 4. pdv: energy update from pressure + viscosity work.
        {
            let (d, e, p, visc, u, v) = (
                self.density.accessor(),
                self.energy.accessor(),
                self.pressure.accessor(),
                self.viscosity.accessor(),
                self.velocity_x.accessor(),
                self.velocity_y.accessor(),
            );
            let ir = ir_by_name("clover_pdv");
            let dt = self.dt;
            events.push(self.submit(q, target, move |h| {
                h.parallel_for(n, &ir, move |i| {
                    let (x, y) = (i % nx, i / nx);
                    if x == 0 || y == 0 || x + 1 >= nx || y + 1 >= ny {
                        return;
                    }
                    let div = (u.get(i + 1) - u.get(i - 1)) + (v.get(i + nx) - v.get(i - nx));
                    let work = (p.get(i) + visc.get(i)) * div * dt / d.get(i).max(1e-6);
                    e.set(i, (e.get(i) - work).max(1e-6));
                });
            }));
        }

        // 5. flux_calc: donor-cell face fluxes along the sweep direction
        // (CloverLeaf alternates x and y sweeps between steps).
        let along_x = self.sweep.is_multiple_of(2);
        {
            let vel = if along_x {
                self.velocity_x.accessor()
            } else {
                self.velocity_y.accessor()
            };
            let (d, fx) = (self.density.accessor(), self.flux_x.accessor());
            let ir = ir_by_name("clover_flux_calc");
            let dt = self.dt;
            events.push(self.submit(q, target, move |h| {
                h.parallel_for(n, &ir, move |i| {
                    fx.set(i, vel.get(i) * d.get(i) * dt);
                });
            }));
        }

        // 6. advec_cell: donor-cell density advection along the sweep.
        {
            let (d, fx) = (self.density.accessor(), self.flux_x.accessor());
            let ir = ir_by_name("clover_advec_cell");
            let stride = if along_x { 1 } else { nx };
            events.push(self.submit(q, target, move |h| {
                h.parallel_for(n, &ir, move |i| {
                    let (x, y) = (i % nx, i / nx);
                    let on_edge = if stride == 1 {
                        x == 0 || x + 1 >= nx
                    } else {
                        y == 0 || y + 1 >= ny
                    };
                    if on_edge {
                        return;
                    }
                    let dm = fx.get(i - stride) - fx.get(i);
                    d.set(i, (d.get(i) + dm).max(1e-6));
                });
            }));
        }

        // 7. advec_mom: simple upwind momentum relaxation towards the
        // pressure gradient.
        {
            let (u, v, p, d) = (
                self.velocity_x.accessor(),
                self.velocity_y.accessor(),
                self.pressure.accessor(),
                self.density.accessor(),
            );
            let ir = ir_by_name("clover_advec_mom");
            let dt = self.dt;
            events.push(self.submit(q, target, move |h| {
                h.parallel_for(n, &ir, move |i| {
                    let (x, y) = (i % nx, i / nx);
                    if x == 0 || y == 0 || x + 1 >= nx || y + 1 >= ny {
                        return;
                    }
                    let rho = d.get(i).max(1e-6);
                    let du = -(p.get(i + 1) - p.get(i - 1)) * dt / (2.0 * rho);
                    let dv = -(p.get(i + nx) - p.get(i - nx)) * dt / (2.0 * rho);
                    u.set(i, (u.get(i) + du).clamp(-10.0, 10.0));
                    v.set(i, (v.get(i) + dv).clamp(-10.0, 10.0));
                });
            }));
        }

        // 8. field_summary: per-chunk partial sums of mass / internal /
        // kinetic energy (finished on the host by `summary`).
        {
            let (d, e, u, v, s) = (
                self.density.accessor(),
                self.energy.accessor(),
                self.velocity_x.accessor(),
                self.velocity_y.accessor(),
                self.summary.accessor(),
            );
            let ir = ir_by_name("clover_field_summary");
            events.push(self.submit(q, target, move |h| {
                h.parallel_for(3, &ir, move |which| {
                    let mut acc = 0.0f32;
                    for i in 0..n {
                        acc += match which {
                            0 => d.get(i),
                            1 => d.get(i) * e.get(i),
                            _ => {
                                0.5 * d.get(i)
                                    * (u.get(i) * u.get(i) + v.get(i) * v.get(i))
                            }
                        };
                    }
                    s.set(which, acc);
                });
            }));
        }

        // Host-side dt reduction for the next step.
        q.wait();
        let min_dt = self
            .dt_field
            .to_vec()
            .into_iter()
            .filter(|v| *v > 0.0)
            .fold(f32::MAX, f32::min);
        if min_dt.is_finite() && min_dt < f32::MAX {
            self.dt = min_dt.min(0.04);
        }
        self.sweep += 1;
        events
    }

    /// `(total mass, internal energy, kinetic energy)` from the last
    /// field_summary.
    pub fn summary(&self) -> (f32, f32, f32) {
        let s = self.summary.to_vec();
        (s[0], s[1], s[2])
    }

    /// Total mass right now (host-side, for conservation tests).
    pub fn total_mass(&self) -> f32 {
        self.density.to_vec().iter().sum()
    }

    /// Per-kernel work-item counts keyed by kernel name, for the modeled
    /// multi-node driver.
    pub fn kernel_items(nx: usize, ny: usize) -> HashMap<String, u64> {
        kernel_irs()
            .into_iter()
            .map(|k| {
                let items = if k.name == "clover_field_summary" {
                    // reduction kernel still walks the grid
                    (nx * ny) as u64
                } else {
                    (nx * ny) as u64
                };
                (k.name, items)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synergy_sim::{DeviceSpec, SimDevice};

    fn queue() -> Queue {
        Queue::new(SimDevice::new(DeviceSpec::v100(), 0))
    }

    #[test]
    fn eight_kernels_per_step() {
        assert_eq!(kernel_irs().len(), 8);
        let mut app = CloverLeaf::new(32, 32);
        let q = queue();
        let events = app.step(&q, None);
        assert_eq!(events.len(), 8);
        for e in &events {
            assert!(e.execution().is_some());
        }
    }

    #[test]
    fn pressure_becomes_positive_after_eos() {
        let mut app = CloverLeaf::new(32, 32);
        let q = queue();
        app.step(&q, None);
        let p = app.pressure.to_vec();
        assert!(p.iter().all(|&x| x > 0.0), "EOS produced non-positive pressure");
    }

    #[test]
    fn shock_generates_velocity() {
        let mut app = CloverLeaf::new(32, 32);
        let q = queue();
        for _ in 0..3 {
            app.step(&q, None);
        }
        let u = app.velocity_x.to_vec();
        assert!(
            u.iter().any(|&x| x.abs() > 1e-4),
            "pressure gradient should accelerate the gas"
        );
    }

    #[test]
    fn dt_respects_cfl() {
        let mut app = CloverLeaf::new(64, 64);
        let q = queue();
        app.step(&q, None);
        assert!(app.dt > 0.0 && app.dt <= 0.04, "dt = {}", app.dt);
    }

    #[test]
    fn summary_tracks_positive_quantities() {
        let mut app = CloverLeaf::new(32, 32);
        let q = queue();
        app.step(&q, None);
        let (mass, ie, _ke) = app.summary();
        assert!(mass > 0.0);
        assert!(ie > 0.0);
    }

    #[test]
    fn interior_mass_stays_bounded() {
        let mut app = CloverLeaf::new(32, 32);
        let m0 = app.total_mass();
        let q = queue();
        for _ in 0..5 {
            app.step(&q, None);
        }
        let m1 = app.total_mass();
        // Donor-cell advection with closed boundaries: mass drifts only
        // through the frozen boundary cells.
        assert!((m1 - m0).abs() / m0 < 0.05, "mass drifted {m0} -> {m1}");
    }

    #[test]
    fn device_time_advances_once_per_kernel() {
        let dev = SimDevice::new(DeviceSpec::v100(), 0);
        let q = Queue::new(std::sync::Arc::clone(&dev));
        let mut app = CloverLeaf::new(32, 32);
        app.step(&q, None);
        assert_eq!(dev.kernels_executed(), 8);
    }
}
