//! Data-mining / statistics benchmarks: linear regression (the
//! energy-unfriendly kernel of Figure 2a), regression coefficients,
//! k-means, nearest neighbour, geometric mean and a Mersenne-Twister
//! random generator.

use crate::suite::{Benchmark, Boundedness};
use synergy_kernel::{Inst, IrBuilder};
use synergy_rt::{Buffer, Event, Queue};

/// Linear-regression error evaluation: each work-item scores one candidate
/// model over a chunk of points — heavy FMA loops per byte, the
/// compute-bound pole of Figure 2 (≤10% energy savings available, low
/// frequencies very inefficient).
pub fn linear_regression() -> Benchmark {
    let ir = IrBuilder::new()
        .ops(Inst::GlobalLoad, 2)
        .loop_n(64, |b| {
            b.ops(Inst::FloatMul, 2).ops(Inst::FloatAdd, 2)
        })
        .ops(Inst::GlobalStore, 1)
        .build("linear_regression")
        .with_dram_fraction(0.8);
    Benchmark {
        name: "linear_regression",
        description: "linear-regression error evaluation over candidate models",
        ir,
        // Small model population, as in SYCL-Bench: short launches whose
        // fixed overhead compresses the achievable energy savings — the
        // "<10% to save" characterization of Figure 2a.
        work_items: 1 << 16,
        bound: Boundedness::ComputeBound,
    }
}

/// Run a real linear-regression error pass: item `i` evaluates the mean
/// squared error of model `(slope[i], bias[i])` over all `(x, y)` points.
pub fn run_linear_regression(
    q: &Queue,
    xs: &Buffer<f32>,
    ys: &Buffer<f32>,
    slopes: &Buffer<f32>,
    biases: &Buffer<f32>,
    errors: &Buffer<f32>,
) -> Event {
    let points = xs.len();
    assert_eq!(points, ys.len());
    let models = slopes.len();
    assert_eq!(models, biases.len());
    assert_eq!(models, errors.len());
    let (xa, ya, sa, ba, ea) = (
        xs.accessor(),
        ys.accessor(),
        slopes.accessor(),
        biases.accessor(),
        errors.accessor(),
    );
    let ir = linear_regression().ir;
    q.submit(move |h| {
        h.parallel_for(models, &ir, move |m| {
            let (s, b) = (sa.get(m), ba.get(m));
            let mut acc = 0.0f32;
            for i in 0..points {
                let e = ya.get(i) - (s * xa.get(i) + b);
                acc += e * e;
            }
            ea.set(m, acc / points as f32);
        });
    })
}

/// Regression coefficient (correlation) computation: moderate compute.
pub fn lin_reg_coeff() -> Benchmark {
    let ir = IrBuilder::new()
        .ops(Inst::GlobalLoad, 2)
        .loop_n(24, |b| b.ops(Inst::FloatMul, 2).ops(Inst::FloatAdd, 3))
        .ops(Inst::FloatDiv, 2)
        .ops(Inst::SpecialFn, 1)
        .ops(Inst::GlobalStore, 1)
        .build("lin_reg_coeff")
        .with_dram_fraction(0.8);
    Benchmark {
        name: "lin_reg_coeff",
        description: "regression coefficient (Pearson) computation",
        ir,
        work_items: 1 << 22,
        bound: Boundedness::ComputeBound,
    }
}

/// Number of clusters in the k-means benchmark.
pub const KMEANS_K: usize = 16;
/// Dimensionality of k-means points.
pub const KMEANS_DIM: usize = 4;

/// K-means assignment step: distance to every centroid (centroids cached
/// in local memory).
pub fn kmeans() -> Benchmark {
    let ir = IrBuilder::new()
        .ops(Inst::GlobalLoad, KMEANS_DIM as u64 + 1)
        .loop_n(KMEANS_K as u64, |b| {
            b.ops(Inst::LocalLoad, KMEANS_DIM as u64)
                .ops(Inst::FloatAdd, 2 * KMEANS_DIM as u64)
                .ops(Inst::FloatMul, KMEANS_DIM as u64)
                .ops(Inst::IntAdd, 1)
        })
        .ops(Inst::GlobalStore, 1)
        .build("kmeans")
        .with_dram_fraction(0.6);
    Benchmark {
        name: "kmeans",
        description: "k-means cluster-assignment step",
        ir,
        work_items: 1 << 22,
        bound: Boundedness::ComputeBound,
    }
}

/// Run a real k-means assignment: each point gets the index of its nearest
/// centroid. Points and centroids are row-major `[n × DIM]`.
pub fn run_kmeans_assign(
    q: &Queue,
    points: &Buffer<f32>,
    centroids: &Buffer<f32>,
    assignment: &Buffer<u32>,
) -> Event {
    let n = points.len() / KMEANS_DIM;
    assert_eq!(centroids.len(), KMEANS_K * KMEANS_DIM);
    assert_eq!(assignment.len(), n);
    let (pa, ca, aa) = (points.accessor(), centroids.accessor(), assignment.accessor());
    let ir = kmeans().ir;
    q.submit(move |h| {
        h.parallel_for(n, &ir, move |i| {
            let mut best = (f32::MAX, 0u32);
            for k in 0..KMEANS_K {
                let mut d = 0.0f32;
                for j in 0..KMEANS_DIM {
                    let diff = pa.get(i * KMEANS_DIM + j) - ca.get(k * KMEANS_DIM + j);
                    d += diff * diff;
                }
                if d < best.0 {
                    best = (d, k as u32);
                }
            }
            aa.set(i, best.1);
        });
    })
}

/// k-nearest-neighbour distance pass: streaming with a little arithmetic.
pub fn nearest_neighbor() -> Benchmark {
    let ir = IrBuilder::new()
        .ops(Inst::GlobalLoad, 3)
        .ops(Inst::FloatAdd, 4)
        .ops(Inst::FloatMul, 4)
        .ops(Inst::SpecialFn, 1)
        .ops(Inst::GlobalStore, 1)
        .build("nearest_neighbor");
    Benchmark {
        name: "nearest_neighbor",
        description: "nearest-neighbour distance computation",
        ir,
        work_items: 1 << 24,
        bound: Boundedness::MemoryBound,
    }
}

/// Geometric mean via log-sum: one load, two special functions.
pub fn geometric_mean() -> Benchmark {
    let ir = IrBuilder::new()
        .ops(Inst::GlobalLoad, 1)
        .ops(Inst::SpecialFn, 2)
        .ops(Inst::FloatAdd, 1)
        .ops(Inst::GlobalStore, 1)
        .build("geometric_mean");
    Benchmark {
        name: "geometric_mean",
        description: "geometric mean (log-domain reduction)",
        ir,
        work_items: 1 << 24,
        bound: Boundedness::Mixed,
    }
}

/// Mersenne-Twister tempering + Box-Muller: integer/bitwise heavy.
pub fn mersenne_twister() -> Benchmark {
    let ir = IrBuilder::new()
        .ops(Inst::GlobalLoad, 1)
        .ops(Inst::IntBitwise, 32)
        .ops(Inst::IntMul, 8)
        .ops(Inst::IntAdd, 16)
        .ops(Inst::SpecialFn, 4)
        .ops(Inst::GlobalStore, 2)
        .build("mersenne_twister");
    Benchmark {
        name: "mersenne_twister",
        description: "Mersenne-Twister generation with Box-Muller transform",
        ir,
        work_items: 1 << 24,
        bound: Boundedness::Mixed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synergy_sim::{DeviceSpec, SimDevice};

    fn queue() -> Queue {
        Queue::new(SimDevice::new(DeviceSpec::v100(), 0))
    }

    #[test]
    fn linear_regression_finds_true_model() {
        let q = queue();
        // Points on y = 2x + 1.
        let xs: Vec<f32> = (0..256).map(|i| i as f32 / 32.0).collect();
        let ys: Vec<f32> = xs.iter().map(|&x| 2.0 * x + 1.0).collect();
        let slopes = vec![0.0f32, 1.0, 2.0, 3.0];
        let biases = vec![0.0f32, 1.0, 1.0, 1.0];
        let xb = Buffer::from_slice(&xs);
        let yb = Buffer::from_slice(&ys);
        let sb = Buffer::from_slice(&slopes);
        let bb = Buffer::from_slice(&biases);
        let eb: Buffer<f32> = Buffer::zeros(4);
        run_linear_regression(&q, &xb, &yb, &sb, &bb, &eb).wait();
        let errs = eb.to_vec();
        let best = errs
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(best, 2, "model (2.0, 1.0) should win: {errs:?}");
        assert!(errs[2] < 1e-6);
    }

    #[test]
    fn kmeans_assigns_to_nearest() {
        let q = queue();
        // Two obvious clusters at (0,0,0,0) and (10,10,10,10); centroids
        // seeded exactly there (remaining centroids far away).
        let mut centroids = vec![1000.0f32; KMEANS_K * KMEANS_DIM];
        for j in 0..KMEANS_DIM {
            centroids[j] = 0.0;
            centroids[KMEANS_DIM + j] = 10.0;
        }
        let mut points = Vec::new();
        for i in 0..64 {
            let base = if i % 2 == 0 { 0.0 } else { 10.0 };
            for j in 0..KMEANS_DIM {
                points.push(base + (j as f32) * 0.01);
            }
        }
        let pb = Buffer::from_slice(&points);
        let cb = Buffer::from_slice(&centroids);
        let ab: Buffer<u32> = Buffer::zeros(64);
        run_kmeans_assign(&q, &pb, &cb, &ab).wait();
        let assign = ab.to_vec();
        for (i, &a) in assign.iter().enumerate() {
            assert_eq!(a, (i % 2) as u32, "point {i}");
        }
    }

    #[test]
    fn linreg_is_strongly_compute_bound() {
        let spec = DeviceSpec::v100();
        let info = synergy_kernel::extract(&linear_regression().ir);
        let cycles: f64 = synergy_kernel::FeatureClass::ALL
            .iter()
            .map(|&c| spec.cpi[c as usize] * info.features[c])
            .sum();
        let r = cycles * spec.mem_bw_gbps * 1e9
            / (info.global_bytes_per_item
                * spec.total_lanes() as f64
                * spec.freq_table.max_core() as f64
                * 1e6);
        assert!(r > 2.5, "linear_regression R = {r:.2}");
    }
}
