//! MiniWeather mini-app: 2-D stratified compressible flow (Norman et al.),
//! the second real-world application of the paper's Figure 10.
//!
//! State is `[density, u-momentum, w-momentum, potential temperature]` per
//! cell. A timestep runs five kernels: x-direction fluxes and tendencies,
//! z-direction fluxes and tendencies, and the state update — a mix of
//! wide stencils (compute-leaning) and streaming updates (memory-leaning),
//! which is exactly what gives per-kernel tuning its advantage over a
//! single application-wide frequency.

use synergy_kernel::{Inst, IrBuilder, KernelIr};
use synergy_metrics::EnergyTarget;
use synergy_rt::{Buffer, Event, Queue};

/// State variables per cell.
pub const NUM_VARS: usize = 4;

/// The per-step kernels, in submission order.
pub fn kernel_irs() -> Vec<KernelIr> {
    vec![
        // 4th-order flux reconstruction in x: wide stencil, cached.
        IrBuilder::new()
            .ops(Inst::GlobalLoad, 16)
            .ops(Inst::FloatMul, 24)
            .ops(Inst::FloatAdd, 20)
            .ops(Inst::GlobalStore, 4)
            .build("mw_flux_x")
            .with_dram_fraction(0.3),
        // Tendencies from x-fluxes: streaming.
        IrBuilder::new()
            .ops(Inst::GlobalLoad, 8)
            .ops(Inst::FloatAdd, 4)
            .ops(Inst::FloatMul, 4)
            .ops(Inst::GlobalStore, 4)
            .build("mw_tend_x")
            .with_dram_fraction(0.8),
        // Flux reconstruction in z (includes hydrostatic terms + sqrt).
        IrBuilder::new()
            .ops(Inst::GlobalLoad, 16)
            .ops(Inst::FloatMul, 26)
            .ops(Inst::FloatAdd, 22)
            .ops(Inst::SpecialFn, 2)
            .ops(Inst::GlobalStore, 4)
            .build("mw_flux_z")
            .with_dram_fraction(0.3),
        // Tendencies from z-fluxes: streaming.
        IrBuilder::new()
            .ops(Inst::GlobalLoad, 8)
            .ops(Inst::FloatAdd, 4)
            .ops(Inst::FloatMul, 4)
            .ops(Inst::GlobalStore, 4)
            .build("mw_tend_z")
            .with_dram_fraction(0.8),
        // State update: pure streaming.
        IrBuilder::new()
            .ops(Inst::GlobalLoad, 8)
            .ops(Inst::FloatMul, 4)
            .ops(Inst::FloatAdd, 4)
            .ops(Inst::GlobalStore, 4)
            .build("mw_update")
            .with_dram_fraction(1.0),
    ]
}

fn ir_by_name(name: &str) -> KernelIr {
    kernel_irs()
        .into_iter()
        .find(|k| k.name == name)
        .expect("known kernel")
}

/// MiniWeather state on one device.
pub struct MiniWeather {
    /// Cells in x.
    pub nx: usize,
    /// Cells in z.
    pub nz: usize,
    /// State, variable-major: `state[v * nx*nz + cell]`.
    state: Buffer<f32>,
    tend: Buffer<f32>,
    flux: Buffer<f32>,
    /// Fixed timestep.
    pub dt: f32,
}

impl MiniWeather {
    /// Initialize with a warm thermal bubble in a stratified background.
    pub fn new(nx: usize, nz: usize) -> MiniWeather {
        let n = nx * nz;
        let mut state = vec![0.0f32; NUM_VARS * n];
        for z in 0..nz {
            for x in 0..nx {
                let i = z * nx + x;
                // Background: density falls with height, theta constant.
                state[i] = 1.0 - 0.5 * z as f32 / nz as f32; // density
                state[3 * n + i] = 300.0; // potential temperature
                // Thermal bubble perturbation.
                let dx = (x as f32 - nx as f32 / 2.0) / (nx as f32 / 8.0);
                let dz = (z as f32 - nz as f32 / 4.0) / (nz as f32 / 8.0);
                let r2 = dx * dx + dz * dz;
                if r2 < 1.0 {
                    state[3 * n + i] += 3.0 * (1.0 - r2);
                }
            }
        }
        MiniWeather {
            nx,
            nz,
            state: Buffer::from_slice(&state),
            tend: Buffer::zeros(NUM_VARS * n),
            flux: Buffer::zeros(NUM_VARS * n),
            dt: 0.02,
        }
    }

    /// Work-items per kernel launch.
    pub fn items(&self) -> usize {
        self.nx * self.nz
    }

    fn submit(
        &self,
        q: &Queue,
        target: Option<EnergyTarget>,
        cgf: impl FnOnce(&mut synergy_rt::Handler),
    ) -> Event {
        match target {
            Some(t) => q.submit_with_target(t, cgf),
            None => q.submit(cgf),
        }
    }

    /// One timestep: x-fluxes, x-tendencies, z-fluxes, z-tendencies,
    /// update. Returns events in submission order.
    pub fn step(&mut self, q: &Queue, target: Option<EnergyTarget>) -> Vec<Event> {
        let (nx, nz) = (self.nx, self.nz);
        let n = self.items();
        let mut events = Vec::with_capacity(5);

        // 1. flux_x: upwind density*theta flux along x.
        {
            let (s, f) = (self.state.accessor(), self.flux.accessor());
            let ir = ir_by_name("mw_flux_x");
            events.push(self.submit(q, target, move |h| {
                h.parallel_for(n, &ir, move |i| {
                    let x = i % nx;
                    for v in 0..NUM_VARS {
                        let idx = v * n + i;
                        if x == 0 || x + 1 >= nx {
                            f.set(idx, 0.0);
                            continue;
                        }
                        let grad = s.get(idx + 1) - s.get(idx - 1);
                        let u = s.get(n + i); // u-momentum as advective speed
                        f.set(idx, -0.5 * u * grad);
                    }
                });
            }));
        }

        // 2. tend_x: tendencies from x-flux divergence.
        {
            let (f, t) = (self.flux.accessor(), self.tend.accessor());
            let ir = ir_by_name("mw_tend_x");
            events.push(self.submit(q, target, move |h| {
                h.parallel_for(n, &ir, move |i| {
                    let x = i % nx;
                    for v in 0..NUM_VARS {
                        let idx = v * n + i;
                        let div = if x == 0 || x + 1 >= nx {
                            0.0
                        } else {
                            0.5 * (f.get(idx + 1) - f.get(idx - 1))
                        };
                        t.set(idx, div);
                    }
                });
            }));
        }

        // 3. flux_z: vertical fluxes with buoyancy source on w-momentum.
        {
            let (s, f) = (self.state.accessor(), self.flux.accessor());
            let ir = ir_by_name("mw_flux_z");
            events.push(self.submit(q, target, move |h| {
                h.parallel_for(n, &ir, move |i| {
                    let z = i / nx;
                    for v in 0..NUM_VARS {
                        let idx = v * n + i;
                        if z == 0 || z + 1 >= nz {
                            f.set(idx, 0.0);
                            continue;
                        }
                        let grad = s.get(idx + nx) - s.get(idx - nx);
                        let w = s.get(2 * n + i);
                        f.set(idx, -0.5 * w * grad);
                    }
                });
            }));
        }

        // 4. tend_z: add z-flux divergence + buoyancy to tendencies.
        {
            let (s, f, t) = (
                self.state.accessor(),
                self.flux.accessor(),
                self.tend.accessor(),
            );
            let ir = ir_by_name("mw_tend_z");
            events.push(self.submit(q, target, move |h| {
                h.parallel_for(n, &ir, move |i| {
                    let z = i / nx;
                    for v in 0..NUM_VARS {
                        let idx = v * n + i;
                        let div = if z == 0 || z + 1 >= nz {
                            0.0
                        } else {
                            0.5 * (f.get(idx + nx) - f.get(idx - nx))
                        };
                        let buoy = if v == 2 {
                            // w-momentum: buoyancy from theta anomaly.
                            0.01 * (s.get(3 * n + i) - 300.0)
                        } else {
                            0.0
                        };
                        t.set(idx, t.get(idx) + div + buoy);
                    }
                });
            }));
        }

        // 5. update: forward-Euler state advance.
        {
            let (s, t) = (self.state.accessor(), self.tend.accessor());
            let ir = ir_by_name("mw_update");
            let dt = self.dt;
            events.push(self.submit(q, target, move |h| {
                h.parallel_for(n, &ir, move |i| {
                    for v in 0..NUM_VARS {
                        let idx = v * n + i;
                        let next = s.get(idx) + dt * t.get(idx);
                        s.set(idx, if v == 0 { next.max(1e-3) } else { next });
                    }
                });
            }));
        }

        events
    }

    /// Peak potential-temperature anomaly (tracks the rising bubble).
    pub fn theta_anomaly(&self) -> f32 {
        let n = self.items();
        let s = self.state.to_vec();
        s[3 * n..4 * n]
            .iter()
            .map(|&v| v - 300.0)
            .fold(f32::MIN, f32::max)
    }

    /// Total density (mass proxy).
    pub fn total_density(&self) -> f32 {
        let n = self.items();
        self.state.to_vec()[..n].iter().sum()
    }

    /// Height (grid row) of the bubble's hottest cell.
    pub fn bubble_height(&self) -> usize {
        let n = self.items();
        let s = self.state.to_vec();
        let (mut best, mut at) = (f32::MIN, 0);
        for (i, &v) in s[3 * n..4 * n].iter().enumerate() {
            if v > best {
                best = v;
                at = i;
            }
        }
        at / self.nx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synergy_sim::{DeviceSpec, SimDevice};

    fn queue() -> Queue {
        Queue::new(SimDevice::new(DeviceSpec::v100(), 0))
    }

    #[test]
    fn five_kernels_per_step() {
        assert_eq!(kernel_irs().len(), 5);
        let mut app = MiniWeather::new(32, 32);
        let q = queue();
        let events = app.step(&q, None);
        q.wait();
        assert_eq!(events.len(), 5);
        for e in &events {
            assert!(e.execution().is_some());
        }
    }

    #[test]
    fn bubble_initialized_warm() {
        let app = MiniWeather::new(64, 64);
        assert!(app.theta_anomaly() > 2.5);
    }

    #[test]
    fn state_stays_finite_over_steps() {
        let mut app = MiniWeather::new(32, 32);
        let q = queue();
        for _ in 0..10 {
            app.step(&q, None);
        }
        q.wait();
        let n = app.items();
        let s = app.state.to_vec();
        assert!(s.iter().all(|v| v.is_finite()));
        assert!(s[..n].iter().all(|&d| d > 0.0), "density must stay positive");
    }

    #[test]
    fn buoyancy_accelerates_bubble_upward() {
        let mut app = MiniWeather::new(48, 48);
        let q = queue();
        let n = app.items();
        for _ in 0..20 {
            app.step(&q, None);
        }
        q.wait();
        let s = app.state.to_vec();
        let w_max = s[2 * n..3 * n].iter().cloned().fold(f32::MIN, f32::max);
        assert!(w_max > 0.0, "warm bubble should gain upward momentum");
    }

    #[test]
    fn kernel_names_are_prefixed() {
        for k in kernel_irs() {
            assert!(k.name.starts_with("mw_"), "{}", k.name);
        }
    }
}
