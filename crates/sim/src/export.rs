//! Timeline export in the Chrome trace-event format.
//!
//! `chrome://tracing` / Perfetto can open the output: kernel executions
//! become duration slices on one track per device, and the power trace
//! becomes a counter track — the visual a performance engineer expects
//! from an energy profiler.

use crate::device::KernelExecution;
use crate::trace::PowerTrace;
use serde::Serialize;

/// One Chrome trace event (subset of the spec we emit).
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct TraceEvent {
    /// Event name (kernel name or counter name).
    pub name: String,
    /// Phase: `"X"` = complete slice, `"C"` = counter.
    pub ph: String,
    /// Timestamp in microseconds.
    pub ts: f64,
    /// Duration in microseconds (slices only).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub dur: Option<f64>,
    /// Process id (device index).
    pub pid: u32,
    /// Thread id (track within the device).
    pub tid: u32,
    /// Arguments (energy for slices, watts for counters).
    pub args: serde_json::Value,
}

/// Build trace events for a device's kernel log.
pub fn kernel_events(device_index: u32, kernels: &[KernelExecution]) -> Vec<TraceEvent> {
    kernels
        .iter()
        .map(|k| TraceEvent {
            name: k.name.clone(),
            ph: "X".into(),
            ts: k.start_ns as f64 / 1e3,
            dur: Some((k.end_ns - k.start_ns) as f64 / 1e3),
            pid: device_index,
            tid: 0,
            args: serde_json::json!({
                "energy_j": k.energy_j,
                "core_mhz": k.clocks.core_mhz,
                "mem_mhz": k.clocks.mem_mhz,
            }),
        })
        .collect()
}

/// Build counter events sampling the power trace every `interval_ns`.
pub fn power_events(
    device_index: u32,
    trace: &PowerTrace,
    interval_ns: u64,
) -> Vec<TraceEvent> {
    trace
        .sample(0, trace.end_ns(), interval_ns, None)
        .into_iter()
        .map(|(t, w)| TraceEvent {
            name: "board_power".into(),
            ph: "C".into(),
            ts: t as f64 / 1e3,
            dur: None,
            pid: device_index,
            tid: 0,
            args: serde_json::json!({ "watts": w }),
        })
        .collect()
}

/// Serialize a full Chrome trace document (`{"traceEvents": [...]}`).
pub fn to_chrome_trace(events: &[TraceEvent]) -> String {
    serde_json::to_string_pretty(&serde_json::json!({ "traceEvents": events }))
        .expect("trace serializes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::SimDevice;
    use crate::specs::DeviceSpec;
    use synergy_kernel::{extract, Inst, IrBuilder};

    fn run_two_kernels() -> (Vec<KernelExecution>, PowerTrace) {
        let dev = SimDevice::new(DeviceSpec::v100(), 0);
        let ir = IrBuilder::new()
            .ops(Inst::GlobalLoad, 1)
            .loop_n(128, |b| b.ops(Inst::FloatAdd, 1))
            .ops(Inst::GlobalStore, 1)
            .build("k");
        let info = extract(&ir);
        let wl = crate::model::Workload::from_static(&info, 1 << 22);
        let a = dev.execute(&wl);
        dev.advance_idle(1_000_000);
        let b = dev.execute(&wl);
        (vec![a, b], dev.trace_snapshot())
    }

    #[test]
    fn kernel_events_are_ordered_slices() {
        let (kernels, _) = run_two_kernels();
        let ev = kernel_events(0, &kernels);
        assert_eq!(ev.len(), 2);
        assert!(ev.iter().all(|e| e.ph == "X" && e.dur.unwrap() > 0.0));
        assert!(ev[0].ts + ev[0].dur.unwrap() <= ev[1].ts + 1e-9);
        assert_eq!(ev[0].args["core_mhz"], 1315);
    }

    #[test]
    fn power_events_cover_trace() {
        let (_, trace) = run_two_kernels();
        let ev = power_events(0, &trace, 100_000);
        assert!(!ev.is_empty());
        assert!(ev.iter().all(|e| e.ph == "C"));
        let watts = ev[0].args["watts"].as_f64().unwrap();
        assert!(watts > 0.0);
    }

    #[test]
    fn document_parses_as_json() {
        let (kernels, trace) = run_two_kernels();
        let mut ev = kernel_events(3, &kernels);
        ev.extend(power_events(3, &trace, 500_000));
        let doc = to_chrome_trace(&ev);
        let parsed: serde_json::Value = serde_json::from_str(&doc).unwrap();
        let arr = parsed["traceEvents"].as_array().unwrap();
        assert_eq!(arr.len(), ev.len());
        assert_eq!(arr[0]["pid"], 3);
    }
}
