//! Simulated compute nodes: a hostname plus a set of GPU boards.
//!
//! Matches the paper's testbeds: Marconi-100 nodes carry an IBM Power9 host
//! and four NVIDIA V100s; the AMD node carries an EPYC 7313 and one MI100.

use crate::device::SimDevice;
use crate::specs::DeviceSpec;
use std::sync::Arc;

/// A simulated cluster node.
#[derive(Debug, Clone)]
pub struct SimNode {
    /// Hostname, unique within a cluster.
    pub hostname: String,
    /// GPU boards installed on the node.
    pub gpus: Vec<Arc<SimDevice>>,
}

impl SimNode {
    /// Build a node with `gpu_count` boards of the given model.
    pub fn new(hostname: impl Into<String>, spec: &DeviceSpec, gpu_count: u32) -> SimNode {
        let hostname = hostname.into();
        let gpus = (0..gpu_count)
            .map(|i| SimDevice::new(spec.clone(), i))
            .collect();
        SimNode { hostname, gpus }
    }

    /// A Marconi-100 style node: four V100 boards.
    pub fn marconi100(hostname: impl Into<String>) -> SimNode {
        SimNode::new(hostname, &DeviceSpec::v100(), 4)
    }

    /// The paper's AMD evaluation node: one MI100 board.
    pub fn amd_node(hostname: impl Into<String>) -> SimNode {
        SimNode::new(hostname, &DeviceSpec::mi100(), 1)
    }

    /// Number of GPUs on the node.
    pub fn gpu_count(&self) -> usize {
        self.gpus.len()
    }

    /// Total energy recorded across the node's GPUs so far, in joules.
    pub fn total_gpu_energy_j(&self) -> f64 {
        self.gpus.iter().map(|g| g.total_energy_mj() * 1e-3).sum()
    }

    /// Restore every board to default clocks and the secure API restriction
    /// (what the paper's epilogue does to leave the node consistent).
    pub fn restore_defaults(&self) {
        for gpu in &self.gpus {
            gpu.reset_application_clocks();
            gpu.set_locked_core_clocks(None).expect("clearing bounds");
            gpu.set_api_restriction(true);
        }
    }
}

/// Build `count` Marconi-100 style nodes named `node001`, `node002`, ...
pub fn marconi100_partition(count: usize) -> Vec<SimNode> {
    (1..=count)
        .map(|i| SimNode::marconi100(format!("node{i:03}")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freq::ClockConfig;

    #[test]
    fn marconi_node_has_four_v100s() {
        let n = SimNode::marconi100("node001");
        assert_eq!(n.gpu_count(), 4);
        assert!(n.gpus.iter().all(|g| g.spec().name.contains("V100")));
    }

    #[test]
    fn amd_node_has_one_mi100() {
        let n = SimNode::amd_node("amd01");
        assert_eq!(n.gpu_count(), 1);
        assert_eq!(n.gpus[0].spec().name, "AMD MI100");
    }

    #[test]
    fn partition_names_are_unique() {
        let p = marconi100_partition(16);
        assert_eq!(p.len(), 16);
        assert_eq!(p[0].hostname, "node001");
        assert_eq!(p[15].hostname, "node016");
    }

    #[test]
    fn restore_defaults_clears_everything() {
        let n = SimNode::marconi100("node001");
        let gpu = &n.gpus[0];
        gpu.set_api_restriction(false);
        gpu.set_application_clocks(ClockConfig::new(877, 135)).unwrap();
        gpu.set_locked_core_clocks(Some((135, 1000))).unwrap();
        n.restore_defaults();
        assert!(gpu.api_restricted());
        assert_eq!(gpu.application_clocks(), None);
        assert_eq!(gpu.effective_clocks(), gpu.spec().baseline_clocks());
    }

    #[test]
    fn node_energy_aggregates_gpus() {
        let n = SimNode::marconi100("node001");
        for g in &n.gpus {
            g.advance_idle(1_000_000_000);
        }
        let expected = 4.0 * n.gpus[0].spec().idle_power_w;
        assert!((n.total_gpu_energy_j() - expected).abs() < 1e-6);
    }
}
