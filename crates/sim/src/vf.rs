//! Voltage/frequency (DVFS) curves.
//!
//! Dynamic power scales as `C · V(f)² · f`. The voltage a GPU needs is a
//! piecewise-linear function of the core clock: flat at the minimum voltage
//! up to a knee, then rising towards the maximum. This shape is what makes
//! mid-range frequencies energy-optimal for compute-bound kernels — below
//! the knee, slowing down no longer reduces voltage, so energy/task rises
//! again as static energy accumulates.

use serde::{Deserialize, Serialize};

/// A piecewise-linear relative-voltage curve over core frequency.
///
/// Points are `(f_mhz, v_rel)` with `v_rel` normalized so the value at the
/// maximum frequency is 1.0. Queries clamp outside the covered range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VfCurve {
    points: Vec<(f64, f64)>,
}

impl VfCurve {
    /// Build a curve from `(f_mhz, v_rel)` points. Points are sorted by
    /// frequency; at least two are required and voltages must be positive.
    pub fn new(mut points: Vec<(f64, f64)>) -> Self {
        assert!(points.len() >= 2, "need at least two V/f points");
        points.sort_by(|a, b| a.0.total_cmp(&b.0));
        assert!(
            points.iter().all(|&(f, v)| f > 0.0 && v > 0.0),
            "V/f points must be positive"
        );
        assert!(
            points.windows(2).all(|w| w[0].1 <= w[1].1),
            "voltage must be non-decreasing in frequency"
        );
        VfCurve { points }
    }

    /// The classic three-point DVFS shape: minimum voltage held flat until
    /// `knee_mhz`, then linear up to `(max_mhz, 1.0)`.
    pub fn knee(min_mhz: f64, knee_mhz: f64, max_mhz: f64, v_min: f64) -> Self {
        assert!(min_mhz < knee_mhz && knee_mhz < max_mhz);
        assert!(v_min > 0.0 && v_min < 1.0);
        VfCurve::new(vec![(min_mhz, v_min), (knee_mhz, v_min), (max_mhz, 1.0)])
    }

    /// Relative voltage at `f_mhz` (clamped to the covered range).
    pub fn voltage(&self, f_mhz: f64) -> f64 {
        let pts = &self.points;
        if f_mhz <= pts[0].0 {
            return pts[0].1;
        }
        if f_mhz >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        for w in pts.windows(2) {
            let (f0, v0) = w[0];
            let (f1, v1) = w[1];
            if f_mhz <= f1 {
                let t = (f_mhz - f0) / (f1 - f0);
                return v0 + t * (v1 - v0);
            }
        }
        unreachable!("clamped above")
    }

    /// The `V(f)² · f` factor that dynamic power is proportional to,
    /// normalized to 1.0 at the curve's maximum frequency.
    pub fn dynamic_factor(&self, f_mhz: f64) -> f64 {
        let f_max = self.points[self.points.len() - 1].0;
        let v = self.voltage(f_mhz);
        (v * v * f_mhz) / f_max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> VfCurve {
        VfCurve::knee(135.0, 700.0, 1530.0, 0.7)
    }

    #[test]
    fn flat_below_knee() {
        let c = curve();
        assert_eq!(c.voltage(135.0), 0.7);
        assert_eq!(c.voltage(400.0), 0.7);
        assert_eq!(c.voltage(700.0), 0.7);
    }

    #[test]
    fn linear_above_knee() {
        let c = curve();
        let mid = (700.0 + 1530.0) / 2.0;
        let v = c.voltage(mid);
        assert!((v - (0.7 + 1.0) / 2.0).abs() < 1e-12);
        assert_eq!(c.voltage(1530.0), 1.0);
    }

    #[test]
    fn clamps_outside_range() {
        let c = curve();
        assert_eq!(c.voltage(1.0), 0.7);
        assert_eq!(c.voltage(10_000.0), 1.0);
    }

    #[test]
    fn dynamic_factor_normalized_at_max() {
        let c = curve();
        assert!((c.dynamic_factor(1530.0) - 1.0).abs() < 1e-12);
        // Below the knee power falls linearly with f at constant V.
        let a = c.dynamic_factor(400.0);
        let b = c.dynamic_factor(200.0);
        assert!((a / b - 2.0).abs() < 1e-9);
    }

    #[test]
    fn dynamic_factor_is_monotonic() {
        let c = curve();
        let mut prev = 0.0;
        for f in (135..=1530).step_by(5) {
            let d = c.dynamic_factor(f as f64);
            assert!(d >= prev, "dynamic factor dropped at {f} MHz");
            prev = d;
        }
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn rejects_decreasing_voltage() {
        VfCurve::new(vec![(100.0, 1.0), (200.0, 0.5)]);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_point() {
        VfCurve::new(vec![(100.0, 1.0)]);
    }
}
