//! The analytical execution-time and power model.
//!
//! This is the physics of the simulator: given a device spec, a workload
//! (static features × work-items) and a clock configuration, produce the
//! kernel duration and the average board power while it runs.
//!
//! * **Time** follows a roofline with partial overlap: the compute phase
//!   scales inversely with the core clock (every issued instruction,
//!   including memory *issue*, costs core cycles), the memory phase is
//!   DRAM-bytes over bandwidth (scaling with the memory clock), and the
//!   kernel takes `max + rho·min` of the two plus a fixed launch overhead.
//! * **Power** is `idle + core_budget · V(f)²·f/f_max · util_core +
//!   mem_power · util_mem · (f_mem/f_mem_max)`, the standard DVFS
//!   decomposition. Utilizations are the phase-time fractions.

use crate::freq::ClockConfig;
use crate::specs::DeviceSpec;
use serde::{Deserialize, Serialize};
use synergy_kernel::{FeatureClass, FeatureVector, KernelStaticInfo};

/// A kernel ready to run on a device: static features plus launch size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Kernel name (model key, trace label).
    pub name: String,
    /// Table-1 static features per work-item.
    pub features: FeatureVector,
    /// DRAM bytes moved per work-item (after caches).
    pub dram_bytes_per_item: f64,
    /// Number of work-items launched.
    pub work_items: u64,
}

impl Workload {
    /// Build from the output of the feature-extraction pass.
    pub fn from_static(info: &KernelStaticInfo, work_items: u64) -> Self {
        Workload {
            name: info.name.clone(),
            features: info.features,
            dram_bytes_per_item: info.global_bytes_per_item,
            work_items,
        }
    }

    /// Total DRAM traffic for the launch, in bytes.
    pub fn total_dram_bytes(&self) -> f64 {
        self.dram_bytes_per_item * self.work_items as f64
    }
}

/// The model's verdict for one (device, workload, clocks) triple.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelTiming {
    /// Fixed launch overhead (runs at idle power).
    pub launch_ns: u64,
    /// Execution time after launch, in nanoseconds.
    pub exec_ns: u64,
    /// Average board power during execution, in watts.
    pub exec_power_w: f64,
    /// Compute-phase time in seconds (diagnostic).
    pub t_compute_s: f64,
    /// Memory-phase time in seconds (diagnostic).
    pub t_memory_s: f64,
    /// Core utilization in `[0, 1]`.
    pub util_core: f64,
    /// Memory utilization in `[0, 1]`.
    pub util_mem: f64,
}

impl KernelTiming {
    /// Total wall-clock duration of the launch in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.launch_ns + self.exec_ns
    }

    /// Total duration in seconds.
    pub fn duration_s(&self) -> f64 {
        self.duration_ns() as f64 * 1e-9
    }

    /// Energy of the execution phase plus the launch-overhead phase (at
    /// the board's overhead power), in joules.
    pub fn energy_j(&self, launch_power_w: f64) -> f64 {
        self.exec_power_w * self.exec_ns as f64 * 1e-9
            + launch_power_w * self.launch_ns as f64 * 1e-9
    }

    /// True when the kernel is limited by DRAM rather than issue/compute.
    pub fn is_memory_bound(&self) -> bool {
        self.t_memory_s > self.t_compute_s
    }
}

/// Evaluate the model. Pure and deterministic.
///
/// ```
/// use synergy_sim::{evaluate, ClockConfig, DeviceSpec, Workload};
/// use synergy_kernel::{extract, Inst, IrBuilder};
///
/// let spec = DeviceSpec::v100();
/// let ir = IrBuilder::new()
///     .ops(Inst::GlobalLoad, 2)
///     .ops(Inst::FloatAdd, 1)
///     .ops(Inst::GlobalStore, 1)
///     .build("vec_add");
/// let wl = Workload::from_static(&extract(&ir), 1 << 20);
/// let t = evaluate(&spec, &wl, spec.baseline_clocks());
/// assert!(t.is_memory_bound());
/// assert!(t.exec_power_w > spec.idle_power_w);
/// ```
pub fn evaluate(spec: &DeviceSpec, wl: &Workload, clocks: ClockConfig) -> KernelTiming {
    let items = wl.work_items as f64;

    // --- compute phase -----------------------------------------------------
    let cycles_per_item: f64 = FeatureClass::ALL
        .iter()
        .map(|&c| spec.cpi[c as usize] * wl.features[c])
        .sum();
    let lanes = spec.total_lanes() as f64;
    // Waves of `lanes` items; a partially filled last wave still takes a
    // full pass, which floors the time for tiny launches.
    let waves = (items / lanes).ceil().max(if items > 0.0 { 1.0 } else { 0.0 });
    let core_hz = clocks.core_mhz as f64 * 1e6;
    let t_compute = if core_hz > 0.0 {
        cycles_per_item * waves / core_hz
    } else {
        0.0
    };

    // --- memory phase ------------------------------------------------------
    let bw = spec.mem_bw_gbps * 1e9 * clocks.mem_mhz as f64
        / spec.freq_table.top_mem() as f64;
    let t_memory = if bw > 0.0 {
        wl.total_dram_bytes() / bw
    } else {
        0.0
    };

    // --- roofline with partial overlap --------------------------------------
    let rho = spec.overlap_residual;
    let t_exec = t_compute.max(t_memory) + rho * t_compute.min(t_memory);

    let (util_core, util_mem) = if t_exec > 0.0 {
        (
            (t_compute / t_exec).clamp(0.0, 1.0),
            (t_memory / t_exec).clamp(0.0, 1.0),
        )
    } else {
        (0.0, 0.0)
    };

    // --- power ---------------------------------------------------------------
    // Even memory-bound kernels keep the SMs toggling (stalled warps,
    // address math, replays), so core activity never falls to the pure
    // compute fraction: blend in a fraction of the memory-phase activity.
    let core_activity =
        (util_core + spec.stall_activity * util_mem * (1.0 - util_core)).clamp(0.0, 1.0);
    let dyn_core = spec.core_power_budget_w()
        * spec.vf.dynamic_factor(clocks.core_mhz as f64)
        * core_activity;
    // Memory power: a background share (refresh, PHY, clock tree) that
    // scales only with the memory clock, plus a traffic share that scales
    // with utilization. Lowering the memory clock is the only way to shed
    // the background share — which is exactly what makes multi-mem-clock
    // boards (Titan X) interesting for compute-bound kernels.
    let mem_ratio = clocks.mem_mhz as f64 / spec.freq_table.top_mem() as f64;
    let dyn_mem = spec.mem_power_w
        * (spec.mem_background + (1.0 - spec.mem_background) * util_mem)
        * mem_ratio;
    let exec_power = spec.idle_power_w + dyn_core + dyn_mem;

    KernelTiming {
        launch_ns: spec.launch_overhead_ns,
        exec_ns: (t_exec * 1e9).round() as u64,
        exec_power_w: exec_power,
        t_compute_s: t_compute,
        t_memory_s: t_memory,
        util_core,
        util_mem,
    }
}

/// Sweep the model over every core clock at the top memory clock,
/// returning `(clocks, timing)` pairs — the raw material for Pareto fronts
/// and training sets.
pub fn core_frequency_sweep(spec: &DeviceSpec, wl: &Workload) -> Vec<(ClockConfig, KernelTiming)> {
    spec.freq_table
        .core_sweep()
        .into_iter()
        .map(|c| (c, evaluate(spec, wl, c)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use synergy_kernel::{extract, Inst, IrBuilder};

    fn compute_kernel(intensity: u64) -> Workload {
        let ir = IrBuilder::new()
            .ops(Inst::GlobalLoad, 1)
            .loop_n(intensity, |b| b.ops(Inst::FloatMul, 1).ops(Inst::FloatAdd, 1))
            .ops(Inst::GlobalStore, 1)
            .build("cb");
        Workload::from_static(&extract(&ir), 1 << 22)
    }

    fn streaming_kernel() -> Workload {
        let ir = IrBuilder::new()
            .ops(Inst::GlobalLoad, 4)
            .ops(Inst::FloatAdd, 3)
            .ops(Inst::GlobalStore, 1)
            .build("mb");
        Workload::from_static(&extract(&ir), 1 << 22)
    }

    #[test]
    fn compute_bound_time_scales_inverse_with_core_clock() {
        let spec = DeviceSpec::v100();
        let wl = compute_kernel(512);
        let lo = evaluate(&spec, &wl, ClockConfig::new(877, 765));
        let hi = evaluate(&spec, &wl, ClockConfig::new(877, 1530));
        assert!(!lo.is_memory_bound() && !hi.is_memory_bound());
        let ratio = lo.exec_ns as f64 / hi.exec_ns as f64;
        assert!((ratio - 2.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn memory_bound_time_insensitive_to_core_clock() {
        let spec = DeviceSpec::v100();
        let wl = streaming_kernel();
        let base = evaluate(&spec, &wl, ClockConfig::new(877, 1530));
        assert!(base.is_memory_bound());
        let mid = evaluate(&spec, &wl, ClockConfig::new(877, 1000));
        let slowdown = mid.exec_ns as f64 / base.exec_ns as f64;
        assert!(slowdown < 1.10, "slowdown {slowdown}");
    }

    #[test]
    fn time_is_monotone_nonincreasing_in_core_clock() {
        let spec = DeviceSpec::v100();
        for wl in [compute_kernel(64), streaming_kernel()] {
            let sweep = core_frequency_sweep(&spec, &wl);
            for w in sweep.windows(2) {
                assert!(
                    w[1].1.exec_ns <= w[0].1.exec_ns,
                    "time increased from {} to {} MHz",
                    w[0].0.core_mhz,
                    w[1].0.core_mhz
                );
            }
        }
    }

    #[test]
    fn power_within_physical_bounds() {
        let spec = DeviceSpec::v100();
        for wl in [compute_kernel(512), streaming_kernel()] {
            for (c, t) in core_frequency_sweep(&spec, &wl) {
                assert!(t.exec_power_w >= spec.idle_power_w, "at {c}");
                assert!(t.exec_power_w <= spec.tdp_w + 1e-9, "at {c}");
            }
        }
    }

    #[test]
    fn compute_bound_energy_is_a_bathtub() {
        // Energy per task should fall from f_min to a minimum near the DVFS
        // knee, then rise toward f_max.
        let spec = DeviceSpec::v100();
        let wl = compute_kernel(512);
        let sweep = core_frequency_sweep(&spec, &wl);
        let energies: Vec<f64> = sweep
            .iter()
            .map(|(_, t)| t.energy_j(spec.overhead_power_w))
            .collect();
        let min_idx = energies
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert!(min_idx > 0, "minimum should not be at f_min");
        assert!(
            min_idx < energies.len() - 1,
            "minimum should not be at f_max"
        );
        let f_opt = sweep[min_idx].0.core_mhz as f64;
        assert!(
            (500.0..1100.0).contains(&f_opt),
            "energy-optimal frequency {f_opt} should sit near the knee"
        );
    }

    #[test]
    fn memory_bound_kernel_saves_energy_at_lower_core_clock() {
        let spec = DeviceSpec::v100();
        let wl = streaming_kernel();
        let hi = evaluate(&spec, &wl, ClockConfig::new(877, 1530));
        let knee = evaluate(&spec, &wl, ClockConfig::new(877, 870));
        let e_hi = hi.energy_j(spec.overhead_power_w);
        let e_knee = knee.energy_j(spec.overhead_power_w);
        assert!(
            e_knee < 0.85 * e_hi,
            "memory-bound down-clock should save >15% energy: {e_knee} vs {e_hi}"
        );
        // ...while losing little performance.
        assert!((knee.exec_ns as f64) < 1.1 * hi.exec_ns as f64);
    }

    #[test]
    fn zero_items_takes_only_launch_overhead() {
        let spec = DeviceSpec::v100();
        let wl = Workload {
            name: "empty".into(),
            features: FeatureVector::ZERO,
            dram_bytes_per_item: 0.0,
            work_items: 0,
        };
        let t = evaluate(&spec, &wl, spec.baseline_clocks());
        assert_eq!(t.exec_ns, 0);
        assert_eq!(t.duration_ns(), spec.launch_overhead_ns);
        assert_eq!(t.util_core, 0.0);
    }

    #[test]
    fn tiny_launch_is_floored_to_one_wave() {
        let spec = DeviceSpec::v100();
        let info = extract(
            &IrBuilder::new()
                .ops(Inst::FloatAdd, 100)
                .build("tiny"),
        );
        let one = evaluate(&spec, &Workload::from_static(&info, 1), spec.baseline_clocks());
        let full = evaluate(
            &spec,
            &Workload::from_static(&info, spec.total_lanes()),
            spec.baseline_clocks(),
        );
        // One item and one full wave take the same time.
        assert_eq!(one.exec_ns, full.exec_ns);
    }

    #[test]
    fn mi100_auto_runs_at_max() {
        let spec = DeviceSpec::mi100();
        assert_eq!(spec.baseline_clocks().core_mhz, 1502);
    }

    #[test]
    fn utilizations_are_fractions() {
        let spec = DeviceSpec::a100();
        for wl in [compute_kernel(16), streaming_kernel()] {
            for (_, t) in core_frequency_sweep(&spec, &wl) {
                assert!((0.0..=1.0).contains(&t.util_core));
                assert!((0.0..=1.0).contains(&t.util_mem));
            }
        }
    }
}
