//! The stateful simulated GPU.
//!
//! A [`SimDevice`] owns a virtual timeline (nanoseconds since power-on), a
//! power trace, and the mutable clock state that the vendor management
//! libraries manipulate: current application clocks, the root-only locked
//! clock bounds, and the API-restriction flag that gates unprivileged clock
//! changes (the mechanism the paper's SLURM plugin toggles).
//!
//! The device is thread-safe; all state sits behind a `parking_lot::Mutex`
//! so runtime worker threads, profiler threads and the scheduler can share
//! it.

use crate::error::SimError;
use crate::freq::ClockConfig;
use crate::model::{evaluate, KernelTiming, Workload};
use crate::noise::NoiseGen;
use crate::specs::DeviceSpec;
use crate::trace::PowerTrace;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Completed kernel launch, as recorded on the device timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelExecution {
    /// Kernel name.
    pub name: String,
    /// Launch start on the device timeline (ns).
    pub start_ns: u64,
    /// Completion time on the device timeline (ns).
    pub end_ns: u64,
    /// Exact energy consumed over `[start_ns, end_ns)`, in joules.
    pub energy_j: f64,
    /// Clocks the kernel actually ran at.
    pub clocks: ClockConfig,
    /// Model diagnostics for the run.
    pub timing: KernelTiming,
}

impl KernelExecution {
    /// Wall-clock duration in seconds.
    pub fn duration_s(&self) -> f64 {
        (self.end_ns - self.start_ns) as f64 * 1e-9
    }
}

#[derive(Debug)]
struct DeviceState {
    /// Application clocks, if any have been set.
    app_clocks: Option<ClockConfig>,
    /// Root-only hard clock bounds `(min_core, max_core)`.
    locked_core: Option<(u32, u32)>,
    /// When true (the secure default), setting application clocks requires
    /// root — `nvmlDeviceSetAPIRestriction` semantics.
    api_restricted: bool,
    /// Virtual now, ns since power-on.
    now_ns: u64,
    /// Continuous power record.
    trace: PowerTrace,
    /// Total energy counter in millijoules (NVML-style).
    total_energy_mj: f64,
    /// Number of kernels executed (diagnostics).
    kernels_executed: u64,
    /// Number of clock-change operations (diagnostics / overhead studies).
    clock_sets: u64,
}

/// A simulated GPU board.
#[derive(Debug)]
pub struct SimDevice {
    spec: Arc<DeviceSpec>,
    index: u32,
    uuid: String,
    noise: NoiseGen,
    state: Mutex<DeviceState>,
}

impl SimDevice {
    /// Bring up a board of the given model as device `index`.
    pub fn new(spec: DeviceSpec, index: u32) -> Arc<SimDevice> {
        let uuid = format!("GPU-{:08x}-{}", fxhash(&spec.name) as u32, index);
        Arc::new(SimDevice {
            noise: NoiseGen::new(fxhash(&uuid), 0.01),
            spec: Arc::new(spec),
            index,
            uuid,
            state: Mutex::new(DeviceState {
                app_clocks: None,
                locked_core: None,
                api_restricted: true,
                now_ns: 0,
                trace: PowerTrace::new(),
                total_energy_mj: 0.0,
                kernels_executed: 0,
                clock_sets: 0,
            }),
        })
    }

    /// The static spec of this board.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Board index on its node.
    pub fn index(&self) -> u32 {
        self.index
    }

    /// Stable unique identifier.
    pub fn uuid(&self) -> &str {
        &self.uuid
    }

    /// Current virtual time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.state.lock().now_ns
    }

    /// The clocks the next kernel would run at: application clocks if set
    /// (clamped into the locked bounds), else the baseline (default or
    /// auto-boost), also clamped.
    pub fn effective_clocks(&self) -> ClockConfig {
        let st = self.state.lock();
        Self::effective_clocks_locked(&self.spec, &st)
    }

    fn effective_clocks_locked(spec: &DeviceSpec, st: &DeviceState) -> ClockConfig {
        let mut c = st.app_clocks.unwrap_or_else(|| spec.baseline_clocks());
        if let Some((lo, hi)) = st.locked_core {
            let clamped = c.core_mhz.clamp(lo, hi);
            let snapped = spec.freq_table.nearest_core(clamped);
            // Snapping must not escape the hard bounds: fall back to the
            // extreme table entry inside [lo, hi].
            c.core_mhz = if snapped > hi {
                *spec
                    .freq_table
                    .core_mhz
                    .iter().rfind(|&&f| f <= hi)
                    .unwrap_or(&snapped)
            } else if snapped < lo {
                *spec
                    .freq_table
                    .core_mhz
                    .iter()
                    .find(|&&f| f >= lo)
                    .unwrap_or(&snapped)
            } else {
                snapped
            };
        }
        c
    }

    /// Set application clocks (raw hardware operation — permission checks
    /// live in the HAL). Costs `clock_set_latency_ns` of idle device time,
    /// modelling the vendor-library overhead of Section 4.4. Setting the
    /// clocks the device is already at is a no-op and free.
    pub fn set_application_clocks(&self, clocks: ClockConfig) -> Result<(), SimError> {
        if !self.spec.freq_table.supports(clocks) {
            return Err(SimError::UnsupportedClock(clocks));
        }
        let mut st = self.state.lock();
        if st.app_clocks == Some(clocks) {
            return Ok(());
        }
        let latency = self.spec.clock_set_latency_ns;
        let idle = self.spec.idle_power_w;
        Self::advance_locked(&mut st, latency, idle);
        st.app_clocks = Some(clocks);
        st.clock_sets += 1;
        Ok(())
    }

    /// Clear application clocks, returning to default/auto behaviour.
    pub fn reset_application_clocks(&self) {
        let mut st = self.state.lock();
        if st.app_clocks.take().is_some() {
            let latency = self.spec.clock_set_latency_ns;
            let idle = self.spec.idle_power_w;
            Self::advance_locked(&mut st, latency, idle);
            st.clock_sets += 1;
        }
    }

    /// Set root-only hard core-clock bounds. `None` clears them.
    pub fn set_locked_core_clocks(&self, bounds: Option<(u32, u32)>) -> Result<(), SimError> {
        if let Some((lo, hi)) = bounds {
            if lo > hi
                || lo < self.spec.freq_table.min_core()
                || hi > self.spec.freq_table.max_core()
            {
                return Err(SimError::InvalidClockBounds { lo, hi });
            }
        }
        self.state.lock().locked_core = bounds;
        Ok(())
    }

    /// Current application clocks, if set.
    pub fn application_clocks(&self) -> Option<ClockConfig> {
        self.state.lock().app_clocks
    }

    /// Whether unprivileged application-clock changes are currently blocked.
    pub fn api_restricted(&self) -> bool {
        self.state.lock().api_restricted
    }

    /// Toggle the API restriction (root-only at the HAL layer; raw here).
    pub fn set_api_restriction(&self, restricted: bool) {
        self.state.lock().api_restricted = restricted;
    }

    /// Advance the device through `duration_ns` of idle time.
    pub fn advance_idle(&self, duration_ns: u64) {
        let mut st = self.state.lock();
        let idle = self.spec.idle_power_w;
        Self::advance_locked(&mut st, duration_ns, idle);
    }

    fn advance_locked(st: &mut DeviceState, duration_ns: u64, watts: f64) {
        if duration_ns == 0 {
            return;
        }
        st.trace.push(duration_ns, watts);
        st.now_ns += duration_ns;
        st.total_energy_mj += watts * duration_ns as f64 * 1e-6;
    }

    /// Execute a workload at the device's effective clocks, advancing the
    /// timeline and recording power. Returns the execution record.
    pub fn execute(&self, wl: &Workload) -> KernelExecution {
        let mut st = self.state.lock();
        let clocks = Self::effective_clocks_locked(&self.spec, &st);
        let timing = evaluate(&self.spec, wl, clocks);
        let start = st.now_ns;
        let overhead = self.spec.overhead_power_w;
        Self::advance_locked(&mut st, timing.launch_ns, overhead);
        Self::advance_locked(&mut st, timing.exec_ns, timing.exec_power_w);
        st.kernels_executed += 1;
        let end = st.now_ns;
        KernelExecution {
            name: wl.name.clone(),
            start_ns: start,
            end_ns: end,
            energy_j: timing.energy_j(self.spec.overhead_power_w),
            clocks,
            timing,
        }
    }

    /// What the board power sensor reads right now: smoothed over the
    /// sensor interval, with deterministic noise. (NVML `power_usage`.)
    pub fn power_usage_w(&self) -> f64 {
        let st = self.state.lock();
        let w = st
            .trace
            .smoothed_power(st.now_ns, self.spec.power_sample_interval_ns);
        let base = if st.trace.is_empty() {
            self.spec.idle_power_w
        } else {
            w
        };
        base * (1.0 + self.noise.relative(st.now_ns))
    }

    /// Total energy counter in millijoules since power-on (NVML
    /// `total_energy_consumption`).
    pub fn total_energy_mj(&self) -> f64 {
        self.state.lock().total_energy_mj
    }

    /// Exact energy over a window of the timeline, in joules.
    pub fn energy_between_j(&self, from_ns: u64, to_ns: u64) -> f64 {
        self.state.lock().trace.energy_j(from_ns, to_ns)
    }

    /// Snapshot of the power trace (for profilers and plots).
    pub fn trace_snapshot(&self) -> PowerTrace {
        self.state.lock().trace.clone()
    }

    /// Deterministic sensor noise source for this board.
    pub fn noise(&self) -> NoiseGen {
        self.noise
    }

    /// Number of kernels executed so far.
    pub fn kernels_executed(&self) -> u64 {
        self.state.lock().kernels_executed
    }

    /// Number of clock-change operations performed so far.
    pub fn clock_sets(&self) -> u64 {
        self.state.lock().clock_sets
    }
}

/// Tiny FxHash-style string hash for stable UUID/seed derivation.
fn fxhash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use synergy_kernel::{extract, Inst, IrBuilder};

    fn workload() -> Workload {
        let ir = IrBuilder::new()
            .ops(Inst::GlobalLoad, 1)
            .loop_n(64, |b| b.ops(Inst::FloatMul, 1).ops(Inst::FloatAdd, 1))
            .ops(Inst::GlobalStore, 1)
            .build("wl");
        Workload::from_static(&extract(&ir), 1 << 20)
    }

    #[test]
    fn execute_advances_time_and_energy() {
        let dev = SimDevice::new(DeviceSpec::v100(), 0);
        let rec = dev.execute(&workload());
        assert_eq!(rec.start_ns, 0);
        assert!(rec.end_ns > 0);
        assert_eq!(dev.now_ns(), rec.end_ns);
        assert!(rec.energy_j > 0.0);
        assert_eq!(dev.kernels_executed(), 1);
        // Trace energy equals record energy (exact bookkeeping).
        let trace_e = dev.energy_between_j(rec.start_ns, rec.end_ns);
        assert!((trace_e - rec.energy_j).abs() < 1e-9);
    }

    #[test]
    fn default_clocks_used_when_unset() {
        let dev = SimDevice::new(DeviceSpec::v100(), 0);
        let rec = dev.execute(&workload());
        assert_eq!(rec.clocks, dev.spec().baseline_clocks());
    }

    #[test]
    fn set_clocks_changes_execution_and_costs_latency() {
        let dev = SimDevice::new(DeviceSpec::v100(), 0);
        let target = ClockConfig::new(877, dev.spec().freq_table.nearest_core(800));
        dev.set_application_clocks(target).unwrap();
        assert_eq!(dev.now_ns(), dev.spec().clock_set_latency_ns);
        let rec = dev.execute(&workload());
        assert_eq!(rec.clocks, target);
        assert_eq!(dev.clock_sets(), 1);
    }

    #[test]
    fn setting_same_clocks_is_free() {
        let dev = SimDevice::new(DeviceSpec::v100(), 0);
        let target = ClockConfig::new(877, dev.spec().freq_table.nearest_core(800));
        dev.set_application_clocks(target).unwrap();
        let t = dev.now_ns();
        dev.set_application_clocks(target).unwrap();
        assert_eq!(dev.now_ns(), t);
        assert_eq!(dev.clock_sets(), 1);
    }

    #[test]
    fn unsupported_clock_rejected() {
        let dev = SimDevice::new(DeviceSpec::v100(), 0);
        let err = dev
            .set_application_clocks(ClockConfig::new(877, 123_456))
            .unwrap_err();
        assert!(matches!(err, SimError::UnsupportedClock(_)));
    }

    #[test]
    fn reset_returns_to_default() {
        let dev = SimDevice::new(DeviceSpec::v100(), 0);
        dev.set_application_clocks(ClockConfig::new(877, 135)).unwrap();
        dev.reset_application_clocks();
        assert_eq!(dev.application_clocks(), None);
        assert_eq!(dev.effective_clocks(), dev.spec().baseline_clocks());
    }

    #[test]
    fn locked_bounds_clamp_app_clocks() {
        let dev = SimDevice::new(DeviceSpec::v100(), 0);
        dev.set_locked_core_clocks(Some((877, 1000))).unwrap();
        dev.set_application_clocks(ClockConfig::new(877, 1530)).unwrap();
        let eff = dev.effective_clocks();
        assert!(eff.core_mhz <= 1000);
    }

    #[test]
    fn invalid_bounds_rejected() {
        let dev = SimDevice::new(DeviceSpec::v100(), 0);
        assert!(dev.set_locked_core_clocks(Some((1000, 500))).is_err());
        assert!(dev.set_locked_core_clocks(Some((1, 1530))).is_err());
        assert!(dev.set_locked_core_clocks(Some((135, 99_999))).is_err());
    }

    #[test]
    fn slower_clock_means_longer_cheaper_compute_bound_run() {
        let dev_hi = SimDevice::new(DeviceSpec::v100(), 0);
        let dev_lo = SimDevice::new(DeviceSpec::v100(), 1);
        dev_lo
            .set_application_clocks(ClockConfig::new(
                877,
                dev_lo.spec().freq_table.nearest_core(765),
            ))
            .unwrap();
        let hi = dev_hi.execute(&workload());
        let lo = dev_lo.execute(&workload());
        assert!(lo.duration_s() > hi.duration_s());
        assert!(lo.energy_j < hi.energy_j);
    }

    #[test]
    fn idle_advance_burns_idle_power() {
        let dev = SimDevice::new(DeviceSpec::v100(), 0);
        dev.advance_idle(1_000_000_000);
        let e = dev.energy_between_j(0, 1_000_000_000);
        assert!((e - dev.spec().idle_power_w).abs() < 1e-9);
    }

    #[test]
    fn power_sensor_reads_smoothed_noisy_power() {
        let dev = SimDevice::new(DeviceSpec::v100(), 0);
        dev.advance_idle(100_000_000);
        let p = dev.power_usage_w();
        let idle = dev.spec().idle_power_w;
        assert!((p - idle).abs() / idle < 0.02, "sensor read {p}, idle {idle}");
    }

    #[test]
    fn api_restriction_default_on() {
        let dev = SimDevice::new(DeviceSpec::v100(), 0);
        assert!(dev.api_restricted());
        dev.set_api_restriction(false);
        assert!(!dev.api_restricted());
    }

    #[test]
    fn uuids_are_unique_per_index() {
        let a = SimDevice::new(DeviceSpec::v100(), 0);
        let b = SimDevice::new(DeviceSpec::v100(), 1);
        assert_ne!(a.uuid(), b.uuid());
    }

    #[test]
    fn energy_counter_accumulates_mj() {
        let dev = SimDevice::new(DeviceSpec::v100(), 0);
        dev.advance_idle(1_000_000_000);
        let mj = dev.total_energy_mj();
        assert!((mj - dev.spec().idle_power_w * 1000.0).abs() < 1e-6);
    }
}
