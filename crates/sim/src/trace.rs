//! Power traces: the continuous record of board power over virtual time.
//!
//! The trace is the ground truth that both profiling paths of the paper's
//! API read: exact integration gives the ideal energy, and interval
//! sampling (Section 4.2's "asynchronous thread polling the power")
//! reproduces the measurement error real sensors introduce on short
//! kernels (Section 4.4).

use crate::noise::NoiseGen;
use serde::{Deserialize, Serialize};

/// One constant-power span of the trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Start of the span (inclusive), in nanoseconds of device time.
    pub start_ns: u64,
    /// End of the span (exclusive), in nanoseconds of device time.
    pub end_ns: u64,
    /// Board power during the span, in watts.
    pub watts: f64,
}

impl Segment {
    /// Energy of the span in joules.
    pub fn energy_j(&self) -> f64 {
        self.watts * (self.end_ns - self.start_ns) as f64 * 1e-9
    }
}

/// A contiguous, append-only power trace starting at t = 0.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PowerTrace {
    segments: Vec<Segment>,
}

impl PowerTrace {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// End of the trace so far (== total covered time).
    pub fn end_ns(&self) -> u64 {
        self.segments.last().map_or(0, |s| s.end_ns)
    }

    /// Number of stored segments (adjacent equal-power spans are merged).
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Append a span of `duration_ns` at `watts`, starting where the trace
    /// currently ends. Zero-length spans are ignored; equal-power spans
    /// merge with the previous segment.
    pub fn push(&mut self, duration_ns: u64, watts: f64) {
        if duration_ns == 0 {
            return;
        }
        let start = self.end_ns();
        if let Some(last) = self.segments.last_mut() {
            if (last.watts - watts).abs() < 1e-12 {
                last.end_ns += duration_ns;
                return;
            }
        }
        self.segments.push(Segment {
            start_ns: start,
            end_ns: start + duration_ns,
            watts,
        });
    }

    /// Exact energy over `[from_ns, to_ns)`, in joules.
    pub fn energy_j(&self, from_ns: u64, to_ns: u64) -> f64 {
        if to_ns <= from_ns {
            return 0.0;
        }
        let mut e = 0.0;
        // Binary search for the first overlapping segment.
        let start_idx = self
            .segments
            .partition_point(|s| s.end_ns <= from_ns);
        for s in &self.segments[start_idx..] {
            if s.start_ns >= to_ns {
                break;
            }
            let lo = s.start_ns.max(from_ns);
            let hi = s.end_ns.min(to_ns);
            e += s.watts * (hi - lo) as f64 * 1e-9;
        }
        e
    }

    /// Total recorded energy in joules.
    pub fn total_energy_j(&self) -> f64 {
        self.segments.iter().map(Segment::energy_j).sum()
    }

    /// Instantaneous power at `t_ns`, or `None` outside the trace.
    pub fn power_at(&self, t_ns: u64) -> Option<f64> {
        let idx = self.segments.partition_point(|s| s.end_ns <= t_ns);
        self.segments
            .get(idx)
            .filter(|s| s.start_ns <= t_ns)
            .map(|s| s.watts)
    }

    /// Power averaged over the trailing `window_ns` ending at `t_ns` — what
    /// a real smoothed board sensor reports.
    pub fn smoothed_power(&self, t_ns: u64, window_ns: u64) -> f64 {
        let from = t_ns.saturating_sub(window_ns);
        let span = t_ns - from;
        if span == 0 {
            return self.power_at(t_ns).unwrap_or(0.0);
        }
        self.energy_j(from, t_ns) / (span as f64 * 1e-9)
    }

    /// Sample the trace at a fixed `interval_ns` over `[from_ns, to_ns)`,
    /// as the fine-grained profiling thread does. Each sample is the
    /// smoothed sensor reading, optionally perturbed by deterministic
    /// sensor noise. Returns `(t_ns, watts)` pairs; the integral of these
    /// samples (rectangle rule) is the *measured* energy.
    pub fn sample(
        &self,
        from_ns: u64,
        to_ns: u64,
        interval_ns: u64,
        noise: Option<&NoiseGen>,
    ) -> Vec<(u64, f64)> {
        assert!(interval_ns > 0, "sampling interval must be positive");
        let mut out = Vec::new();
        let mut t = from_ns;
        while t < to_ns {
            let raw = self.smoothed_power(t.min(self.end_ns()), interval_ns);
            let w = match noise {
                Some(n) => raw * (1.0 + n.relative(t)),
                None => raw,
            };
            out.push((t, w));
            t += interval_ns;
        }
        out
    }

    /// Rectangle-rule energy of a sample vector over `[from_ns, to_ns)`.
    pub fn sampled_energy_j(samples: &[(u64, f64)], interval_ns: u64, to_ns: u64) -> f64 {
        samples
            .iter()
            .map(|&(t, w)| {
                let dt = (t + interval_ns).min(to_ns).saturating_sub(t);
                w * dt as f64 * 1e-9
            })
            .sum()
    }

    /// Borrow the raw segments (diagnostics, plotting).
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> PowerTrace {
        let mut t = PowerTrace::new();
        t.push(1_000_000_000, 100.0); // 1 s at 100 W = 100 J
        t.push(500_000_000, 200.0); // 0.5 s at 200 W = 100 J
        t.push(500_000_000, 50.0); // 0.5 s at 50 W = 25 J
        t
    }

    #[test]
    fn total_energy_is_sum_of_segments() {
        assert!((trace().total_energy_j() - 225.0).abs() < 1e-9);
    }

    #[test]
    fn partial_energy() {
        let t = trace();
        // Second half of segment 1 + first half of segment 2.
        let e = t.energy_j(500_000_000, 1_250_000_000);
        assert!((e - (50.0 + 50.0)).abs() < 1e-9);
    }

    #[test]
    fn energy_of_empty_or_inverted_range_is_zero() {
        let t = trace();
        assert_eq!(t.energy_j(10, 10), 0.0);
        assert_eq!(t.energy_j(100, 10), 0.0);
    }

    #[test]
    fn power_at_boundaries() {
        let t = trace();
        assert_eq!(t.power_at(0), Some(100.0));
        assert_eq!(t.power_at(999_999_999), Some(100.0));
        assert_eq!(t.power_at(1_000_000_000), Some(200.0));
        assert_eq!(t.power_at(2_000_000_000), None);
    }

    #[test]
    fn equal_power_segments_merge() {
        let mut t = PowerTrace::new();
        t.push(10, 5.0);
        t.push(20, 5.0);
        t.push(30, 6.0);
        assert_eq!(t.len(), 2);
        assert_eq!(t.end_ns(), 60);
    }

    #[test]
    fn zero_duration_ignored() {
        let mut t = PowerTrace::new();
        t.push(0, 99.0);
        assert!(t.is_empty());
    }

    #[test]
    fn smoothed_power_averages_window() {
        let t = trace();
        // Window covering 0.5 s of 100 W and 0.5 s of 200 W.
        let w = t.smoothed_power(1_500_000_000, 1_000_000_000);
        assert!((w - 150.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_reconstructs_long_kernel_energy() {
        let t = trace();
        let interval = 15_000_000; // 15 ms
        let samples = t.sample(0, t.end_ns(), interval, None);
        let measured = PowerTrace::sampled_energy_j(&samples, interval, t.end_ns());
        let exact = t.total_energy_j();
        assert!(
            (measured - exact).abs() / exact < 0.02,
            "measured {measured}, exact {exact}"
        );
    }

    #[test]
    fn sampling_misjudges_short_kernel() {
        // A 5 ms kernel inside a 15 ms-granularity sensor: the smoothed
        // reading blends idle power, so measured energy is badly off —
        // exactly the Section 4.4 limitation.
        let mut t = PowerTrace::new();
        t.push(100_000_000, 40.0); // 100 ms idle
        t.push(5_000_000, 300.0); // 5 ms burst
        t.push(100_000_000, 40.0);
        let interval = 15_000_000;
        let (k0, k1) = (100_000_000, 105_000_000);
        let samples = t.sample(k0, k1, interval, None);
        let measured = PowerTrace::sampled_energy_j(&samples, interval, k1);
        let exact = t.energy_j(k0, k1);
        let err = (measured - exact).abs() / exact;
        assert!(err > 0.2, "short-kernel sampling error {err} unexpectedly small");
    }

    #[test]
    fn noise_is_deterministic() {
        let t = trace();
        let n = NoiseGen::new(7, 0.01);
        let a = t.sample(0, t.end_ns(), 15_000_000, Some(&n));
        let b = t.sample(0, t.end_ns(), 15_000_000, Some(&n));
        assert_eq!(a, b);
    }
}
