//! Deterministic sensor noise.
//!
//! Real board power sensors jitter by a percent or two. The simulator keeps
//! its physics exact and injects noise only where a *sensor* is read, using
//! a stateless hash of the read timestamp — so every run, and every
//! sampling order, observes exactly the same noise.

use serde::{Deserialize, Serialize};

/// Stateless deterministic noise source.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseGen {
    seed: u64,
    /// Maximum relative amplitude, e.g. `0.01` for ±1%.
    amplitude: f64,
}

impl NoiseGen {
    /// Create a noise source with the given seed and relative amplitude.
    pub fn new(seed: u64, amplitude: f64) -> Self {
        assert!((0.0..1.0).contains(&amplitude), "amplitude must be in [0,1)");
        NoiseGen { seed, amplitude }
    }

    /// A silent source (always returns 0).
    pub fn silent() -> Self {
        NoiseGen {
            seed: 0,
            amplitude: 0.0,
        }
    }

    /// Relative perturbation in `[-amplitude, +amplitude]` for timestamp `t`.
    pub fn relative(&self, t: u64) -> f64 {
        if self.amplitude == 0.0 {
            return 0.0;
        }
        let h = splitmix64(self.seed ^ t.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // Map to [-1, 1) then scale.
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        (unit * 2.0 - 1.0) * self.amplitude
    }
}

/// SplitMix64 finalizer — a strong, cheap bit mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_by_amplitude() {
        let n = NoiseGen::new(123, 0.02);
        for t in 0..10_000u64 {
            let r = n.relative(t * 1_000_003);
            assert!(r.abs() <= 0.02, "noise {r} exceeds amplitude at t={t}");
        }
    }

    #[test]
    fn deterministic_per_timestamp() {
        let n = NoiseGen::new(5, 0.01);
        assert_eq!(n.relative(42), n.relative(42));
    }

    #[test]
    fn varies_across_timestamps() {
        let n = NoiseGen::new(5, 0.01);
        let vals: Vec<f64> = (0..64u64).map(|t| n.relative(t)).collect();
        let first = vals[0];
        assert!(vals.iter().any(|&v| (v - first).abs() > 1e-6));
    }

    #[test]
    fn seeds_decorrelate() {
        let a = NoiseGen::new(1, 0.01);
        let b = NoiseGen::new(2, 0.01);
        let same = (0..256u64).filter(|&t| a.relative(t) == b.relative(t)).count();
        assert!(same < 8);
    }

    #[test]
    fn silent_is_zero() {
        let n = NoiseGen::silent();
        assert_eq!(n.relative(9999), 0.0);
    }

    #[test]
    fn mean_is_near_zero() {
        let n = NoiseGen::new(77, 0.05);
        let mean: f64 =
            (0..50_000u64).map(|t| n.relative(t)).sum::<f64>() / 50_000.0;
        assert!(mean.abs() < 0.002, "biased noise: mean {mean}");
    }
}
