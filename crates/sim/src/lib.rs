//! # synergy-sim
//!
//! Deterministic GPU/DVFS simulator — the hardware substrate of the SYnergy
//! reproduction. Provides device models for the three boards of the paper's
//! evaluation (NVIDIA V100, NVIDIA A100, AMD MI100) with their exact
//! Figure-1 frequency tables, an analytical roofline execution-time model,
//! a DVFS power model with per-device voltage/frequency curves, continuous
//! power traces with sensor-accurate sampling, and thread-safe stateful
//! devices whose clock controls mirror what NVML / ROCm SMI expose.
//!
//! Everything is deterministic: identical inputs produce identical
//! timelines, energies and (hash-derived) sensor noise.

#![warn(missing_docs)]

pub mod device;
pub mod error;
pub mod export;
pub mod freq;
pub mod model;
pub mod node;
pub mod noise;
pub mod specs;
pub mod trace;
pub mod vf;

pub use device::{KernelExecution, SimDevice};
pub use error::SimError;
pub use export::{kernel_events, power_events, to_chrome_trace, TraceEvent};
pub use freq::{ClockConfig, FrequencyTable};
pub use model::{core_frequency_sweep, evaluate, KernelTiming, Workload};
pub use node::{marconi100_partition, SimNode};
pub use noise::NoiseGen;
pub use specs::{DeviceSpec, Vendor};
pub use trace::{PowerTrace, Segment};
pub use vf::VfCurve;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use synergy_kernel::FeatureVector;

    fn arb_features() -> impl Strategy<Value = FeatureVector> {
        prop::array::uniform10(0.0f64..64.0).prop_map(FeatureVector::from_array)
    }

    fn arb_workload() -> impl Strategy<Value = Workload> {
        (arb_features(), 0.0f64..64.0, 1u64..(1 << 24)).prop_map(|(features, bytes, items)| {
            Workload {
                name: "prop".into(),
                features,
                dram_bytes_per_item: bytes,
                work_items: items,
            }
        })
    }

    proptest! {
        /// Execution time never increases with core frequency.
        #[test]
        fn time_monotone_in_core_clock(wl in arb_workload()) {
            let spec = DeviceSpec::v100();
            let sweep = core_frequency_sweep(&spec, &wl);
            for w in sweep.windows(2) {
                prop_assert!(w[1].1.exec_ns <= w[0].1.exec_ns);
            }
        }

        /// Power stays within [idle, TDP] at every frequency.
        #[test]
        fn power_bounded(wl in arb_workload()) {
            for spec in [DeviceSpec::v100(), DeviceSpec::a100(), DeviceSpec::mi100()] {
                for (_, t) in core_frequency_sweep(&spec, &wl) {
                    prop_assert!(t.exec_power_w >= spec.idle_power_w - 1e-9);
                    prop_assert!(t.exec_power_w <= spec.tdp_w + 1e-9);
                }
            }
        }

        /// Trace integral equals the sum of per-kernel energies plus idle.
        #[test]
        fn trace_conserves_energy(wls in prop::collection::vec(arb_workload(), 1..6)) {
            let dev = SimDevice::new(DeviceSpec::v100(), 0);
            let mut kernel_e = 0.0;
            for wl in &wls {
                dev.advance_idle(1_000_000);
                kernel_e += dev.execute(wl).energy_j;
            }
            let idle_e = wls.len() as f64 * 1_000_000.0 * 1e-9 * dev.spec().idle_power_w;
            let total = dev.trace_snapshot().total_energy_j();
            let want = kernel_e + idle_e;
            prop_assert!((total - want).abs() < 1e-6 * want.max(1.0),
                "trace {total} J vs accounted {want} J");
        }

        /// Sampled energy converges to exact energy for long executions.
        #[test]
        fn sampling_converges_for_long_runs(watts in 50.0f64..300.0, secs in 1u64..5) {
            let mut trace = PowerTrace::new();
            trace.push(secs * 1_000_000_000, watts);
            let interval = 15_000_000;
            let samples = trace.sample(0, trace.end_ns(), interval, None);
            let measured = PowerTrace::sampled_energy_j(&samples, interval, trace.end_ns());
            let exact = trace.total_energy_j();
            prop_assert!((measured - exact).abs() / exact < 0.01);
        }

        /// Energy over a sub-range never exceeds the total.
        #[test]
        fn subrange_energy_bounded(
            spans in prop::collection::vec((1u64..1_000_000, 1.0f64..400.0), 1..20),
            a in 0u64..2_000_000,
            b in 0u64..2_000_000,
        ) {
            let mut trace = PowerTrace::new();
            for (d, w) in spans {
                trace.push(d, w);
            }
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let part = trace.energy_j(lo, hi);
            prop_assert!(part >= 0.0);
            prop_assert!(part <= trace.total_energy_j() + 1e-9);
        }
    }
}
