//! Simulator error types.

use crate::freq::ClockConfig;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors raised by raw simulated-hardware operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SimError {
    /// The requested clock pair is not in the device's frequency table.
    UnsupportedClock(ClockConfig),
    /// Locked-clock bounds are inverted or outside the table range.
    InvalidClockBounds {
        /// Requested lower bound (MHz).
        lo: u32,
        /// Requested upper bound (MHz).
        hi: u32,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnsupportedClock(c) => {
                write!(f, "clock configuration {c} is not supported by the device")
            }
            SimError::InvalidClockBounds { lo, hi } => {
                write!(f, "invalid locked-clock bounds [{lo}, {hi}] MHz")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::UnsupportedClock(ClockConfig::new(877, 1));
        assert!(e.to_string().contains("877MHz/1MHz"));
        let e = SimError::InvalidClockBounds { lo: 9, hi: 1 };
        assert!(e.to_string().contains("[9, 1]"));
    }
}
