//! Device specifications: the static description of a simulated GPU.
//!
//! Three catalogue entries reproduce the hardware of the paper's evaluation
//! (Figure 1 and Section 8.1): NVIDIA V100 (196 core clocks, 135–1530 MHz,
//! HBM fixed at 877 MHz), NVIDIA A100 (81 core clocks, 210–1410 MHz, HBM at
//! 1215 MHz) and AMD MI100 (16 core clocks, 300–1502 MHz, HBM at 1200 MHz,
//! *no* default application clock — the board boosts automatically).

use crate::freq::{ClockConfig, FrequencyTable};
use crate::vf::VfCurve;
use serde::{Deserialize, Serialize};
use synergy_kernel::NUM_FEATURES;

/// GPU vendor, selecting which management library (HAL) drives the board.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Vendor {
    /// NVIDIA — managed through the NVML analogue.
    Nvidia,
    /// AMD — managed through the ROCm SMI analogue.
    Amd,
}

/// Static description of a simulated GPU model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Marketing name, e.g. `"NVIDIA V100"`.
    pub name: String,
    /// Vendor (selects the HAL binding).
    pub vendor: Vendor,
    /// Number of streaming multiprocessors / compute units.
    pub sm_count: u32,
    /// FP32 lanes per SM/CU.
    pub lanes_per_sm: u32,
    /// Cycles-per-instruction per lane for each Table-1 feature class.
    pub cpi: [f64; NUM_FEATURES],
    /// DRAM bandwidth in GB/s at the top memory clock.
    pub mem_bw_gbps: f64,
    /// Supported frequency configurations.
    pub freq_table: FrequencyTable,
    /// Default application clocks. `None` means the board auto-boosts
    /// (MI100): the effective clock is the table maximum when busy.
    pub default_clocks: Option<ClockConfig>,
    /// DVFS voltage curve over the core clock.
    pub vf: VfCurve,
    /// Idle board power in watts.
    pub idle_power_w: f64,
    /// Board power at full compute utilization and maximum clocks (TDP).
    pub tdp_w: f64,
    /// Maximum memory-subsystem dynamic power in watts.
    pub mem_power_w: f64,
    /// Fixed kernel launch overhead in nanoseconds.
    pub launch_overhead_ns: u64,
    /// Board power during the launch-overhead phase (driver activity,
    /// queue management, small transfers) — well above idle, which is why
    /// short launches have little energy to save.
    pub overhead_power_w: f64,
    /// Latency of one application-clock change through the vendor library
    /// (the overhead Section 4.4 reports growing with kernel count).
    pub clock_set_latency_ns: u64,
    /// Power-sensor sampling granularity (≈15 ms on data-center boards,
    /// per Burtscher et al. cited in Section 4.4).
    pub power_sample_interval_ns: u64,
    /// Residual serialization when compute and memory phases overlap
    /// (`t = max + rho * min`).
    pub overlap_residual: f64,
    /// Fraction of memory-phase activity that still toggles the core
    /// domain (stalled warps, address math, replays) — keeps memory-bound
    /// kernels from drawing implausibly little core power.
    pub stall_activity: f64,
    /// Share of the memory-subsystem power that is background (refresh,
    /// PHY, clock tree) and scales only with the memory clock, not with
    /// traffic.
    pub mem_background: f64,
}

impl DeviceSpec {
    /// Maximum dynamic power of the core domain (watts).
    pub fn core_power_budget_w(&self) -> f64 {
        (self.tdp_w - self.idle_power_w - self.mem_power_w).max(0.0)
    }

    /// The clocks a kernel actually runs at when the application has not
    /// set any: the configured default, or the table maximum for
    /// auto-boosting boards.
    pub fn baseline_clocks(&self) -> ClockConfig {
        self.default_clocks.unwrap_or_else(|| {
            ClockConfig::new(self.freq_table.top_mem(), self.freq_table.max_core())
        })
    }

    /// Total FP32 lanes on the board.
    pub fn total_lanes(&self) -> u64 {
        self.sm_count as u64 * self.lanes_per_sm as u64
    }

    /// Peak issue throughput at `core_mhz`, in single-cycle ops per
    /// second (classic roofline ceiling: one op per lane per cycle —
    /// per-class CPIs push real kernels below it, so this is the
    /// optimistic compute roof, matching how roofline plots are drawn).
    pub fn peak_ops_per_sec(&self, core_mhz: u32) -> f64 {
        self.total_lanes() as f64 * core_mhz as f64 * 1e6
    }

    /// DRAM bandwidth in bytes per second at `mem_mhz`, scaling the
    /// top-clock catalogue figure linearly with the memory clock.
    pub fn mem_bandwidth_at(&self, mem_mhz: u32) -> f64 {
        let top = self.freq_table.top_mem().max(1) as f64;
        self.mem_bw_gbps * 1e9 * (mem_mhz as f64 / top)
    }

    /// The roofline balance point at `clocks`, in compute ops per DRAM
    /// byte: kernels whose arithmetic intensity sits below it are
    /// memory-bound at those clocks, kernels above are compute-bound.
    pub fn balance_point(&self, clocks: ClockConfig) -> f64 {
        let bw = self.mem_bandwidth_at(clocks.mem_mhz);
        if bw <= 0.0 {
            return f64::INFINITY;
        }
        self.peak_ops_per_sec(clocks.core_mhz) / bw
    }

    /// The `[lo, hi]` range the balance point sweeps across the board's
    /// whole frequency table: `lo` at (min core, top mem), `hi` at
    /// (max core, bottom mem). A kernel whose arithmetic intensity falls
    /// inside this span flips between memory- and compute-bound depending
    /// on the chosen clocks — exactly the kernels DVFS tuning can help.
    pub fn balance_span(&self) -> (f64, f64) {
        let bottom_mem = self.freq_table.mem_mhz.iter().copied().min().unwrap_or(1);
        let lo = self.balance_point(ClockConfig::new(
            self.freq_table.top_mem(),
            self.freq_table.min_core(),
        ));
        let hi = self.balance_point(ClockConfig::new(bottom_mem, self.freq_table.max_core()));
        (lo, hi)
    }

    /// NVIDIA V100 (SXM2 16 GB): 80 SMs, 900 GB/s HBM2.
    ///
    /// Figure 1: memory fixed at 877 MHz; 196 core configurations spanning
    /// 135–1530 MHz. Default application clock 1312 MHz (the paper's
    /// baseline in Figure 2).
    pub fn v100() -> DeviceSpec {
        let freq_table = FrequencyTable::uniform_core_span(vec![877], 135, 1530, 196);
        let default_core = freq_table.nearest_core(1312);
        DeviceSpec {
            name: "NVIDIA V100".into(),
            vendor: Vendor::Nvidia,
            sm_count: 80,
            lanes_per_sm: 64,
            cpi: [
                1.0,  // int_add
                2.0,  // int_mul
                20.0, // int_div
                1.0,  // int_bw
                1.0,  // float_add
                1.0,  // float_mul
                8.0,  // float_div
                4.0,  // sf
                10.0, // gl_access (address gen + LSU issue)
                2.0,  // loc_access
            ],
            mem_bw_gbps: 900.0,
            default_clocks: Some(ClockConfig::new(877, default_core)),
            freq_table,
            vf: VfCurve::knee(135.0, 1000.0, 1530.0, 0.712),
            idle_power_w: 25.0,
            tdp_w: 300.0,
            mem_power_w: 45.0,
            launch_overhead_ns: 4_000,
            overhead_power_w: 120.0,
            clock_set_latency_ns: 15_000,
            power_sample_interval_ns: 15_000_000,
            overlap_residual: 0.15,
            stall_activity: 0.4,
            mem_background: 0.25,
        }
    }

    /// NVIDIA A100 (SXM4 40 GB): 108 SMs, 1555 GB/s HBM2e.
    ///
    /// Figure 1: memory fixed at 1215 MHz; 81 core configurations spanning
    /// 210–1410 MHz in exact 15 MHz steps.
    pub fn a100() -> DeviceSpec {
        let freq_table = FrequencyTable::uniform_core_span(vec![1215], 210, 1410, 81);
        DeviceSpec {
            name: "NVIDIA A100".into(),
            vendor: Vendor::Nvidia,
            sm_count: 108,
            lanes_per_sm: 64,
            cpi: [
                1.0, 2.0, 18.0, 1.0, 1.0, 1.0, 7.0, 4.0, 9.0, 2.0,
            ],
            mem_bw_gbps: 1555.0,
            default_clocks: Some(ClockConfig::new(1215, 1410)),
            freq_table,
            vf: VfCurve::knee(210.0, 940.0, 1410.0, 0.73),
            idle_power_w: 40.0,
            tdp_w: 400.0,
            mem_power_w: 60.0,
            launch_overhead_ns: 3_500,
            overhead_power_w: 150.0,
            clock_set_latency_ns: 15_000,
            power_sample_interval_ns: 15_000_000,
            overlap_residual: 0.15,
            stall_activity: 0.4,
            mem_background: 0.25,
        }
    }

    /// AMD MI100: 120 CUs, 1228.8 GB/s HBM2.
    ///
    /// Figure 1: memory fixed at 1200 MHz; 16 core configurations spanning
    /// 300–1502 MHz. No default configuration — the board adjusts frequency
    /// automatically (modelled as boosting to the maximum when busy), which
    /// is why Section 8.2 finds the default always fastest on MI100.
    pub fn mi100() -> DeviceSpec {
        let freq_table = FrequencyTable::uniform_core_span(vec![1200], 300, 1502, 16);
        DeviceSpec {
            name: "AMD MI100".into(),
            vendor: Vendor::Amd,
            sm_count: 120,
            lanes_per_sm: 64,
            cpi: [
                1.0, 2.0, 22.0, 1.0, 1.0, 1.0, 10.0, 8.0, 12.0, 2.0,
            ],
            mem_bw_gbps: 1228.8,
            default_clocks: None,
            freq_table,
            vf: VfCurve::knee(300.0, 900.0, 1502.0, 0.74),
            idle_power_w: 25.0,
            tdp_w: 300.0,
            mem_power_w: 55.0,
            launch_overhead_ns: 5_000,
            overhead_power_w: 110.0,
            clock_set_latency_ns: 10_000,
            power_sample_interval_ns: 15_000_000,
            overlap_residual: 0.2,
            stall_activity: 0.4,
            mem_background: 0.25,
        }
    }

    /// NVIDIA Titan X (Pascal): 28 SMs × 128 lanes, 480 GB/s G5X.
    ///
    /// Section 2.1 singles this board out: unlike the HBM data-center
    /// parts, it lets the user *"select one out of four different memory
    /// frequencies"* — so its frequency space is genuinely 2-D and the
    /// target search runs over mem × core configurations.
    pub fn titan_x() -> DeviceSpec {
        let freq_table =
            FrequencyTable::uniform_core_span(vec![405, 810, 4513, 5005], 139, 1911, 90);
        let default_core = freq_table.nearest_core(1417);
        DeviceSpec {
            name: "NVIDIA Titan X".into(),
            vendor: Vendor::Nvidia,
            sm_count: 28,
            lanes_per_sm: 128,
            cpi: [
                1.0, 2.0, 22.0, 1.0, 1.0, 1.0, 9.0, 5.0, 10.0, 2.0,
            ],
            mem_bw_gbps: 480.0,
            default_clocks: Some(ClockConfig::new(5005, default_core)),
            freq_table,
            vf: VfCurve::knee(139.0, 1200.0, 1911.0, 0.70),
            idle_power_w: 15.0,
            tdp_w: 250.0,
            mem_power_w: 40.0,
            launch_overhead_ns: 5_000,
            overhead_power_w: 90.0,
            clock_set_latency_ns: 20_000,
            power_sample_interval_ns: 15_000_000,
            overlap_residual: 0.15,
            stall_activity: 0.4,
            mem_background: 0.25,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_matches_figure1() {
        let s = DeviceSpec::v100();
        assert_eq!(s.freq_table.core_mhz.len(), 196);
        assert_eq!(s.freq_table.min_core(), 135);
        assert_eq!(s.freq_table.max_core(), 1530);
        assert_eq!(s.freq_table.mem_mhz, vec![877]);
        let d = s.baseline_clocks();
        assert_eq!(d.mem_mhz, 877);
        // default snaps to the nearest table entry around 1312
        assert!((d.core_mhz as i64 - 1312).unsigned_abs() <= 4);
    }

    #[test]
    fn a100_matches_figure1() {
        let s = DeviceSpec::a100();
        assert_eq!(s.freq_table.core_mhz.len(), 81);
        assert_eq!(s.freq_table.min_core(), 210);
        assert_eq!(s.freq_table.max_core(), 1410);
        assert_eq!(s.freq_table.mem_mhz, vec![1215]);
    }

    #[test]
    fn mi100_matches_figure1_and_has_no_default() {
        let s = DeviceSpec::mi100();
        assert_eq!(s.freq_table.core_mhz.len(), 16);
        assert_eq!(s.freq_table.min_core(), 300);
        assert_eq!(s.freq_table.max_core(), 1502);
        assert_eq!(s.freq_table.mem_mhz, vec![1200]);
        assert!(s.default_clocks.is_none());
        // Auto-boost: baseline is the table max.
        assert_eq!(s.baseline_clocks().core_mhz, 1502);
    }

    #[test]
    fn power_budget_is_positive_and_partitions_tdp() {
        for s in [DeviceSpec::v100(), DeviceSpec::a100(), DeviceSpec::mi100()] {
            let b = s.core_power_budget_w();
            assert!(b > 0.0, "{}", s.name);
            assert!(
                (s.idle_power_w + s.mem_power_w + b - s.tdp_w).abs() < 1e-9,
                "{}",
                s.name
            );
        }
    }

    #[test]
    fn defaults_are_supported_configs() {
        for s in [DeviceSpec::v100(), DeviceSpec::a100()] {
            let d = s.default_clocks.unwrap();
            assert!(s.freq_table.supports(d), "{}: {:?}", s.name, d);
        }
    }

    #[test]
    fn titan_x_has_four_memory_frequencies() {
        let s = DeviceSpec::titan_x();
        assert_eq!(s.freq_table.mem_mhz.len(), 4);
        assert_eq!(s.freq_table.mem_mhz, vec![405, 810, 4513, 5005]);
        assert_eq!(s.freq_table.top_mem(), 5005);
        // 2-D space: 4 × 90 configurations.
        assert_eq!(s.freq_table.len(), 4 * 90);
        let d = s.default_clocks.unwrap();
        assert_eq!(d.mem_mhz, 5005);
        assert!(s.freq_table.supports(d));
    }

    #[test]
    fn balance_point_matches_hand_roofline() {
        let s = DeviceSpec::v100();
        // 80 SMs x 64 lanes x 1530 MHz = 7.83 Tops/s over 900 GB/s.
        let at_max = s.balance_point(ClockConfig::new(877, 1530));
        let want = (80.0 * 64.0 * 1530.0e6) / 900.0e9;
        assert!((at_max - want).abs() < 1e-12, "{at_max} vs {want}");
        // The balance point scales linearly with the core clock.
        let at_half = s.balance_point(ClockConfig::new(877, 765));
        assert!((at_half - want / 2.0).abs() < 1e-12);
    }

    #[test]
    fn balance_span_orders_and_brackets_the_baseline() {
        for s in [
            DeviceSpec::v100(),
            DeviceSpec::a100(),
            DeviceSpec::mi100(),
            DeviceSpec::titan_x(),
        ] {
            let (lo, hi) = s.balance_span();
            assert!(lo > 0.0 && lo < hi, "{}: [{lo}, {hi}]", s.name);
            let base = s.balance_point(s.baseline_clocks());
            assert!(
                (lo..=hi).contains(&base),
                "{}: baseline {base} outside [{lo}, {hi}]",
                s.name
            );
        }
    }

    #[test]
    fn mem_bandwidth_scales_with_mem_clock() {
        let s = DeviceSpec::titan_x();
        assert!((s.mem_bandwidth_at(5005) - 480.0e9).abs() < 1e-3);
        let half = s.mem_bandwidth_at(5005 / 2);
        assert!(half < 241.0e9 && half > 239.0e9);
    }

    #[test]
    fn vendors() {
        assert_eq!(DeviceSpec::v100().vendor, Vendor::Nvidia);
        assert_eq!(DeviceSpec::mi100().vendor, Vendor::Amd);
    }
}
