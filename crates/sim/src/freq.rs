//! Clock configurations and per-device frequency tables.
//!
//! Mirrors what NVML / ROCm SMI expose (Figure 1 of the paper): a small set
//! of memory frequencies (one on HBM devices) and, for each memory
//! frequency, a list of supported core frequencies.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A (memory, core) clock pair in MHz — the unit of frequency scaling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ClockConfig {
    /// Memory clock in MHz.
    pub mem_mhz: u32,
    /// Core (SM / CU) clock in MHz.
    pub core_mhz: u32,
}

impl ClockConfig {
    /// Construct a clock pair.
    pub fn new(mem_mhz: u32, core_mhz: u32) -> Self {
        ClockConfig { mem_mhz, core_mhz }
    }
}

impl fmt::Display for ClockConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}MHz/{}MHz", self.mem_mhz, self.core_mhz)
    }
}

/// The supported frequency configurations of a device.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrequencyTable {
    /// Supported memory clocks (ascending). HBM devices have exactly one.
    pub mem_mhz: Vec<u32>,
    /// Supported core clocks (ascending), valid for every memory clock.
    pub core_mhz: Vec<u32>,
}

impl FrequencyTable {
    /// Build a table; both lists are sorted and deduplicated.
    pub fn new(mut mem_mhz: Vec<u32>, mut core_mhz: Vec<u32>) -> Self {
        mem_mhz.sort_unstable();
        mem_mhz.dedup();
        core_mhz.sort_unstable();
        core_mhz.dedup();
        assert!(!mem_mhz.is_empty(), "at least one memory clock required");
        assert!(!core_mhz.is_empty(), "at least one core clock required");
        FrequencyTable { mem_mhz, core_mhz }
    }

    /// Generate `count` core clocks evenly spanning `[lo, hi]` MHz with both
    /// endpoints exact (rounded to integer MHz). This reproduces the
    /// cardinalities of Figure 1 without the vendor's exact step lists.
    pub fn uniform_core_span(mem_mhz: Vec<u32>, lo: u32, hi: u32, count: usize) -> Self {
        assert!(count >= 2 && hi > lo);
        let core = (0..count)
            .map(|i| {
                let t = i as f64 / (count - 1) as f64;
                (lo as f64 + t * (hi - lo) as f64).round() as u32
            })
            .collect();
        FrequencyTable::new(mem_mhz, core)
    }

    /// Whether the pair is an exact entry of the table.
    pub fn supports(&self, cfg: ClockConfig) -> bool {
        self.mem_mhz.binary_search(&cfg.mem_mhz).is_ok()
            && self.core_mhz.binary_search(&cfg.core_mhz).is_ok()
    }

    /// Lowest core clock.
    pub fn min_core(&self) -> u32 {
        self.core_mhz[0]
    }

    /// Highest core clock.
    pub fn max_core(&self) -> u32 {
        *self.core_mhz.last().unwrap()
    }

    /// The single (or highest) memory clock.
    pub fn top_mem(&self) -> u32 {
        *self.mem_mhz.last().unwrap()
    }

    /// Number of (mem, core) configurations.
    pub fn len(&self) -> usize {
        self.mem_mhz.len() * self.core_mhz.len()
    }

    /// True when the table is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snap an arbitrary core clock to the nearest supported one.
    pub fn nearest_core(&self, core_mhz: u32) -> u32 {
        match self.core_mhz.binary_search(&core_mhz) {
            Ok(i) => self.core_mhz[i],
            Err(0) => self.core_mhz[0],
            Err(i) if i == self.core_mhz.len() => *self.core_mhz.last().unwrap(),
            Err(i) => {
                let lo = self.core_mhz[i - 1];
                let hi = self.core_mhz[i];
                if core_mhz - lo <= hi - core_mhz {
                    lo
                } else {
                    hi
                }
            }
        }
    }

    /// Iterate every supported (mem, core) configuration, ascending.
    pub fn configs(&self) -> impl Iterator<Item = ClockConfig> + '_ {
        self.mem_mhz.iter().flat_map(move |&m| {
            self.core_mhz
                .iter()
                .map(move |&c| ClockConfig::new(m, c))
        })
    }

    /// Every configuration at the top memory clock (the sweep used by the
    /// paper on HBM devices, where memory frequency is fixed).
    pub fn core_sweep(&self) -> Vec<ClockConfig> {
        let m = self.top_mem();
        self.core_mhz.iter().map(|&c| ClockConfig::new(m, c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_span_endpoints_and_count() {
        let t = FrequencyTable::uniform_core_span(vec![877], 135, 1530, 196);
        assert_eq!(t.core_mhz.len(), 196);
        assert_eq!(t.min_core(), 135);
        assert_eq!(t.max_core(), 1530);
        assert_eq!(t.len(), 196);
    }

    #[test]
    fn a100_span_is_exactly_15mhz_steps() {
        let t = FrequencyTable::uniform_core_span(vec![1215], 210, 1410, 81);
        assert_eq!(t.core_mhz.len(), 81);
        for w in t.core_mhz.windows(2) {
            assert_eq!(w[1] - w[0], 15);
        }
    }

    #[test]
    fn supports_checks_both_axes() {
        let t = FrequencyTable::new(vec![877], vec![500, 1000]);
        assert!(t.supports(ClockConfig::new(877, 500)));
        assert!(!t.supports(ClockConfig::new(877, 501)));
        assert!(!t.supports(ClockConfig::new(900, 500)));
    }

    #[test]
    fn nearest_core_snaps() {
        let t = FrequencyTable::new(vec![877], vec![100, 200, 300]);
        assert_eq!(t.nearest_core(100), 100);
        assert_eq!(t.nearest_core(149), 100);
        assert_eq!(t.nearest_core(151), 200);
        assert_eq!(t.nearest_core(150), 100); // ties go low
        assert_eq!(t.nearest_core(999), 300);
        assert_eq!(t.nearest_core(1), 100);
    }

    #[test]
    fn configs_enumerates_cross_product() {
        let t = FrequencyTable::new(vec![800, 900], vec![1, 2, 3]);
        let all: Vec<_> = t.configs().collect();
        assert_eq!(all.len(), 6);
        assert!(all.contains(&ClockConfig::new(900, 2)));
    }

    #[test]
    fn core_sweep_uses_top_mem() {
        let t = FrequencyTable::new(vec![800, 900], vec![1, 2]);
        let sweep = t.core_sweep();
        assert!(sweep.iter().all(|c| c.mem_mhz == 900));
        assert_eq!(sweep.len(), 2);
    }

    #[test]
    fn table_sorts_and_dedups() {
        let t = FrequencyTable::new(vec![900, 800, 900], vec![3, 1, 2, 2]);
        assert_eq!(t.mem_mhz, vec![800, 900]);
        assert_eq!(t.core_mhz, vec![1, 2, 3]);
    }
}
