//! Typed telemetry events.
//!
//! Every layer of the stack records its activity as one of these variants:
//! the queue worker (kernel lifecycle and clock changes), the asynchronous
//! profiler (poll/sample windows), the HAL (management-library calls), the
//! model store (cache traffic), the compile pipeline (phases) and the
//! cluster driver (per-rank steps). Each event carries two timestamps —
//! the device's *virtual* timeline (deterministic across identical runs)
//! and the recorder's *wall clock* (nanoseconds since recorder
//! construction) — so exported traces can show both views.

use serde::{Deserialize, Serialize};

/// A (mem, core) clock pair in MHz.
///
/// Mirror of `synergy_sim::ClockConfig`, kept dependency-free so the
/// telemetry crate sits below every other crate in the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Clocks {
    /// Memory clock in MHz.
    pub mem_mhz: u32,
    /// Core clock in MHz.
    pub core_mhz: u32,
}

impl Clocks {
    /// Construct a clock pair.
    pub fn new(mem_mhz: u32, core_mhz: u32) -> Clocks {
        Clocks { mem_mhz, core_mhz }
    }
}

impl std::fmt::Display for Clocks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{} MHz", self.mem_mhz, self.core_mhz)
    }
}

/// What happened at a model-cache lookup or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum CacheOp {
    /// Served from the in-memory memo.
    MemoryHit,
    /// Served by deserializing a cache file.
    DiskHit,
    /// Trained from scratch.
    Miss,
    /// A freshly trained bundle was written to disk.
    Persist,
}

/// One stage of a request's lifecycle inside the `synergy-serve` daemon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ServeOp {
    /// A client connection was accepted.
    Accept,
    /// A request frame was admitted to the bounded work queue.
    Enqueue,
    /// A request was rejected at admission (`Busy` sent instead).
    Busy,
    /// A worker dequeued the request and started computing.
    Dispatch,
    /// The request joined an identical in-flight computation instead of
    /// starting its own (request coalescing).
    CoalesceJoin,
    /// A response frame was written back to the client.
    Respond,
    /// The request's deadline expired while it sat in the queue.
    Expire,
    /// A drain was initiated (no further connections accepted).
    Drain,
    /// A client connection went away (EOF, error, or protocol
    /// violation) and its reactor state was released.
    Disconnect,
}

impl ServeOp {
    /// Stable lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            ServeOp::Accept => "accept",
            ServeOp::Enqueue => "enqueue",
            ServeOp::Busy => "busy",
            ServeOp::Dispatch => "dispatch",
            ServeOp::CoalesceJoin => "coalesce_join",
            ServeOp::Respond => "respond",
            ServeOp::Expire => "expire",
            ServeOp::Drain => "drain",
            ServeOp::Disconnect => "disconnect",
        }
    }
}

/// One phase of the compile-time pipeline (Figure 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Phase {
    /// Static feature extraction from kernel IR.
    Extract,
    /// Micro-benchmark frequency sweep building the training set.
    Sweep,
    /// Fitting the four single-target metric models.
    Train,
    /// Per-kernel, per-target frequency search filling the registry.
    Select,
}

impl Phase {
    /// Stable lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            Phase::Extract => "extract",
            Phase::Sweep => "sweep",
            Phase::Train => "train",
            Phase::Select => "select",
        }
    }
}

/// The payload of one telemetry event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum EventKind {
    /// A command group was submitted to a queue.
    KernelSubmit {
        /// Kernel name.
        kernel: String,
        /// Launch size.
        work_items: u64,
    },
    /// A kernel completed on the device timeline.
    KernelRun {
        /// Kernel name.
        kernel: String,
        /// Launch start on the virtual timeline (ns).
        start_ns: u64,
        /// Completion on the virtual timeline (ns).
        end_ns: u64,
        /// Exact energy over the window, joules.
        energy_j: f64,
        /// Clocks the kernel ran at.
        clocks: Clocks,
    },
    /// A clock-change request (the Section 4.4 vendor-library call).
    ClockChange {
        /// Clocks in effect before the request.
        from: Clocks,
        /// Requested clocks.
        to: Clocks,
        /// Virtual time the change cost (ns); 0 for failed or no-op calls.
        latency_ns: u64,
        /// Whether the management call succeeded.
        ok: bool,
        /// Error rendering, for failed calls.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        error: Option<String>,
    },
    /// One complete profiler measurement window (Section 4.2's
    /// asynchronous polling thread).
    ProfilerWindow {
        /// Profiled kernel name.
        kernel: String,
        /// Window start on the virtual timeline (ns).
        start_ns: u64,
        /// Window end on the virtual timeline (ns).
        end_ns: u64,
        /// Poll iterations that saw the kernel still running.
        polls: u64,
        /// Power samples integrated into the measurement.
        samples: u64,
        /// Sampled (measured) energy, joules.
        measured_j: f64,
        /// Ground-truth energy, joules.
        exact_j: f64,
        /// Configured poll sleep (wall ns between status polls).
        poll_interval_ns: u64,
        /// Actual mean poll cadence observed (wall ns), 0 if no poll ran.
        poll_cadence_ns: u64,
    },
    /// One management-library call through the HAL.
    HalCall {
        /// API name (`set_clocks`, `reset_clocks`, ...).
        api: String,
        /// Caller identity rendering (`root`, `uid 1000`).
        caller: String,
        /// Whether the call succeeded.
        ok: bool,
    },
    /// Model-store traffic.
    ModelCache {
        /// Hit/miss/persist.
        op: CacheOp,
        /// Content-hash key of the entry.
        key: String,
    },
    /// One compile-pipeline phase, recorded at phase end.
    PhaseEnd {
        /// Which phase.
        phase: Phase,
        /// Wall-clock duration of the phase (ns).
        wall_dur_ns: u64,
        /// Work items processed (sweep points, kernels, samples — per
        /// phase semantics).
        items: u64,
        /// Free-form detail (device, kernel set, ...).
        detail: String,
    },
    /// One rank finishing one weak-scaling timestep.
    ClusterStep {
        /// MPI-like rank index.
        rank: u32,
        /// Timestep index.
        step: u32,
        /// Step start on the rank's virtual timeline (ns).
        start_ns: u64,
        /// Step end (after halo synchronization), ns.
        end_ns: u64,
        /// Rank GPU energy over the step, joules.
        energy_j: f64,
    },
    /// One lifecycle stage of a request served by the `synergy-serve`
    /// daemon (accept → enqueue → dispatch → respond, plus the admission
    /// and coalescing branch points).
    Serve {
        /// Which stage.
        op: ServeOp,
        /// Server-assigned connection number (1-based; 0 = server-wide).
        conn: u64,
        /// Client-assigned request id (0 for connection-level stages).
        req: u64,
        /// Request or response kind (`compile`, `busy`, ...).
        detail: String,
        /// Bounded-queue depth observed at the stage.
        queue_depth: u64,
    },
    /// One batched model-inference call on the prediction hot path: how
    /// many input rows went through `predict_batch` in one shot, so batch
    /// sizes are visible in summaries and traces.
    PredictBatch {
        /// What issued the batch (`predict`, `compile`, `sweep`, ...).
        source: String,
        /// Input rows predicted by the call.
        rows: u64,
        /// Wall-clock duration of the batched call (ns).
        wall_dur_ns: u64,
    },
    /// A free-form annotation (e.g. a `synergy-analyze` diagnostic).
    Annotation {
        /// Stable code (`IR003`, `SW001`, ...) or source tag.
        code: String,
        /// Severity or category label.
        level: String,
        /// Human-readable message.
        message: String,
    },
}

impl EventKind {
    /// Stable track name used by the Chrome exporter and summaries.
    pub fn track(&self) -> &'static str {
        match self {
            EventKind::KernelSubmit { .. } | EventKind::KernelRun { .. } => "kernels",
            EventKind::ClockChange { .. } => "clocks",
            EventKind::ProfilerWindow { .. } => "profiler",
            EventKind::HalCall { .. } => "hal",
            EventKind::ModelCache { .. } => "model-cache",
            EventKind::PhaseEnd { .. } => "pipeline",
            EventKind::ClusterStep { .. } => "cluster",
            EventKind::Serve { .. } => "serve",
            EventKind::PredictBatch { .. } => "predict",
            EventKind::Annotation { .. } => "annotations",
        }
    }
}

/// One recorded event: payload plus dual timestamps and a global sequence
/// number (the tie-breaker that keeps exports stably ordered).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetryEvent {
    /// Position on the device's virtual timeline (ns since power-on);
    /// deterministic across identical runs. Host-side events (pipeline
    /// phases, cache traffic) use 0.
    pub ts_virtual_ns: u64,
    /// Wall-clock nanoseconds since the recorder was constructed.
    pub ts_wall_ns: u64,
    /// Global sequence number in record order.
    pub seq: u64,
    /// The payload.
    pub kind: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_serialize_with_type_tags() {
        let ev = EventKind::ClockChange {
            from: Clocks::new(877, 1312),
            to: Clocks::new(877, 900),
            latency_ns: 15_000,
            ok: true,
            error: None,
        };
        let json = serde_json::to_value(&ev).unwrap();
        assert_eq!(json["type"], "clock_change");
        assert_eq!(json["to"]["core_mhz"], 900);
        let back: EventKind = serde_json::from_value(json).unwrap();
        assert_eq!(back, ev);
    }

    #[test]
    fn tracks_are_stable() {
        let k = EventKind::KernelSubmit {
            kernel: "k".into(),
            work_items: 1,
        };
        assert_eq!(k.track(), "kernels");
        let p = EventKind::PhaseEnd {
            phase: Phase::Sweep,
            wall_dur_ns: 1,
            items: 2,
            detail: String::new(),
        };
        assert_eq!(p.track(), "pipeline");
        assert_eq!(Phase::Select.name(), "select");
    }

    #[test]
    fn serve_events_tag_and_track() {
        let ev = EventKind::Serve {
            op: ServeOp::CoalesceJoin,
            conn: 3,
            req: 17,
            detail: "compile".into(),
            queue_depth: 2,
        };
        assert_eq!(ev.track(), "serve");
        let json = serde_json::to_value(&ev).unwrap();
        assert_eq!(json["type"], "serve");
        assert_eq!(json["op"], "coalesce_join");
        let back: EventKind = serde_json::from_value(json).unwrap();
        assert_eq!(back, ev);
        assert_eq!(ServeOp::Expire.name(), "expire");
    }

    #[test]
    fn predict_batch_tags_and_tracks() {
        let ev = EventKind::PredictBatch {
            source: "compile".into(),
            rows: 196,
            wall_dur_ns: 12_000,
        };
        assert_eq!(ev.track(), "predict");
        let clone = ev.clone();
        assert_eq!(clone, ev);
        match clone {
            EventKind::PredictBatch { source, rows, wall_dur_ns } => {
                assert_eq!(source, "compile");
                assert_eq!(rows, 196);
                assert_eq!(wall_dur_ns, 12_000);
            }
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn clocks_display() {
        assert_eq!(Clocks::new(877, 1312).to_string(), "877/1312 MHz");
    }
}
