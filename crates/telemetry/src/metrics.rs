//! Live metrics: sharded lock-free counters/gauges and log-bucketed
//! latency histograms with a zero-cost disabled path.
//!
//! This is the *always-on* side of telemetry. Where the [`Recorder`]
//! (PR 3) captures a bounded flight-recorder of discrete events for
//! post-hoc traces, the [`Metrics`] registry keeps cheap cumulative
//! aggregates — counters, gauges, latency histograms, energy/cost
//! rollups — that a live operator can scrape at any moment without
//! stopping the world.
//!
//! Design constraints, mirroring the recorder:
//!
//! 1. **Zero-cost when disabled.** [`Metrics::disabled()`] holds no
//!    allocation; every instrument handle it hands out is `None` inside,
//!    so a record is a single branch and no label strings are ever
//!    materialized.
//! 2. **Lock-free on the hot path.** Counters are sharded across
//!    cache-line-padded atomics indexed by a thread-local slot (the same
//!    scheme as the recorder's shard selection), gauges are single
//!    atomics, and histogram buckets are plain relaxed `fetch_add`s on
//!    distinct cache lines. The only mutex in the module guards
//!    *registration* (finding or creating an instrument by name+labels),
//!    which callers do once at startup and cache the returned handle.
//! 3. **Bounded relative error.** [`LogHistogram`] uses fixed
//!    log-linear bucket boundaries (8 sub-buckets per octave), so two
//!    histograms merge *exactly* (element-wise bucket sums) and any
//!    quantile estimate is within **6.25%** relative error of the exact
//!    order statistic for in-range samples — see
//!    [`LogHistogram::MAX_RELATIVE_ERROR`], proven by property test.
//!
//! [`Recorder`]: crate::Recorder

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Shards per counter; writes from different threads usually land on
/// different cache lines.
pub const COUNTER_SHARDS: usize = 8;

/// Mantissa bits per octave: 2^3 = 8 sub-buckets, bounding quantile
/// relative error at 1/16.
const SUB_BITS: u32 = 3;
const SUB: u64 = 1 << SUB_BITS;

/// Largest finite octave exponent: values at or above `2^MAX_EXP` ns
/// (~18.3 minutes) land in the overflow bucket.
const MAX_EXP: u32 = 40;

/// Finite buckets: 8 exact unit buckets for values `< 8`, then 8
/// sub-buckets per octave up to `2^MAX_EXP`.
const FINITE_BUCKETS: usize = (SUB as usize) * (MAX_EXP as usize - 2);

/// Finite buckets plus the overflow bucket.
pub const HISTOGRAM_BUCKETS: usize = FINITE_BUCKETS + 1;

static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Each thread picks a round-robin shard once and sticks with it.
    static THREAD_SLOT: usize =
        NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS;
}

#[inline]
fn thread_slot() -> usize {
    THREAD_SLOT.with(|s| *s)
}

/// A cache-line-padded atomic, so sharded counters do not false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

// ---------------------------------------------------------------------------
// Log-linear histogram
// ---------------------------------------------------------------------------

/// Map a nanosecond value to its fixed bucket index.
///
/// Values `< 8` get exact unit buckets; otherwise the bucket is the
/// octave (floor log2) refined by the top [`SUB_BITS`] mantissa bits —
/// the HDR-histogram log-linear scheme, computed with pure integer ops.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let e = 63 - v.leading_zeros();
    if e >= MAX_EXP {
        return FINITE_BUCKETS; // overflow
    }
    // Normalize to [8, 16): the top 3 mantissa bits pick the sub-bucket.
    let m = (v >> (e - SUB_BITS)) as usize;
    (m - SUB as usize) + SUB as usize * (e as usize - 2)
}

/// Inclusive-exclusive `[lo, hi)` nanosecond bounds of a finite bucket.
fn bucket_bounds(idx: usize) -> (u64, u64) {
    if idx < SUB as usize {
        return (idx as u64, idx as u64 + 1);
    }
    let e = (idx / SUB as usize + 2) as u32;
    let sub = (idx % SUB as usize) as u64;
    let lo = (SUB + sub) << (e - SUB_BITS);
    let hi = lo + (1u64 << (e - SUB_BITS));
    (lo, hi)
}

/// The representative value (ns) reported for a bucket: exact for the
/// unit buckets, the arithmetic midpoint otherwise. The midpoint of a
/// `[lo, lo + lo/(8+sub))` bucket is within `1/16` of any point inside.
fn bucket_estimate(idx: usize) -> f64 {
    if idx < SUB as usize {
        return idx as f64;
    }
    if idx >= FINITE_BUCKETS {
        // Overflow: report the scale's ceiling; error is unbounded here
        // by construction, which MAX_EXP makes irrelevant for latencies.
        return (1u64 << MAX_EXP) as f64;
    }
    let (lo, hi) = bucket_bounds(idx);
    (lo + hi) as f64 / 2.0
}

/// A fixed-boundary log-linear latency histogram over nanoseconds.
///
/// * **Lock-free**: `observe_ns` is three relaxed `fetch_add`s.
/// * **Exact merge**: [`merge_from`](Self::merge_from) sums bucket
///   counts element-wise; merging is associative and commutative, so
///   per-thread or per-node histograms aggregate without error.
/// * **Bounded-error quantiles**: any [`quantile`](Self::quantile) of
///   samples in `[8, 2^40)` ns is within
///   [`MAX_RELATIVE_ERROR`](Self::MAX_RELATIVE_ERROR) of the exact
///   nearest-rank order statistic (samples `< 8` ns are exact).
pub struct LogHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// Worst-case relative error of a quantile estimate for in-range
    /// samples: half a bucket's width over its lower bound, `1/16`.
    pub const MAX_RELATIVE_ERROR: f64 = 1.0 / 16.0;

    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram {
            buckets: (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }

    /// Record one nanosecond sample.
    #[inline]
    pub fn observe_ns(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(v, Ordering::Relaxed);
    }

    /// Record one [`Duration`] sample.
    #[inline]
    pub fn observe(&self, d: Duration) {
        self.observe_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact merge: add every bucket of `other` into `self`.
    pub fn merge_from(&self, other: &LogHistogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            let n = theirs.load(Ordering::Relaxed);
            if n != 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum_ns
            .fetch_add(other.sum_ns.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`) in nanoseconds.
    pub fn quantile(&self, q: f64) -> f64 {
        self.snapshot_values().quantile(q)
    }

    /// A point-in-time copy of the bucket contents.
    ///
    /// Concurrent observers may land between the bucket and count reads;
    /// the snapshot is still a valid histogram, just of a slightly
    /// earlier or later traffic prefix.
    pub fn snapshot_values(&self) -> HistogramValues {
        let buckets: Vec<(u32, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n != 0).then_some((i as u32, n))
            })
            .collect();
        let count = buckets.iter().map(|(_, n)| *n).sum();
        HistogramValues {
            count,
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// The owned, serializable contents of a [`LogHistogram`]: a sparse
/// `(bucket index, count)` list plus totals. This is the form that
/// crosses the wire and feeds the OpenMetrics renderer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramValues {
    /// Total samples (sum of bucket counts at snapshot time).
    pub count: u64,
    /// Sum of all observed nanosecond values.
    pub sum_ns: u64,
    /// Non-empty buckets as `(index, count)`, ascending by index.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramValues {
    /// Estimate the `q`-quantile (`0.0..=1.0`) in nanoseconds using the
    /// nearest-rank definition (`rank = round(q * (count - 1))`), the
    /// same convention an exact sort-and-index uses.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * (self.count - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for &(idx, n) in &self.buckets {
            seen += n;
            if seen > rank {
                return bucket_estimate(idx as usize);
            }
        }
        bucket_estimate(FINITE_BUCKETS)
    }

    /// The `q`-quantile in milliseconds (the serving path's native unit).
    pub fn quantile_ms(&self, q: f64) -> f64 {
        self.quantile(q) / 1e6
    }

    /// Mean sample in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Upper bound (exclusive, in seconds) of bucket `idx` — the
    /// OpenMetrics `le` boundary.
    pub fn upper_bound_s(idx: u32) -> Option<f64> {
        if (idx as usize) >= FINITE_BUCKETS {
            return None; // +Inf
        }
        Some(bucket_bounds(idx as usize).1 as f64 / 1e9)
    }
}

// ---------------------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------------------

/// Owned label pairs, kept sorted by key for deterministic identity.
pub type Labels = Vec<(String, String)>;

fn make_labels(labels: &[(&str, &str)]) -> Labels {
    let mut v: Labels = labels
        .iter()
        .map(|(k, val)| (k.to_string(), val.to_string()))
        .collect();
    v.sort();
    v
}

struct CounterCore {
    name: String,
    labels: Labels,
    shards: [PaddedU64; COUNTER_SHARDS],
}

impl CounterCore {
    fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A monotonic counter handle; cloning shares the underlying cells.
/// All operations are no-ops on handles from a disabled registry.
#[derive(Clone)]
pub struct Counter(Option<Arc<CounterCore>>);

impl Counter {
    /// A no-op counter, for default-constructed configs.
    pub fn disabled() -> Counter {
        Counter(None)
    }

    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(core) = &self.0 {
            core.shards[thread_slot()].0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (sum over shards).
    pub fn value(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.value())
    }
}

struct GaugeCore {
    name: String,
    labels: Labels,
    value: AtomicI64,
}

/// An instantaneous gauge handle (queue depth, in-flight work).
#[derive(Clone)]
pub struct Gauge(Option<Arc<GaugeCore>>);

impl Gauge {
    /// A no-op gauge.
    pub fn disabled() -> Gauge {
        Gauge(None)
    }

    /// Set the gauge to an absolute value.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(core) = &self.0 {
            core.value.store(v, Ordering::Relaxed);
        }
    }

    /// Add a (possibly negative) delta.
    #[inline]
    pub fn add(&self, d: i64) {
        if let Some(core) = &self.0 {
            core.value.fetch_add(d, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.0.as_ref().map_or(0, |c| c.value.load(Ordering::Relaxed))
    }
}

struct FloatCounterCore {
    name: String,
    labels: Labels,
    bits: AtomicU64,
}

impl FloatCounterCore {
    fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A monotonic floating-point counter (joules), updated by CAS loop.
#[derive(Clone)]
pub struct FloatCounter(Option<Arc<FloatCounterCore>>);

impl FloatCounter {
    /// A no-op float counter.
    pub fn disabled() -> FloatCounter {
        FloatCounter(None)
    }

    /// Add `d` (negative deltas are ignored; counters are monotonic).
    pub fn add(&self, d: f64) {
        let Some(core) = &self.0 else { return };
        // Also drops NaN deltas: only a strict Greater ordering passes.
        if d.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return;
        }
        let mut cur = core.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + d).to_bits();
            match core
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        self.0.as_ref().map_or(0.0, |c| c.value())
    }
}

struct HistogramCore {
    name: String,
    labels: Labels,
    hist: LogHistogram,
}

/// A latency histogram handle backed by a shared [`LogHistogram`].
#[derive(Clone)]
pub struct Histo(Option<Arc<HistogramCore>>);

impl Histo {
    /// A no-op histogram.
    pub fn disabled() -> Histo {
        Histo(None)
    }

    /// Record one nanosecond sample.
    #[inline]
    pub fn observe_ns(&self, v: u64) {
        if let Some(core) = &self.0 {
            core.hist.observe_ns(v);
        }
    }

    /// Record one [`Duration`] sample.
    #[inline]
    pub fn observe(&self, d: Duration) {
        if let Some(core) = &self.0 {
            core.hist.observe(d);
        }
    }

    /// Point-in-time bucket contents (empty when disabled).
    pub fn values(&self) -> HistogramValues {
        self.0.as_ref().map_or(
            HistogramValues {
                count: 0,
                sum_ns: 0,
                buckets: Vec::new(),
            },
            |c| c.hist.snapshot_values(),
        )
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Fleet cost model: how running joules and node time turn into money.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostConfig {
    /// Electricity price in dollars per kilowatt-hour.
    pub usd_per_kwh: f64,
}

impl Default for CostConfig {
    fn default() -> CostConfig {
        // A round on-demand datacenter electricity figure; override via
        // `ServeConfig`/CLI when modeling a specific fleet.
        CostConfig { usd_per_kwh: 0.12 }
    }
}

struct MetricsInner {
    start: Instant,
    cost: CostConfig,
    counters: Mutex<Vec<Arc<CounterCore>>>,
    gauges: Mutex<Vec<Arc<GaugeCore>>>,
    floats: Mutex<Vec<Arc<FloatCounterCore>>>,
    histograms: Mutex<Vec<Arc<HistogramCore>>>,
}

/// The metrics registry handle. Cloning is one `Arc` clone (or a copy of
/// `None` when disabled); every layer of the serve stack holds one.
///
/// Instrument lookup (`counter`/`gauge`/`histogram`/`float_counter`)
/// takes a registration mutex and should be done once per instrument at
/// startup, caching the returned handle; the handles themselves are
/// lock-free.
#[derive(Clone, Default)]
pub struct Metrics {
    inner: Option<Arc<MetricsInner>>,
}

impl Metrics {
    /// The no-op registry: every handle is a single-branch no-op and no
    /// memory is allocated.
    pub fn disabled() -> Metrics {
        Metrics { inner: None }
    }

    /// A live registry with the default [`CostConfig`].
    pub fn enabled() -> Metrics {
        Metrics::enabled_with(CostConfig::default())
    }

    /// A live registry with an explicit cost model.
    pub fn enabled_with(cost: CostConfig) -> Metrics {
        Metrics {
            inner: Some(Arc::new(MetricsInner {
                start: Instant::now(),
                cost,
                counters: Mutex::new(Vec::new()),
                gauges: Mutex::new(Vec::new()),
                floats: Mutex::new(Vec::new()),
                histograms: Mutex::new(Vec::new()),
            })),
        }
    }

    /// Whether this registry records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Find or create the counter `name{labels}`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let Some(inner) = &self.inner else {
            return Counter(None);
        };
        let labels = make_labels(labels);
        let mut reg = inner.counters.lock();
        if let Some(c) = reg.iter().find(|c| c.name == name && c.labels == labels) {
            return Counter(Some(c.clone()));
        }
        let core = Arc::new(CounterCore {
            name: name.to_string(),
            labels,
            shards: Default::default(),
        });
        reg.push(core.clone());
        Counter(Some(core))
    }

    /// Find or create the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let Some(inner) = &self.inner else {
            return Gauge(None);
        };
        let labels = make_labels(labels);
        let mut reg = inner.gauges.lock();
        if let Some(g) = reg.iter().find(|g| g.name == name && g.labels == labels) {
            return Gauge(Some(g.clone()));
        }
        let core = Arc::new(GaugeCore {
            name: name.to_string(),
            labels,
            value: AtomicI64::new(0),
        });
        reg.push(core.clone());
        Gauge(Some(core))
    }

    /// Find or create the monotonic float counter `name{labels}`.
    pub fn float_counter(&self, name: &str, labels: &[(&str, &str)]) -> FloatCounter {
        let Some(inner) = &self.inner else {
            return FloatCounter(None);
        };
        let labels = make_labels(labels);
        let mut reg = inner.floats.lock();
        if let Some(f) = reg.iter().find(|f| f.name == name && f.labels == labels) {
            return FloatCounter(Some(f.clone()));
        }
        let core = Arc::new(FloatCounterCore {
            name: name.to_string(),
            labels,
            bits: AtomicU64::new(0f64.to_bits()),
        });
        reg.push(core.clone());
        FloatCounter(Some(core))
    }

    /// Find or create the latency histogram `name{labels}`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histo {
        let Some(inner) = &self.inner else {
            return Histo(None);
        };
        let labels = make_labels(labels);
        let mut reg = inner.histograms.lock();
        if let Some(h) = reg.iter().find(|h| h.name == name && h.labels == labels) {
            return Histo(Some(h.clone()));
        }
        let core = Arc::new(HistogramCore {
            name: name.to_string(),
            labels,
            hist: LogHistogram::new(),
        });
        reg.push(core.clone());
        Histo(Some(core))
    }

    /// Accumulate simulated energy for `device`, in joules. Convenience
    /// wrapper over the per-device `synergy_device_energy_joules_total`
    /// float counter the cost rollup sums.
    pub fn add_energy_joules(&self, device: &str, joules: f64) {
        if self.inner.is_none() {
            return;
        }
        self.float_counter(ENERGY_COUNTER, &[("device", device)])
            .add(joules);
    }

    /// Build a point-in-time [`MetricsSnapshot`] of every registered
    /// instrument plus the cost rollup. Empty when disabled.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let Some(inner) = &self.inner else {
            return MetricsSnapshot::default();
        };
        let mut counters: Vec<Sample> = inner
            .counters
            .lock()
            .iter()
            .map(|c| Sample {
                name: c.name.clone(),
                labels: c.labels.clone(),
                value: c.value() as f64,
            })
            .collect();
        let mut joules_by_device: Vec<(String, f64)> = Vec::new();
        for f in inner.floats.lock().iter() {
            if f.name == ENERGY_COUNTER {
                if let Some((_, dev)) = f.labels.iter().find(|(k, _)| k == "device") {
                    joules_by_device.push((dev.clone(), f.value()));
                }
            }
            counters.push(Sample {
                name: f.name.clone(),
                labels: f.labels.clone(),
                value: f.value(),
            });
        }
        let mut gauges: Vec<Sample> = inner
            .gauges
            .lock()
            .iter()
            .map(|g| Sample {
                name: g.name.clone(),
                labels: g.labels.clone(),
                value: g.value.load(Ordering::Relaxed) as f64,
            })
            .collect();
        let mut histograms: Vec<HistogramSample> = inner
            .histograms
            .lock()
            .iter()
            .map(|h| HistogramSample {
                name: h.name.clone(),
                labels: h.labels.clone(),
                values: h.hist.snapshot_values(),
            })
            .collect();
        counters.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        gauges.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        histograms.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        joules_by_device.sort_by(|a, b| a.0.cmp(&b.0));

        let node_seconds = inner.start.elapsed().as_secs_f64();
        // fold from +0.0: an empty `sum()` yields -0.0, which would
        // render as "-0" in the exposition before any energy lands.
        let total_joules: f64 = joules_by_device.iter().fold(0.0, |a, (_, j)| a + j);
        let kwh = total_joules / 3.6e6;
        MetricsSnapshot {
            uptime_s: node_seconds,
            counters,
            gauges,
            histograms,
            cost: CostSnapshot {
                node_seconds,
                usd_per_kwh: inner.cost.usd_per_kwh,
                total_joules,
                kwh,
                tco_usd: kwh * inner.cost.usd_per_kwh,
                joules_by_device,
            },
        }
    }
}

/// Canonical name of the per-device energy counter the cost rollup sums.
pub const ENERGY_COUNTER: &str = "synergy_device_energy_joules_total";

// ---------------------------------------------------------------------------
// Snapshot types
// ---------------------------------------------------------------------------

/// One scalar sample: a counter or gauge with its identity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Metric name (already in OpenMetrics form, e.g.
    /// `synergy_serve_responses_total`).
    pub name: String,
    /// Sorted label pairs.
    pub labels: Labels,
    /// The value. Integer counters are exact here up to 2^53.
    pub value: f64,
}

/// One histogram with its identity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSample {
    /// Metric name (e.g. `synergy_request_seconds`).
    pub name: String,
    /// Sorted label pairs.
    pub labels: Labels,
    /// Sparse bucket contents.
    pub values: HistogramValues,
}

/// Fleet cost rollup: cumulative energy turned into money.
///
/// `tco_usd = total_joules / 3.6e6 [kWh] * usd_per_kwh`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct CostSnapshot {
    /// Seconds this node (daemon) has been up.
    pub node_seconds: f64,
    /// Configured electricity price.
    pub usd_per_kwh: f64,
    /// Sum of all per-device energy counters, joules.
    pub total_joules: f64,
    /// `total_joules` in kilowatt-hours.
    pub kwh: f64,
    /// Running total cost of the energy served so far.
    pub tco_usd: f64,
    /// Cumulative joules per device, sorted by device name.
    pub joules_by_device: Vec<(String, f64)>,
}

/// A complete point-in-time view of the registry: what crosses the wire
/// for `Request::Metrics` and what the OpenMetrics renderer consumes.
///
/// All collections are sorted by `(name, labels)`, so two snapshots of
/// identical state serialize identically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct MetricsSnapshot {
    /// Seconds since the registry was created.
    pub uptime_s: f64,
    /// Monotonic counters (integer and float), sorted.
    pub counters: Vec<Sample>,
    /// Instantaneous gauges, sorted.
    pub gauges: Vec<Sample>,
    /// Latency histograms, sorted.
    pub histograms: Vec<HistogramSample>,
    /// The cost rollup.
    pub cost: CostSnapshot,
}

impl MetricsSnapshot {
    /// Append a scalar counter sample (used by the server to graft in
    /// sources that live outside the registry, like `ModelStore` cache
    /// stats and the recorder drop counter) and restore sorted order.
    pub fn push_counter(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.counters.push(Sample {
            name: name.to_string(),
            labels: make_labels(labels),
            value,
        });
        self.counters
            .sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
    }

    /// Look up a scalar counter by name and labels.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let labels = make_labels(labels);
        self.counters
            .iter()
            .find(|s| s.name == name && s.labels == labels)
            .map(|s| s.value)
    }

    /// Look up a histogram by name and labels.
    pub fn histogram_values(
        &self,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Option<&HistogramValues> {
        let labels = make_labels(labels);
        self.histograms
            .iter()
            .find(|s| s.name == name && s.labels == labels)
            .map(|s| &s.values)
    }

    /// Merge another node's snapshot into this one — the fleet rollup.
    ///
    /// Counters and gauges with the same `(name, labels)` identity are
    /// summed; histograms merge **exactly** by element-wise bucket
    /// addition (the same guarantee as [`LogHistogram::merge_from`],
    /// since bucket boundaries are fixed); unmatched instruments are
    /// appended. Cost rollups add energy, node-seconds and
    /// per-device joules, then recompute `kwh`/`tco_usd` from the
    /// merged totals under `self`'s electricity price (a fleet has one
    /// price; `other.usd_per_kwh` is adopted only when `self` has
    /// none). `uptime_s` becomes the max, since fleet uptime is the
    /// oldest member's. Merging is commutative up to sort order and
    /// associative, so per-node snapshots aggregate in any order.
    pub fn merge_from(&mut self, other: &MetricsSnapshot) {
        fn merge_scalars(mine: &mut Vec<Sample>, theirs: &[Sample]) {
            for s in theirs {
                match mine
                    .iter_mut()
                    .find(|m| m.name == s.name && m.labels == s.labels)
                {
                    Some(m) => m.value += s.value,
                    None => mine.push(s.clone()),
                }
            }
            mine.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        }
        merge_scalars(&mut self.counters, &other.counters);
        merge_scalars(&mut self.gauges, &other.gauges);
        for h in &other.histograms {
            match self
                .histograms
                .iter_mut()
                .find(|m| m.name == h.name && m.labels == h.labels)
            {
                Some(m) => m.values.merge_from(&h.values),
                None => self.histograms.push(h.clone()),
            }
        }
        self.histograms
            .sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        self.uptime_s = self.uptime_s.max(other.uptime_s);

        self.cost.node_seconds += other.cost.node_seconds;
        self.cost.total_joules += other.cost.total_joules;
        for (dev, j) in &other.cost.joules_by_device {
            match self
                .cost
                .joules_by_device
                .iter_mut()
                .find(|(d, _)| d == dev)
            {
                Some((_, mine)) => *mine += j,
                None => self.cost.joules_by_device.push((dev.clone(), *j)),
            }
        }
        self.cost.joules_by_device.sort_by(|a, b| a.0.cmp(&b.0));
        if self.cost.usd_per_kwh == 0.0 {
            self.cost.usd_per_kwh = other.cost.usd_per_kwh;
        }
        self.cost.kwh = self.cost.total_joules / 3.6e6;
        self.cost.tco_usd = self.cost.kwh * self.cost.usd_per_kwh;
    }
}

impl HistogramValues {
    /// Exact merge of another sparse histogram into this one: bucket
    /// counts add element-wise by index, totals add. The sparse list
    /// stays ascending by index.
    pub fn merge_from(&mut self, other: &HistogramValues) {
        for &(idx, n) in &other.buckets {
            match self.buckets.binary_search_by_key(&idx, |&(i, _)| i) {
                Ok(pos) => self.buckets[pos].1 += n,
                Err(pos) => self.buckets.insert(pos, (idx, n)),
            }
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotonic_and_bounded() {
        let mut last = 0usize;
        for v in [0u64, 1, 7, 8, 9, 15, 16, 100, 1_000, 1 << 20, (1 << 40) - 1] {
            let idx = bucket_index(v);
            assert!(idx >= last, "index must not decrease: v={v} idx={idx}");
            assert!(idx < HISTOGRAM_BUCKETS);
            last = idx;
        }
        assert_eq!(bucket_index(1 << 40), FINITE_BUCKETS);
        assert_eq!(bucket_index(u64::MAX), FINITE_BUCKETS);
    }

    #[test]
    fn bucket_bounds_contain_their_values() {
        for v in [0u64, 1, 7, 8, 12, 255, 256, 1_000_000, (1 << 40) - 1] {
            let idx = bucket_index(v);
            let (lo, hi) = bucket_bounds(idx);
            assert!(lo <= v && v < hi, "v={v} not in [{lo},{hi}) (idx {idx})");
        }
    }

    #[test]
    fn bucket_bounds_are_contiguous() {
        for idx in 0..FINITE_BUCKETS - 1 {
            assert_eq!(bucket_bounds(idx).1, bucket_bounds(idx + 1).0);
        }
        assert_eq!(bucket_bounds(FINITE_BUCKETS - 1).1, 1u64 << MAX_EXP);
    }

    #[test]
    fn quantiles_of_known_distribution() {
        let h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.observe_ns(v * 1_000); // 1us .. 1ms
        }
        let p50 = h.quantile(0.5);
        let exact = 501_000.0; // nearest-rank: round(0.5 * 999) = 500 -> 501 us
        assert!(
            (p50 - exact).abs() / exact <= LogHistogram::MAX_RELATIVE_ERROR,
            "p50 {p50} vs {exact}"
        );
        assert_eq!(h.count(), 1000);
    }

    #[test]
    fn merge_is_exact() {
        let a = LogHistogram::new();
        let b = LogHistogram::new();
        let whole = LogHistogram::new();
        for v in 0..500u64 {
            a.observe_ns(v * 17 + 3);
            whole.observe_ns(v * 17 + 3);
        }
        for v in 0..300u64 {
            b.observe_ns(v * v + 11);
            whole.observe_ns(v * v + 11);
        }
        a.merge_from(&b);
        assert_eq!(a.snapshot_values(), whole.snapshot_values());
    }

    #[test]
    fn disabled_registry_is_inert() {
        let m = Metrics::disabled();
        assert!(!m.is_enabled());
        let c = m.counter("x_total", &[]);
        c.inc();
        assert_eq!(c.value(), 0);
        let h = m.histogram("x_seconds", &[]);
        h.observe_ns(123);
        assert_eq!(h.values().count, 0);
        m.add_energy_joules("v100", 5.0);
        let snap = m.snapshot();
        assert_eq!(snap, MetricsSnapshot::default());
    }

    #[test]
    fn registry_dedupes_and_sorts() {
        let m = Metrics::enabled();
        let c1 = m.counter("requests_total", &[("kind", "ping")]);
        let c2 = m.counter("requests_total", &[("kind", "ping")]);
        c1.inc();
        c2.add(2);
        assert_eq!(c1.value(), 3);
        m.counter("requests_total", &[("kind", "compile")]).add(7);
        let g = m.gauge("queue_depth", &[]);
        g.set(4);
        g.add(-1);
        let snap = m.snapshot();
        let names: Vec<&str> = snap
            .counters
            .iter()
            .map(|s| s.labels[0].1.as_str())
            .collect();
        assert_eq!(names, vec!["compile", "ping"]);
        assert_eq!(
            snap.counter_value("requests_total", &[("kind", "ping")]),
            Some(3.0)
        );
        assert_eq!(snap.gauges[0].value, 3.0);
    }

    #[test]
    fn cost_rollup_sums_devices() {
        let m = Metrics::enabled_with(CostConfig { usd_per_kwh: 0.5 });
        m.add_energy_joules("v100", 1.8e6);
        m.add_energy_joules("a100", 1.8e6);
        m.add_energy_joules("v100", 3.6e6);
        let snap = m.snapshot();
        assert_eq!(snap.cost.total_joules, 7.2e6);
        assert_eq!(snap.cost.kwh, 2.0);
        assert_eq!(snap.cost.tco_usd, 1.0);
        assert_eq!(
            snap.cost.joules_by_device,
            vec![("a100".to_string(), 1.8e6), ("v100".to_string(), 5.4e6)]
        );
        assert!(snap.cost.node_seconds >= 0.0);
    }

    #[test]
    fn snapshot_roundtrips_through_serde() {
        let m = Metrics::enabled();
        m.counter("a_total", &[("k", "v")]).add(9);
        m.histogram("lat_seconds", &[]).observe_ns(42_000);
        m.add_energy_joules("v100", 1.0);
        let snap = m.snapshot();
        let text = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn snapshot_merge_sums_and_merges_exactly() {
        let a = Metrics::enabled_with(CostConfig { usd_per_kwh: 0.5 });
        a.counter("req_total", &[("kind", "ping")]).add(3);
        a.gauge("depth", &[]).set(2);
        a.histogram("lat_seconds", &[]).observe_ns(1_000);
        a.add_energy_joules("v100", 1.8e6);

        let b = Metrics::enabled_with(CostConfig { usd_per_kwh: 0.5 });
        b.counter("req_total", &[("kind", "ping")]).add(4);
        b.counter("req_total", &[("kind", "sweep")]).add(1);
        b.gauge("depth", &[]).set(5);
        b.histogram("lat_seconds", &[]).observe_ns(1_000_000);
        b.add_energy_joules("v100", 1.8e6);
        b.add_energy_joules("a100", 3.6e6);

        // Reference: one registry that saw all the traffic.
        let whole = Metrics::enabled_with(CostConfig { usd_per_kwh: 0.5 });
        whole.counter("req_total", &[("kind", "ping")]).add(7);
        whole.counter("req_total", &[("kind", "sweep")]).add(1);
        whole.gauge("depth", &[]).set(7);
        whole.histogram("lat_seconds", &[]).observe_ns(1_000);
        whole.histogram("lat_seconds", &[]).observe_ns(1_000_000);
        whole.add_energy_joules("v100", 3.6e6);
        whole.add_energy_joules("a100", 3.6e6);

        let mut merged = a.snapshot();
        merged.merge_from(&b.snapshot());
        let reference = whole.snapshot();
        assert_eq!(merged.counters, reference.counters);
        assert_eq!(merged.gauges, reference.gauges);
        assert_eq!(merged.histograms, reference.histograms);
        assert_eq!(merged.cost.total_joules, 7.2e6);
        assert_eq!(merged.cost.kwh, 2.0);
        assert_eq!(merged.cost.tco_usd, 1.0);
        assert_eq!(
            merged.cost.joules_by_device,
            vec![("a100".to_string(), 3.6e6), ("v100".to_string(), 3.6e6)]
        );

        // Commutativity: b + a gives the same instruments and cost.
        let mut flipped = b.snapshot();
        flipped.merge_from(&a.snapshot());
        assert_eq!(flipped.counters, merged.counters);
        assert_eq!(flipped.histograms, merged.histograms);
        assert_eq!(flipped.cost.total_joules, merged.cost.total_joules);
    }

    #[test]
    fn histogram_values_merge_matches_live_merge() {
        let a = LogHistogram::new();
        let b = LogHistogram::new();
        let whole = LogHistogram::new();
        for v in 0..400u64 {
            a.observe_ns(v * 13 + 1);
            whole.observe_ns(v * 13 + 1);
        }
        for v in 0..250u64 {
            b.observe_ns(v * v + 5);
            whole.observe_ns(v * v + 5);
        }
        let mut av = a.snapshot_values();
        av.merge_from(&b.snapshot_values());
        assert_eq!(av, whole.snapshot_values());
    }

    #[test]
    fn float_counter_ignores_nonpositive() {
        let m = Metrics::enabled();
        let f = m.float_counter("j_total", &[]);
        f.add(1.5);
        f.add(-3.0);
        f.add(f64::NAN);
        f.add(2.5);
        assert_eq!(f.value(), 4.0);
    }
}
