//! Chrome trace-event export.
//!
//! Converts a recorded event stream into the Chrome trace-event JSON
//! format (the `chrome://tracing` / [Perfetto](https://ui.perfetto.dev)
//! on-disk format). Two process tracks are emitted:
//!
//! * **pid 0 — virtual timeline**: device-side activity placed on the
//!   simulator's deterministic nanosecond timeline (kernel slices, clock
//!   changes, profiler windows, per-rank cluster steps, cumulative energy
//!   counter).
//! * **pid 1 — wall clock**: host-side activity placed on real time since
//!   the recorder was constructed (pipeline phases as slices; every other
//!   event as an instant, so host/device interleaving stays visible).
//!
//! Timestamps follow the format's convention of *microseconds* expressed
//! as doubles, so nanosecond precision survives.

use crate::event::{EventKind, TelemetryEvent};
use serde::{Deserialize, Serialize};
use serde_json::{json, Value};

/// Pid of the virtual (device) timeline track.
pub const PID_VIRTUAL: u64 = 0;
/// Pid of the wall-clock track.
pub const PID_WALL: u64 = 1;

/// Tid offset for per-rank cluster threads on the virtual track.
const TID_CLUSTER_BASE: u64 = 100;

/// One entry in the `traceEvents` array.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChromeEvent {
    /// Slice / counter / instant name.
    pub name: String,
    /// Category — the telemetry track the event came from.
    pub cat: String,
    /// Phase: `"X"` complete slice, `"i"` instant, `"C"` counter,
    /// `"M"` metadata.
    pub ph: String,
    /// Timestamp in microseconds.
    pub ts: f64,
    /// Duration in microseconds (complete slices only).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub dur: Option<f64>,
    /// Process id (track group).
    pub pid: u64,
    /// Thread id (track lane).
    pub tid: u64,
    /// Instant scope (`"t"` thread) — instants only.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub s: Option<String>,
    /// Event payload.
    #[serde(skip_serializing_if = "Value::is_null", default)]
    pub args: Value,
}

/// A complete trace document (`{"traceEvents": [...], ...}` object form).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChromeTrace {
    /// The events.
    #[serde(rename = "traceEvents")]
    pub trace_events: Vec<ChromeEvent>,
    /// Display unit hint for viewers.
    #[serde(rename = "displayTimeUnit")]
    pub display_time_unit: String,
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1_000.0
}

/// Stable tid for a track name on either pid.
fn track_tid(track: &str) -> u64 {
    match track {
        "kernels" => 1,
        "clocks" => 2,
        "profiler" => 3,
        "hal" => 4,
        "model-cache" => 5,
        "pipeline" => 6,
        "cluster" => 7,
        "serve" => 9,
        "predict" => 10,
        _ => 8, // annotations
    }
}

fn meta(pid: u64, tid: Option<u64>, key: &str, name: &str) -> ChromeEvent {
    ChromeEvent {
        name: key.to_string(),
        cat: "__metadata".to_string(),
        ph: "M".to_string(),
        ts: 0.0,
        dur: None,
        pid,
        tid: tid.unwrap_or(0),
        s: None,
        args: json!({ "name": name }),
    }
}

fn slice(pid: u64, tid: u64, cat: &str, name: String, start_ns: u64, end_ns: u64, args: Value) -> ChromeEvent {
    ChromeEvent {
        name,
        cat: cat.to_string(),
        ph: "X".to_string(),
        ts: us(start_ns),
        dur: Some(us(end_ns.saturating_sub(start_ns))),
        pid,
        tid,
        s: None,
        args,
    }
}

fn instant(pid: u64, tid: u64, cat: &str, name: String, ts_ns: u64, args: Value) -> ChromeEvent {
    ChromeEvent {
        name,
        cat: cat.to_string(),
        ph: "i".to_string(),
        ts: us(ts_ns),
        dur: None,
        pid,
        tid,
        s: Some("t".to_string()),
        args,
    }
}

impl ChromeTrace {
    /// Build a two-track trace from an ordered event stream (as returned
    /// by `Recorder::snapshot`/`drain`).
    pub fn from_events(events: &[TelemetryEvent]) -> ChromeTrace {
        let mut out = Vec::with_capacity(events.len() * 2 + 16);
        out.push(meta(PID_VIRTUAL, None, "process_name", "virtual timeline (device ns)"));
        out.push(meta(PID_WALL, None, "process_name", "wall clock"));

        let mut seen_tracks: Vec<(&'static str, bool)> = Vec::new(); // (track, on_virtual)
        let mut seen_ranks: Vec<u32> = Vec::new();
        let mut cumulative_j = 0.0f64;

        for ev in events {
            let track = ev.kind.track();
            let tid = track_tid(track);
            let args = serde_json::to_value(&ev.kind).unwrap_or(Value::Null);

            // Virtual-track representation for device-side events.
            let on_virtual = match &ev.kind {
                EventKind::KernelRun {
                    kernel,
                    start_ns,
                    end_ns,
                    energy_j,
                    ..
                } => {
                    out.push(slice(PID_VIRTUAL, tid, track, kernel.clone(), *start_ns, *end_ns, args.clone()));
                    cumulative_j += energy_j;
                    out.push(ChromeEvent {
                        name: "cumulative_energy_j".to_string(),
                        cat: "energy".to_string(),
                        ph: "C".to_string(),
                        ts: us(*end_ns),
                        dur: None,
                        pid: PID_VIRTUAL,
                        tid: 0,
                        s: None,
                        args: json!({ "J": cumulative_j }),
                    });
                    true
                }
                EventKind::KernelSubmit { kernel, .. } => {
                    out.push(instant(PID_VIRTUAL, tid, track, format!("submit {kernel}"), ev.ts_virtual_ns, args.clone()));
                    true
                }
                EventKind::ClockChange { to, latency_ns, ok, .. } => {
                    let name = if *ok { format!("set {to}") } else { format!("set {to} (failed)") };
                    let start = ev.ts_virtual_ns.saturating_sub(*latency_ns);
                    out.push(slice(PID_VIRTUAL, tid, track, name, start, ev.ts_virtual_ns, args.clone()));
                    true
                }
                EventKind::ProfilerWindow { kernel, start_ns, end_ns, .. } => {
                    out.push(slice(PID_VIRTUAL, tid, track, format!("profile {kernel}"), *start_ns, *end_ns, args.clone()));
                    true
                }
                EventKind::ClusterStep { rank, step, start_ns, end_ns, .. } => {
                    let rank_tid = TID_CLUSTER_BASE + u64::from(*rank);
                    if !seen_ranks.contains(rank) {
                        seen_ranks.push(*rank);
                        out.push(meta(PID_VIRTUAL, Some(rank_tid), "thread_name", &format!("rank {rank}")));
                    }
                    out.push(slice(PID_VIRTUAL, rank_tid, track, format!("step {step}"), *start_ns, *end_ns, args.clone()));
                    true
                }
                // Host-side events live on the wall track only.
                EventKind::HalCall { .. }
                | EventKind::ModelCache { .. }
                | EventKind::PhaseEnd { .. }
                | EventKind::Serve { .. }
                | EventKind::PredictBatch { .. }
                | EventKind::Annotation { .. } => false,
            };
            if on_virtual && !seen_tracks.contains(&(track, true)) {
                seen_tracks.push((track, true));
                out.push(meta(PID_VIRTUAL, Some(tid), "thread_name", track));
            }

            // Wall-track representation for every event.
            let wall = match &ev.kind {
                EventKind::PhaseEnd { phase, wall_dur_ns, detail, .. } => {
                    let name = if detail.is_empty() {
                        phase.name().to_string()
                    } else {
                        format!("{} ({detail})", phase.name())
                    };
                    let start = ev.ts_wall_ns.saturating_sub(*wall_dur_ns);
                    slice(PID_WALL, tid, track, name, start, ev.ts_wall_ns, args)
                }
                EventKind::HalCall { api, ok, .. } => {
                    let name = if *ok { api.clone() } else { format!("{api} (failed)") };
                    instant(PID_WALL, tid, track, name, ev.ts_wall_ns, args)
                }
                EventKind::ModelCache { op, .. } => instant(
                    PID_WALL,
                    tid,
                    track,
                    format!("{op:?}"),
                    ev.ts_wall_ns,
                    args,
                ),
                EventKind::Serve { op, detail, .. } => {
                    let name = if detail.is_empty() {
                        op.name().to_string()
                    } else {
                        format!("{} {detail}", op.name())
                    };
                    instant(PID_WALL, tid, track, name, ev.ts_wall_ns, args)
                }
                EventKind::PredictBatch { source, rows, wall_dur_ns } => {
                    let start = ev.ts_wall_ns.saturating_sub(*wall_dur_ns);
                    slice(
                        PID_WALL,
                        tid,
                        track,
                        format!("predict ×{rows} ({source})"),
                        start,
                        ev.ts_wall_ns,
                        args,
                    )
                }
                EventKind::Annotation { code, level, .. } => {
                    instant(PID_WALL, tid, track, format!("{level} {code}"), ev.ts_wall_ns, args)
                }
                EventKind::KernelRun { kernel, .. } => {
                    instant(PID_WALL, tid, track, format!("{kernel} done"), ev.ts_wall_ns, args)
                }
                EventKind::KernelSubmit { kernel, .. } => {
                    instant(PID_WALL, tid, track, format!("submit {kernel}"), ev.ts_wall_ns, args)
                }
                EventKind::ClockChange { to, .. } => {
                    instant(PID_WALL, tid, track, format!("set {to}"), ev.ts_wall_ns, args)
                }
                EventKind::ProfilerWindow { kernel, .. } => {
                    instant(PID_WALL, tid, track, format!("profiled {kernel}"), ev.ts_wall_ns, args)
                }
                EventKind::ClusterStep { rank, step, .. } => {
                    instant(PID_WALL, tid, track, format!("rank {rank} step {step}"), ev.ts_wall_ns, args)
                }
            };
            out.push(wall);
            if !seen_tracks.contains(&(track, false)) {
                seen_tracks.push((track, false));
                out.push(meta(PID_WALL, Some(tid), "thread_name", track));
            }
        }

        ChromeTrace {
            trace_events: out,
            display_time_unit: "ns".to_string(),
        }
    }

    /// Serialize to pretty JSON (the file handed to Perfetto).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("trace serializes")
    }

    /// Parse a trace document back (golden-file round-trips).
    pub fn from_json(json: &str) -> Result<ChromeTrace, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Non-metadata events, for assertions.
    pub fn payload_events(&self) -> impl Iterator<Item = &ChromeEvent> {
        self.trace_events.iter().filter(|e| e.ph != "M")
    }

    /// Categories present in the trace (deduped, sorted).
    pub fn categories(&self) -> Vec<String> {
        let mut cats: Vec<String> = self
            .payload_events()
            .map(|e| e.cat.clone())
            .collect();
        cats.sort();
        cats.dedup();
        cats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CacheOp, Clocks, Phase};

    fn ev(ts_virtual: u64, ts_wall: u64, seq: u64, kind: EventKind) -> TelemetryEvent {
        TelemetryEvent {
            ts_virtual_ns: ts_virtual,
            ts_wall_ns: ts_wall,
            seq,
            kind,
        }
    }

    fn stream() -> Vec<TelemetryEvent> {
        vec![
            ev(
                1_000,
                10,
                0,
                EventKind::KernelSubmit {
                    kernel: "mt".into(),
                    work_items: 4096,
                },
            ),
            ev(
                16_000,
                20,
                1,
                EventKind::ClockChange {
                    from: Clocks::new(877, 1312),
                    to: Clocks::new(877, 900),
                    latency_ns: 15_000,
                    ok: true,
                    error: None,
                },
            ),
            ev(
                46_000,
                40,
                2,
                EventKind::KernelRun {
                    kernel: "mt".into(),
                    start_ns: 16_000,
                    end_ns: 46_000,
                    energy_j: 0.004,
                    clocks: Clocks::new(877, 900),
                },
            ),
            ev(
                46_000,
                50,
                3,
                EventKind::ProfilerWindow {
                    kernel: "mt".into(),
                    start_ns: 16_000,
                    end_ns: 46_000,
                    polls: 3,
                    samples: 2,
                    measured_j: 0.0039,
                    exact_j: 0.004,
                    poll_interval_ns: 50_000,
                    poll_cadence_ns: 51_000,
                },
            ),
            ev(
                0,
                60,
                4,
                EventKind::ModelCache {
                    op: CacheOp::DiskHit,
                    key: "deadbeef".into(),
                },
            ),
            ev(
                0,
                5_000_070,
                5,
                EventKind::PhaseEnd {
                    phase: Phase::Select,
                    wall_dur_ns: 5_000_000,
                    items: 3,
                    detail: "v100".into(),
                },
            ),
        ]
    }

    #[test]
    fn builds_both_tracks_with_metadata() {
        let trace = ChromeTrace::from_events(&stream());
        let pids: Vec<u64> = trace.payload_events().map(|e| e.pid).collect();
        assert!(pids.contains(&PID_VIRTUAL));
        assert!(pids.contains(&PID_WALL));
        assert!(trace
            .trace_events
            .iter()
            .any(|e| e.ph == "M" && e.name == "process_name" && e.pid == PID_VIRTUAL));
        // Kernel slice on the virtual track carries its virtual duration.
        let kernel = trace
            .payload_events()
            .find(|e| e.ph == "X" && e.cat == "kernels")
            .unwrap();
        assert_eq!(kernel.ts, 16.0);
        assert_eq!(kernel.dur, Some(30.0));
        // Phase slice sits on the wall track, back-dated by its duration.
        let phase = trace
            .payload_events()
            .find(|e| e.ph == "X" && e.cat == "pipeline")
            .unwrap();
        assert_eq!(phase.pid, PID_WALL);
        assert!((phase.ts - 0.07).abs() < 1e-9);
        assert_eq!(phase.dur, Some(5_000.0));
    }

    #[test]
    fn counter_tracks_cumulative_energy() {
        let trace = ChromeTrace::from_events(&stream());
        let counter = trace
            .payload_events()
            .find(|e| e.ph == "C")
            .expect("energy counter emitted");
        assert_eq!(counter.args["J"], 0.004);
    }

    #[test]
    fn covers_all_recorded_categories() {
        let trace = ChromeTrace::from_events(&stream());
        let cats = trace.categories();
        for want in ["kernels", "clocks", "profiler", "model-cache", "pipeline"] {
            assert!(cats.iter().any(|c| c == want), "missing category {want}");
        }
    }

    #[test]
    fn json_round_trips_exactly() {
        let trace = ChromeTrace::from_events(&stream());
        let json = trace.to_json();
        let back = ChromeTrace::from_json(&json).unwrap();
        assert_eq!(back, trace);
        // And the document is a valid Chrome trace object.
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert!(value["traceEvents"].is_array());
    }

    #[test]
    fn cluster_steps_get_per_rank_threads() {
        let events = vec![
            ev(
                100,
                1,
                0,
                EventKind::ClusterStep {
                    rank: 0,
                    step: 0,
                    start_ns: 0,
                    end_ns: 100,
                    energy_j: 1.0,
                },
            ),
            ev(
                100,
                2,
                1,
                EventKind::ClusterStep {
                    rank: 3,
                    step: 0,
                    start_ns: 0,
                    end_ns: 100,
                    energy_j: 1.0,
                },
            ),
        ];
        let trace = ChromeTrace::from_events(&events);
        let tids: Vec<u64> = trace
            .payload_events()
            .filter(|e| e.pid == PID_VIRTUAL && e.ph == "X")
            .map(|e| e.tid)
            .collect();
        assert_eq!(tids, vec![100, 103]);
        assert!(trace
            .trace_events
            .iter()
            .any(|e| e.ph == "M" && e.name == "thread_name" && e.args["name"] == "rank 3"));
    }
}
