//! Exposition: turn a [`MetricsSnapshot`] into scrape-ready text.
//!
//! Two formats:
//!
//! * **JSON** — `serde_json` over the snapshot struct. Field order is
//!   fixed by the struct definitions and every collection is sorted by
//!   `(name, labels)`, so identical state serializes identically.
//! * **OpenMetrics / Prometheus text** — [`render_openmetrics`], a
//!   deterministic renderer: metrics ordered by name, label pairs by
//!   key, `# TYPE` line per metric family, histogram families expanded
//!   into cumulative `_bucket{le=...}` / `_sum` / `_count` series, the
//!   cost rollup as derived gauges, terminated by `# EOF`. The output
//!   is byte-stable for a given snapshot and golden-tested.
//!
//! Grammar subset emitted (one sample per line):
//!
//! ```text
//! exposition   = *(family) "# EOF\n"
//! family       = "# TYPE " name " " ("counter"|"gauge"|"histogram") "\n" *(sample)
//! sample       = name [labels] " " value "\n"
//! labels       = "{" pair *("," pair) "}"
//! pair         = key "=\"" escaped "\""
//! ```

use crate::metrics::{HistogramValues, MetricsSnapshot, Sample};

/// Render the snapshot as deterministic OpenMetrics text.
pub fn render_openmetrics(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    scalar_families(&mut out, &snap.counters, "counter");
    scalar_families(&mut out, &snap.gauges, "gauge");

    for (name, group) in group_by_name(&snap.histograms, |h| &h.name) {
        push_type(&mut out, name, "histogram");
        for h in group {
            render_histogram(&mut out, name, &h.labels, &h.values);
        }
    }

    // Derived cost/uptime gauges, after the registry-backed families so
    // they cannot interleave with a registered metric of the same name.
    for (name, value) in [
        ("synergy_uptime_seconds", snap.uptime_s),
        ("synergy_cost_node_seconds", snap.cost.node_seconds),
        ("synergy_cost_usd_per_kwh", snap.cost.usd_per_kwh),
        ("synergy_cost_energy_joules", snap.cost.total_joules),
        ("synergy_cost_energy_kwh", snap.cost.kwh),
        ("synergy_cost_tco_usd", snap.cost.tco_usd),
    ] {
        push_type(&mut out, name, "gauge");
        out.push_str(name);
        out.push(' ');
        push_value(&mut out, value);
        out.push('\n');
    }

    out.push_str("# EOF\n");
    out
}

fn scalar_families(out: &mut String, samples: &[Sample], kind: &str) {
    for (name, group) in group_by_name(samples, |s| &s.name) {
        push_type(out, name, kind);
        for s in group {
            out.push_str(name);
            push_labels(out, &s.labels, None);
            out.push(' ');
            push_value(out, s.value);
            out.push('\n');
        }
    }
}

fn render_histogram(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    values: &HistogramValues,
) {
    let mut cumulative = 0u64;
    for &(idx, n) in &values.buckets {
        cumulative += n;
        let le = match HistogramValues::upper_bound_s(idx) {
            Some(b) => fmt_value(b),
            None => "+Inf".to_string(),
        };
        out.push_str(name);
        out.push_str("_bucket");
        push_labels(out, labels, Some(&le));
        out.push(' ');
        out.push_str(&cumulative.to_string());
        out.push('\n');
    }
    // The mandatory +Inf bucket (skip if the sparse list ended on it).
    if values
        .buckets
        .last()
        .is_none_or(|&(idx, _)| HistogramValues::upper_bound_s(idx).is_some())
    {
        out.push_str(name);
        out.push_str("_bucket");
        push_labels(out, labels, Some("+Inf"));
        out.push(' ');
        out.push_str(&values.count.to_string());
        out.push('\n');
    }
    out.push_str(name);
    out.push_str("_sum");
    push_labels(out, labels, None);
    out.push(' ');
    push_value(out, values.sum_ns as f64 / 1e9);
    out.push('\n');
    out.push_str(name);
    out.push_str("_count");
    push_labels(out, labels, None);
    out.push(' ');
    out.push_str(&values.count.to_string());
    out.push('\n');
}

/// Iterate contiguous runs sharing a name (inputs are already sorted).
fn group_by_name<T>(items: &[T], name: impl Fn(&T) -> &String) -> Vec<(&str, &[T])> {
    let mut groups = Vec::new();
    let mut start = 0;
    while start < items.len() {
        let n = name(&items[start]);
        let mut end = start + 1;
        while end < items.len() && name(&items[end]) == n {
            end += 1;
        }
        groups.push((n.as_str(), &items[start..end]));
        start = end;
    }
    groups
}

fn push_type(out: &mut String, name: &str, kind: &str) {
    out.push_str("# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
}

fn push_labels(out: &mut String, labels: &[(String, String)], le: Option<&str>) {
    if labels.is_empty() && le.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        push_escaped(out, v);
        out.push('"');
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        out.push_str("le=\"");
        out.push_str(le);
        out.push('"');
    }
    out.push('}');
}

fn push_escaped(out: &mut String, v: &str) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
}

/// Shortest-roundtrip float rendering, with integral values kept
/// integral-looking plus `.0` stripped off — `12`, `0.25`, `1e-9`-free.
fn fmt_value(v: f64) -> String {
    let s = format!("{v}");
    s.strip_suffix(".0").map(str::to_string).unwrap_or(s)
}

fn push_value(out: &mut String, v: f64) {
    out.push_str(&fmt_value(v));
}

/// Encode the snapshot as a JSON string (the `Request::Metrics` wire
/// payload and the `experiments/metrics_final.json` artifact body).
pub fn snapshot_to_json(snap: &MetricsSnapshot) -> String {
    serde_json::to_string(snap).expect("snapshot serializes")
}

/// Decode a snapshot from its JSON form (the client side of the wire).
pub fn snapshot_from_json(text: &str) -> Result<MetricsSnapshot, String> {
    serde_json::from_str(text).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;

    #[test]
    fn renders_types_sorted_and_terminated() {
        let m = Metrics::enabled();
        m.counter("b_total", &[("kind", "x")]).add(2);
        m.counter("a_total", &[]).inc();
        m.gauge("depth", &[]).set(5);
        let text = render_openmetrics(&m.snapshot());
        let a = text.find("# TYPE a_total counter").expect("a family");
        let b = text.find("# TYPE b_total counter").expect("b family");
        assert!(a < b, "families must be name-sorted");
        assert!(text.contains("b_total{kind=\"x\"} 2\n"));
        assert!(text.contains("a_total 1\n"));
        assert!(text.contains("# TYPE depth gauge\ndepth 5\n"));
        assert!(text.ends_with("# EOF\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_with_inf() {
        let m = Metrics::enabled();
        let h = m.histogram("lat_seconds", &[("kind", "ping")]);
        h.observe_ns(5); // exact unit bucket
        h.observe_ns(5);
        h.observe_ns(1_000_000); // 1ms
        let text = render_openmetrics(&m.snapshot());
        assert!(
            text.contains("lat_seconds_bucket{kind=\"ping\",le=\"+Inf\"} 3\n"),
            "missing +Inf bucket in:\n{text}"
        );
        assert!(text.contains("lat_seconds_count{kind=\"ping\"} 3\n"));
        // First populated bucket holds the two 5ns samples.
        assert!(text.contains("le=\"0.000000006\"} 2\n"), "got:\n{text}");
    }

    #[test]
    fn label_values_are_escaped() {
        let m = Metrics::enabled();
        m.counter("c_total", &[("k", "a\"b\\c\nd")]).inc();
        let text = render_openmetrics(&m.snapshot());
        assert!(text.contains("c_total{k=\"a\\\"b\\\\c\\nd\"} 1\n"));
    }

    #[test]
    fn json_roundtrip_preserves_snapshot() {
        let m = Metrics::enabled();
        m.counter("x_total", &[]).add(3);
        m.histogram("h_seconds", &[]).observe_ns(1234);
        m.add_energy_joules("v100", 2.5);
        let snap = m.snapshot();
        let back = snapshot_from_json(&snapshot_to_json(&snap)).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn value_formatting_is_stable() {
        assert_eq!(fmt_value(12.0), "12");
        assert_eq!(fmt_value(0.25), "0.25");
        assert_eq!(fmt_value(0.000000006), "0.000000006");
    }
}
