//! Counters, histograms and the aggregated [`TelemetrySummary`].
//!
//! The summary is *derived from the event stream* — every total is the
//! fold of the corresponding per-event values, so tests can assert the
//! aggregation exactly against independent sums over the drained events.

use crate::event::{CacheOp, EventKind, ServeOp, TelemetryEvent};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Decade exponents covered by the energy histogram: 1 nJ .. 1 kJ.
const HIST_MIN_EXP: i32 = -9;
const HIST_MAX_EXP: i32 = 3;

/// A fixed decade-bucketed histogram for positive physical quantities
/// (per-kernel energy in joules). Bucket `i` counts values in
/// `[10^(i-9), 10^(i-8))`; out-of-range values clamp to the end buckets.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    /// Counts per decade bucket, lowest decade first.
    pub counts: Vec<u64>,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            counts: vec![0; (HIST_MAX_EXP - HIST_MIN_EXP + 1) as usize],
        }
    }
}

impl Histogram {
    /// Record one observation (non-positive values clamp to the lowest
    /// bucket).
    pub fn observe(&mut self, value: f64) {
        let exp = if value > 0.0 {
            (value.log10().floor() as i32).clamp(HIST_MIN_EXP, HIST_MAX_EXP)
        } else {
            HIST_MIN_EXP
        };
        self.counts[(exp - HIST_MIN_EXP) as usize] += 1;
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `(lower bound, count)` for every non-empty bucket.
    pub fn nonzero_buckets(&self) -> Vec<(f64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (10f64.powi(i as i32 + HIST_MIN_EXP), c))
            .collect()
    }
}

/// Totals for one compile-pipeline phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseTotals {
    /// Number of `PhaseEnd` events.
    pub count: u64,
    /// Summed wall-clock time, ns.
    pub wall_ns: u64,
    /// Summed work items (sweep points, kernels, samples).
    pub items: u64,
}

impl PhaseTotals {
    /// Items per second of wall time (0 when no time was recorded).
    pub fn throughput_per_s(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.items as f64 / (self.wall_ns as f64 * 1e-9)
        }
    }
}

/// Aggregated view of one recorded session, derived entirely from the
/// event stream.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySummary {
    /// Events aggregated.
    pub events: u64,
    /// Events lost to ring overflow before aggregation.
    pub dropped: u64,

    /// Kernel submissions observed.
    pub kernel_submits: u64,
    /// Kernel completions observed.
    pub kernels: u64,
    /// Summed exact kernel energy, joules.
    pub kernel_energy_j: f64,
    /// Summed kernel wall (virtual) time, ns.
    pub kernel_time_ns: u64,
    /// Per-kernel energy distribution (decade buckets, 1 nJ .. 1 kJ).
    pub kernel_energy_hist: Histogram,

    /// Clock-change requests observed.
    pub clock_changes: u64,
    /// Clock-change requests that failed.
    pub clock_change_failures: u64,
    /// Summed virtual latency paid for clock changes, ns.
    pub clock_change_latency_ns: u64,

    /// Profiler measurement windows completed.
    pub profiler_windows: u64,
    /// Summed poll iterations across windows.
    pub poll_iterations: u64,
    /// Summed power samples integrated.
    pub power_samples: u64,
    /// Summed measured (sampled) energy, joules.
    pub measured_energy_j: f64,
    /// Summed ground-truth energy over the same windows, joules.
    pub exact_energy_j: f64,

    /// HAL management calls observed.
    pub hal_calls: u64,
    /// HAL calls that failed.
    pub hal_failures: u64,

    /// Model-cache lookups served from memory.
    pub cache_memory_hits: u64,
    /// Model-cache lookups served from disk.
    pub cache_disk_hits: u64,
    /// Model-cache lookups that trained from scratch.
    pub cache_misses: u64,
    /// Model bundles persisted to disk.
    pub cache_persists: u64,

    /// Per-phase pipeline totals, keyed by phase name.
    pub phases: BTreeMap<String, PhaseTotals>,

    /// Cluster steps observed (rank × timestep).
    pub cluster_steps: u64,
    /// Distinct cluster ranks seen.
    pub cluster_ranks: u64,
    /// Summed per-step rank energy, joules.
    pub cluster_energy_j: f64,

    /// Daemon connections accepted.
    pub serve_connections: u64,
    /// Daemon requests admitted to the work queue.
    pub serve_enqueued: u64,
    /// Daemon requests dispatched to a worker.
    pub serve_dispatched: u64,
    /// Daemon responses written back.
    pub serve_responses: u64,
    /// Daemon requests rejected at admission (`Busy`).
    pub serve_busy: u64,
    /// Daemon requests that joined an in-flight identical computation.
    pub serve_coalesced: u64,
    /// Daemon requests whose deadline expired in the queue.
    pub serve_expired: u64,
    /// Daemon connections released (EOF, error, or protocol violation).
    pub serve_disconnects: u64,
    /// Highest bounded-queue depth observed on any serve event.
    pub serve_queue_depth_max: u64,

    /// Batched model-inference calls observed.
    pub predict_batches: u64,
    /// Summed input rows across all batched inference calls.
    pub predict_rows: u64,
    /// Summed wall-clock time of batched inference calls, ns.
    pub predict_wall_ns: u64,
    /// Largest single inference batch seen, in rows.
    pub predict_rows_max: u64,

    /// Annotations attached (diagnostics etc.).
    pub annotations: u64,
}

impl TelemetrySummary {
    /// Fold an event stream into totals. `dropped` is carried through from
    /// the recorder so readers know when totals are partial.
    pub fn from_events(events: &[TelemetryEvent], dropped: u64) -> TelemetrySummary {
        let mut s = TelemetrySummary {
            events: events.len() as u64,
            dropped,
            ..TelemetrySummary::default()
        };
        let mut ranks = std::collections::BTreeSet::new();
        for ev in events {
            match &ev.kind {
                EventKind::KernelSubmit { .. } => s.kernel_submits += 1,
                EventKind::KernelRun {
                    start_ns,
                    end_ns,
                    energy_j,
                    ..
                } => {
                    s.kernels += 1;
                    s.kernel_energy_j += energy_j;
                    s.kernel_time_ns += end_ns - start_ns;
                    s.kernel_energy_hist.observe(*energy_j);
                }
                EventKind::ClockChange {
                    latency_ns, ok, ..
                } => {
                    s.clock_changes += 1;
                    if !ok {
                        s.clock_change_failures += 1;
                    }
                    s.clock_change_latency_ns += latency_ns;
                }
                EventKind::ProfilerWindow {
                    polls,
                    samples,
                    measured_j,
                    exact_j,
                    ..
                } => {
                    s.profiler_windows += 1;
                    s.poll_iterations += polls;
                    s.power_samples += samples;
                    s.measured_energy_j += measured_j;
                    s.exact_energy_j += exact_j;
                }
                EventKind::HalCall { ok, .. } => {
                    s.hal_calls += 1;
                    if !ok {
                        s.hal_failures += 1;
                    }
                }
                EventKind::ModelCache { op, .. } => match op {
                    CacheOp::MemoryHit => s.cache_memory_hits += 1,
                    CacheOp::DiskHit => s.cache_disk_hits += 1,
                    CacheOp::Miss => s.cache_misses += 1,
                    CacheOp::Persist => s.cache_persists += 1,
                },
                EventKind::PhaseEnd {
                    phase,
                    wall_dur_ns,
                    items,
                    ..
                } => {
                    let t = s.phases.entry(phase.name().to_string()).or_default();
                    t.count += 1;
                    t.wall_ns += wall_dur_ns;
                    t.items += items;
                }
                EventKind::ClusterStep {
                    rank, energy_j, ..
                } => {
                    s.cluster_steps += 1;
                    ranks.insert(*rank);
                    s.cluster_energy_j += energy_j;
                }
                EventKind::Serve {
                    op, queue_depth, ..
                } => {
                    match op {
                        ServeOp::Accept => s.serve_connections += 1,
                        ServeOp::Enqueue => s.serve_enqueued += 1,
                        ServeOp::Dispatch => s.serve_dispatched += 1,
                        ServeOp::Respond => s.serve_responses += 1,
                        ServeOp::Busy => s.serve_busy += 1,
                        ServeOp::CoalesceJoin => s.serve_coalesced += 1,
                        ServeOp::Expire => s.serve_expired += 1,
                        ServeOp::Disconnect => s.serve_disconnects += 1,
                        ServeOp::Drain => {}
                    }
                    s.serve_queue_depth_max = s.serve_queue_depth_max.max(*queue_depth);
                }
                EventKind::PredictBatch {
                    rows, wall_dur_ns, ..
                } => {
                    s.predict_batches += 1;
                    s.predict_rows += rows;
                    s.predict_wall_ns += wall_dur_ns;
                    s.predict_rows_max = s.predict_rows_max.max(*rows);
                }
                EventKind::Annotation { .. } => s.annotations += 1,
            }
        }
        s.cluster_ranks = ranks.len() as u64;
        s
    }

    /// Cache hit ratio over all lookups (hits / (hits + misses)); 0 when
    /// no lookup happened.
    pub fn cache_hit_ratio(&self) -> f64 {
        let hits = self.cache_memory_hits + self.cache_disk_hits;
        let total = hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Mean profiler measurement error versus ground truth (relative), 0
    /// when nothing was profiled or the exact energy is 0.
    pub fn profiler_relative_error(&self) -> f64 {
        if self.exact_energy_j == 0.0 {
            0.0
        } else {
            ((self.measured_energy_j - self.exact_energy_j) / self.exact_energy_j).abs()
        }
    }

    /// Fraction of the recorded session lost to ring overflow:
    /// `dropped / (events + dropped)`, 0 when nothing was recorded.
    /// Nonzero means every total in this summary is a lower bound.
    pub fn drop_ratio(&self) -> f64 {
        let seen = self.events + self.dropped;
        if seen == 0 {
            0.0
        } else {
            self.dropped as f64 / seen as f64
        }
    }

    /// Predicted rows per second of wall time across all batched
    /// inference calls (0 when no time was recorded).
    pub fn predict_rows_per_s(&self) -> f64 {
        if self.predict_wall_ns == 0 {
            0.0
        } else {
            self.predict_rows as f64 / (self.predict_wall_ns as f64 * 1e-9)
        }
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "telemetry summary ({} events, {} dropped)", self.events, self.dropped);
        if self.dropped > 0 {
            let _ = writeln!(
                out,
                "  WARNING:      {} events lost to ring overflow ({:.1}% of the session) — every total below is a lower bound",
                self.dropped,
                self.drop_ratio() * 100.0
            );
        }
        let _ = writeln!(
            out,
            "  kernels:      {} completed / {} submitted, {:.6} J, {:.3} ms device time",
            self.kernels,
            self.kernel_submits,
            self.kernel_energy_j,
            self.kernel_time_ns as f64 * 1e-6
        );
        for (lo, count) in self.kernel_energy_hist.nonzero_buckets() {
            let _ = writeln!(out, "    energy [{lo:>9.0e} J, ×10): {count}");
        }
        let _ = writeln!(
            out,
            "  clock sets:   {} ({} failed), {:.3} ms virtual latency",
            self.clock_changes,
            self.clock_change_failures,
            self.clock_change_latency_ns as f64 * 1e-6
        );
        let _ = writeln!(
            out,
            "  profiler:     {} windows, {} polls, {} samples, measured {:.6} J vs exact {:.6} J ({:.2}% err)",
            self.profiler_windows,
            self.poll_iterations,
            self.power_samples,
            self.measured_energy_j,
            self.exact_energy_j,
            self.profiler_relative_error() * 100.0
        );
        let _ = writeln!(
            out,
            "  hal:          {} calls ({} failed)",
            self.hal_calls, self.hal_failures
        );
        let _ = writeln!(
            out,
            "  model cache:  {} mem + {} disk hits, {} misses, {} persists (hit ratio {:.2})",
            self.cache_memory_hits,
            self.cache_disk_hits,
            self.cache_misses,
            self.cache_persists,
            self.cache_hit_ratio()
        );
        for (name, t) in &self.phases {
            let _ = writeln!(
                out,
                "  phase {:<8} {} run(s), {:.3} ms wall, {} items ({:.0}/s)",
                format!("{name}:"),
                t.count,
                t.wall_ns as f64 * 1e-6,
                t.items,
                t.throughput_per_s()
            );
        }
        if self.cluster_steps > 0 {
            let _ = writeln!(
                out,
                "  cluster:      {} steps over {} ranks, {:.3} J",
                self.cluster_steps, self.cluster_ranks, self.cluster_energy_j
            );
        }
        if self.serve_enqueued + self.serve_busy + self.serve_connections > 0 {
            let _ = writeln!(
                out,
                "  serve:        {} conns ({} closed), {} enqueued, {} responded, {} busy, {} coalesced, {} expired (queue peak {})",
                self.serve_connections,
                self.serve_disconnects,
                self.serve_enqueued,
                self.serve_responses,
                self.serve_busy,
                self.serve_coalesced,
                self.serve_expired,
                self.serve_queue_depth_max
            );
        }
        if self.predict_batches > 0 {
            let _ = writeln!(
                out,
                "  predict:      {} batches, {} rows (max {}/batch), {:.3} ms wall ({:.0} rows/s)",
                self.predict_batches,
                self.predict_rows,
                self.predict_rows_max,
                self.predict_wall_ns as f64 * 1e-6,
                self.predict_rows_per_s()
            );
        }
        if self.annotations > 0 {
            let _ = writeln!(out, "  annotations:  {}", self.annotations);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Clocks, Phase};

    fn ev(ts: u64, seq: u64, kind: EventKind) -> TelemetryEvent {
        TelemetryEvent {
            ts_virtual_ns: ts,
            ts_wall_ns: ts,
            seq,
            kind,
        }
    }

    fn sample_events() -> Vec<TelemetryEvent> {
        vec![
            ev(
                0,
                0,
                EventKind::KernelSubmit {
                    kernel: "k".into(),
                    work_items: 64,
                },
            ),
            ev(
                10,
                1,
                EventKind::ClockChange {
                    from: Clocks::new(877, 1312),
                    to: Clocks::new(877, 900),
                    latency_ns: 15_000,
                    ok: true,
                    error: None,
                },
            ),
            ev(
                20,
                2,
                EventKind::KernelRun {
                    kernel: "k".into(),
                    start_ns: 20,
                    end_ns: 1020,
                    energy_j: 2.5,
                    clocks: Clocks::new(877, 900),
                },
            ),
            ev(
                1020,
                3,
                EventKind::ProfilerWindow {
                    kernel: "k".into(),
                    start_ns: 20,
                    end_ns: 1020,
                    polls: 7,
                    samples: 4,
                    measured_j: 2.4,
                    exact_j: 2.5,
                    poll_interval_ns: 50_000,
                    poll_cadence_ns: 52_000,
                },
            ),
            ev(
                1020,
                4,
                EventKind::HalCall {
                    api: "set_clocks".into(),
                    caller: "root".into(),
                    ok: false,
                },
            ),
            ev(
                0,
                5,
                EventKind::ModelCache {
                    op: CacheOp::Miss,
                    key: "abc".into(),
                },
            ),
            ev(
                0,
                6,
                EventKind::ModelCache {
                    op: CacheOp::MemoryHit,
                    key: "abc".into(),
                },
            ),
            ev(
                0,
                7,
                EventKind::PhaseEnd {
                    phase: Phase::Sweep,
                    wall_dur_ns: 2_000_000,
                    items: 1000,
                    detail: "v100".into(),
                },
            ),
            ev(
                500,
                8,
                EventKind::ClusterStep {
                    rank: 3,
                    step: 0,
                    start_ns: 0,
                    end_ns: 500,
                    energy_j: 1.5,
                },
            ),
            ev(
                0,
                9,
                EventKind::Annotation {
                    code: "IR001".into(),
                    level: "warn".into(),
                    message: "m".into(),
                },
            ),
            ev(
                0,
                10,
                EventKind::Serve {
                    op: ServeOp::Enqueue,
                    conn: 1,
                    req: 1,
                    detail: "compile".into(),
                    queue_depth: 3,
                },
            ),
            ev(
                0,
                11,
                EventKind::Serve {
                    op: ServeOp::CoalesceJoin,
                    conn: 2,
                    req: 1,
                    detail: "compile".into(),
                    queue_depth: 1,
                },
            ),
            ev(
                0,
                12,
                EventKind::PredictBatch {
                    source: "compile".into(),
                    rows: 196,
                    wall_dur_ns: 500_000,
                },
            ),
            ev(
                0,
                13,
                EventKind::PredictBatch {
                    source: "predict".into(),
                    rows: 4,
                    wall_dur_ns: 500_000,
                },
            ),
        ]
    }

    #[test]
    fn totals_match_per_event_sums() {
        let events = sample_events();
        let s = TelemetrySummary::from_events(&events, 2);
        assert_eq!(s.events, events.len() as u64);
        assert_eq!(s.dropped, 2);
        assert_eq!((s.kernel_submits, s.kernels), (1, 1));
        assert_eq!(s.kernel_energy_j, 2.5);
        assert_eq!(s.kernel_time_ns, 1000);
        assert_eq!((s.clock_changes, s.clock_change_failures), (1, 0));
        assert_eq!(s.clock_change_latency_ns, 15_000);
        assert_eq!((s.profiler_windows, s.poll_iterations, s.power_samples), (1, 7, 4));
        assert_eq!((s.hal_calls, s.hal_failures), (1, 1));
        assert_eq!(
            (s.cache_memory_hits, s.cache_disk_hits, s.cache_misses, s.cache_persists),
            (1, 0, 1, 0)
        );
        assert_eq!(s.cache_hit_ratio(), 0.5);
        let sweep = &s.phases["sweep"];
        assert_eq!((sweep.count, sweep.items), (1, 1000));
        assert!((sweep.throughput_per_s() - 500_000.0).abs() < 1e-6);
        assert_eq!((s.cluster_steps, s.cluster_ranks), (1, 1));
        assert_eq!(s.annotations, 1);
        assert_eq!((s.serve_enqueued, s.serve_coalesced), (1, 1));
        assert_eq!(s.serve_queue_depth_max, 3);
        assert_eq!((s.predict_batches, s.predict_rows, s.predict_rows_max), (2, 200, 196));
        assert!((s.predict_rows_per_s() - 200_000.0).abs() < 1e-6);
        assert!((s.profiler_relative_error() - 0.04).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_by_decade() {
        let mut h = Histogram::default();
        h.observe(2.5); // 10^0 decade
        h.observe(0.03); // 10^-2
        h.observe(0.0); // clamps to lowest
        h.observe(1e9); // clamps to highest
        assert_eq!(h.total(), 4);
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets.len(), 4);
        assert_eq!(buckets[0].0, 1e-9);
        assert!(buckets.iter().any(|&(lo, c)| lo == 1.0 && c == 1));
        assert!(buckets.iter().any(|&(lo, c)| lo == 0.01 && c == 1));
        assert_eq!(buckets.last().unwrap().0, 1e3);
    }

    #[test]
    fn render_mentions_every_section() {
        let s = TelemetrySummary::from_events(&sample_events(), 0);
        let text = s.render();
        for needle in ["kernels:", "clock sets:", "profiler:", "hal:", "model cache:", "phase sweep:", "cluster:", "serve:", "predict:", "annotations:"] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
        assert!(
            !text.contains("WARNING:"),
            "no drop warning expected for a lossless session:\n{text}"
        );
    }

    #[test]
    fn render_warns_loudly_about_dropped_events() {
        let s = TelemetrySummary::from_events(&sample_events(), 14);
        let text = s.render();
        assert!(text.contains("WARNING:"), "missing drop warning:\n{text}");
        assert!(text.contains("14 events lost to ring overflow (50.0%"));
        assert_eq!(s.drop_ratio(), 0.5);
    }

    #[test]
    fn summary_serde_round_trips() {
        let s = TelemetrySummary::from_events(&sample_events(), 1);
        let json = serde_json::to_string(&s).unwrap();
        let back: TelemetrySummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn empty_stream_is_all_zero() {
        let s = TelemetrySummary::from_events(&[], 0);
        assert_eq!(s, TelemetrySummary::default());
        assert_eq!(s.cache_hit_ratio(), 0.0);
        assert_eq!(s.profiler_relative_error(), 0.0);
    }
}
