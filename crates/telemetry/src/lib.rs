//! # synergy-telemetry
//!
//! Structured tracing for the SYnergy stack. Every layer — queue worker,
//! asynchronous profiler, HAL, model store, compile pipeline, cluster
//! driver — records typed events into a shared, lock-light [`Recorder`];
//! on top sit an aggregated [`TelemetrySummary`] (counters + histograms)
//! and a Chrome trace-event exporter ([`ChromeTrace`]) whose output loads
//! directly into Perfetto with a deterministic virtual-time track and a
//! wall-clock track.
//!
//! Design constraints, in priority order:
//!
//! 1. **Zero-cost when disabled.** [`Recorder::disabled()`] is the
//!    default everywhere; a disabled record is one branch, and
//!    [`Recorder::record_with`] guarantees the event payload is never
//!    even constructed. The `telemetry` criterion bench and the
//!    `pipeline_perf` overhead column hold this to <2% on the warm
//!    compile pipeline.
//! 2. **Deterministic in virtual time.** Device-side events are stamped
//!    with the simulator's virtual nanosecond timeline, so two identical
//!    runs produce identical `(ts_virtual_ns, kind)` streams and trace
//!    snapshots are golden-testable. Wall-clock stamps ride along on a
//!    second track for host/device interleaving.
//! 3. **Bounded memory.** Shards are fixed-capacity rings with
//!    drop-oldest flight-recorder semantics; overflow is counted, never
//!    silently ignored.
//!
//! Alongside the event recorder sits the *live metrics plane*
//! ([`metrics`]): sharded lock-free counters/gauges and log-bucketed
//! latency histograms with the same zero-cost-when-disabled contract,
//! plus fleet cost rollups (joules → kWh → $) and the deterministic
//! OpenMetrics / JSON exposition renderers ([`expose`]) the
//! `synergy-serve` daemon scrapes from.
//!
//! This crate deliberately has no dependency on the rest of the
//! workspace (it defines its own [`Clocks`] mirror), so every other
//! crate can depend on it without cycles.

#![warn(missing_docs)]

mod chrome;
mod event;
pub mod expose;
pub mod metrics;
mod recorder;
mod summary;

pub use chrome::{ChromeEvent, ChromeTrace, PID_VIRTUAL, PID_WALL};
pub use event::{CacheOp, Clocks, EventKind, Phase, ServeOp, TelemetryEvent};
pub use metrics::{
    CostConfig, CostSnapshot, Counter, FloatCounter, Gauge, Histo, HistogramSample,
    HistogramValues, Labels, LogHistogram, Metrics, MetricsSnapshot, Sample,
};
pub use recorder::{Recorder, DEFAULT_SHARD_CAPACITY};
pub use summary::{Histogram, PhaseTotals, TelemetrySummary};
