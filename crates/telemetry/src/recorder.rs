//! The lock-light event recorder.
//!
//! A [`Recorder`] is a cheap cloneable handle shared by every instrumented
//! layer. Events land in one of a fixed set of shards — each thread hashes
//! to its own shard via a per-thread slot counter, so the per-shard
//! `parking_lot::Mutex` is effectively uncontended — and each shard is a
//! bounded ring that drops the oldest events once full (flight-recorder
//! semantics; the drop count is preserved for summaries).
//!
//! The default recorder is **disabled**: a `None` inner, so every record
//! call is a branch on a null check and nothing else — no timestamps, no
//! event construction (use [`Recorder::record_with`] so the payload
//! closure is never invoked), no allocation. The criterion bench in
//! `synergy-bench` holds this to <2% overhead on the warm compile
//! pipeline.

use crate::event::{EventKind, TelemetryEvent};
use crate::summary::TelemetrySummary;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Number of shards; threads hash onto these by arrival order.
const SHARDS: usize = 16;

/// Default per-shard ring capacity (events).
pub const DEFAULT_SHARD_CAPACITY: usize = 16_384;

static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Stable per-thread shard slot, assigned on first record.
    static THREAD_SLOT: usize = NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed);
}

struct Shard {
    ring: Mutex<VecDeque<TelemetryEvent>>,
}

struct Inner {
    start: Instant,
    seq: AtomicU64,
    dropped: AtomicU64,
    capacity: usize,
    shards: Vec<Shard>,
}

/// A shareable handle onto one telemetry buffer (or onto nothing at all,
/// for the zero-cost disabled default).
#[derive(Clone)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl Default for Recorder {
    /// The default recorder is disabled.
    fn default() -> Recorder {
        Recorder::disabled()
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "Recorder(disabled)"),
            Some(_) => write!(f, "Recorder(enabled, {} events)", self.len()),
        }
    }
}

impl Recorder {
    /// The no-op recorder: every call is a null-check and nothing else.
    pub fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// An enabled recorder with the default ring capacity.
    pub fn enabled() -> Recorder {
        Recorder::with_capacity(DEFAULT_SHARD_CAPACITY)
    }

    /// An enabled recorder holding up to `per_shard` events in each of its
    /// shards; older events are dropped (and counted) once a ring fills.
    pub fn with_capacity(per_shard: usize) -> Recorder {
        let capacity = per_shard.max(1);
        Recorder {
            inner: Some(Arc::new(Inner {
                start: Instant::now(),
                seq: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                capacity,
                shards: (0..SHARDS)
                    .map(|_| Shard {
                        ring: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
                    })
                    .collect(),
            })),
        }
    }

    /// Whether events are being captured.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Record an event at a virtual timestamp. Prefer
    /// [`Recorder::record_with`] at instrumentation sites so the payload
    /// is never built when the recorder is disabled.
    #[inline]
    pub fn record(&self, ts_virtual_ns: u64, kind: EventKind) {
        if let Some(inner) = &self.inner {
            inner.push(ts_virtual_ns, kind);
        }
    }

    /// Record an event whose payload is only constructed when the recorder
    /// is enabled — the zero-cost-when-disabled instrumentation primitive.
    #[inline]
    pub fn record_with(&self, ts_virtual_ns: u64, kind: impl FnOnce() -> EventKind) {
        if let Some(inner) = &self.inner {
            inner.push(ts_virtual_ns, kind());
        }
    }

    /// Number of buffered events (0 when disabled).
    pub fn len(&self) -> usize {
        self.inner
            .as_ref()
            .map_or(0, |i| i.shards.iter().map(|s| s.ring.lock().len()).sum())
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped to ring-buffer overflow so far.
    pub fn dropped(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.dropped.load(Ordering::Relaxed))
    }

    /// Copy out every buffered event, ordered by
    /// `(virtual timestamp, sequence)`. The buffer is left intact.
    pub fn snapshot(&self) -> Vec<TelemetryEvent> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut events: Vec<TelemetryEvent> = inner
            .shards
            .iter()
            .flat_map(|s| s.ring.lock().iter().cloned().collect::<Vec<_>>())
            .collect();
        events.sort_by_key(|e| (e.ts_virtual_ns, e.seq));
        events
    }

    /// Move out every buffered event (ordered as [`Recorder::snapshot`]),
    /// leaving the buffer empty. Drop counters are preserved.
    pub fn drain(&self) -> Vec<TelemetryEvent> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut events: Vec<TelemetryEvent> = inner
            .shards
            .iter()
            .flat_map(|s| std::mem::take(&mut *s.ring.lock()))
            .collect();
        events.sort_by_key(|e| (e.ts_virtual_ns, e.seq));
        events
    }

    /// Aggregate the buffered events into a [`TelemetrySummary`] without
    /// draining them.
    pub fn summary(&self) -> TelemetrySummary {
        TelemetrySummary::from_events(&self.snapshot(), self.dropped())
    }
}

impl Inner {
    fn push(&self, ts_virtual_ns: u64, kind: EventKind) {
        let event = TelemetryEvent {
            ts_virtual_ns,
            ts_wall_ns: self.start.elapsed().as_nanos() as u64,
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            kind,
        };
        let slot = THREAD_SLOT.with(|s| *s);
        let mut ring = self.shards[slot % SHARDS].ring.lock();
        if ring.len() >= self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Clocks;

    fn submit(kernel: &str) -> EventKind {
        EventKind::KernelSubmit {
            kernel: kernel.into(),
            work_items: 1,
        }
    }

    #[test]
    fn disabled_recorder_records_nothing_and_skips_payloads() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        let mut built = false;
        rec.record_with(0, || {
            built = true;
            submit("never")
        });
        assert!(!built, "payload closure must not run when disabled");
        rec.record(0, submit("direct"));
        assert!(rec.is_empty());
        assert!(rec.drain().is_empty());
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn default_is_disabled() {
        assert!(!Recorder::default().is_enabled());
    }

    #[test]
    fn events_come_back_ordered_by_virtual_time_then_seq() {
        let rec = Recorder::enabled();
        rec.record(50, submit("b"));
        rec.record(10, submit("a"));
        rec.record(50, submit("c"));
        let events = rec.drain();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].ts_virtual_ns, 10);
        // Equal virtual timestamps tie-break on record order.
        let names: Vec<&str> = events
            .iter()
            .map(|e| match &e.kind {
                EventKind::KernelSubmit { kernel, .. } => kernel.as_str(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(names, ["a", "b", "c"]);
        assert!(rec.is_empty(), "drain empties the buffer");
    }

    #[test]
    fn snapshot_keeps_the_buffer() {
        let rec = Recorder::enabled();
        rec.record(1, submit("k"));
        assert_eq!(rec.snapshot().len(), 1);
        assert_eq!(rec.len(), 1);
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let rec = Recorder::with_capacity(4);
        for i in 0..10u64 {
            rec.record(i, submit(&format!("k{i}")));
        }
        // One thread → one shard of capacity 4.
        let events = rec.drain();
        assert_eq!(events.len(), 4);
        assert_eq!(rec.dropped(), 6);
        assert_eq!(events[0].ts_virtual_ns, 6, "oldest events were dropped");
    }

    #[test]
    fn wall_timestamps_are_monotone_within_a_thread() {
        let rec = Recorder::enabled();
        for i in 0..100 {
            rec.record(i, submit("k"));
        }
        let events = rec.drain();
        assert!(events.windows(2).all(|w| w[0].ts_wall_ns <= w[1].ts_wall_ns));
    }

    #[test]
    fn concurrent_recording_loses_nothing_under_capacity() {
        let rec = Recorder::enabled();
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let rec = rec.clone();
                s.spawn(move || {
                    for i in 0..500u64 {
                        rec.record(t * 1000 + i, submit("k"));
                    }
                });
            }
        });
        assert_eq!(rec.len(), 8 * 500);
        assert_eq!(rec.dropped(), 0);
        let events = rec.drain();
        // Sequence numbers are unique.
        let mut seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), 8 * 500);
    }

    #[test]
    fn clones_share_one_buffer() {
        let rec = Recorder::enabled();
        let clone = rec.clone();
        clone.record(
            7,
            EventKind::ClockChange {
                from: Clocks::new(877, 1312),
                to: Clocks::new(877, 900),
                latency_ns: 15_000,
                ok: true,
                error: None,
            },
        );
        assert_eq!(rec.len(), 1);
    }
}
