//! Caller identity for privileged management calls.
//!
//! NVML restricts state-changing APIs to the root user unless the
//! API restriction has been lowered for a device
//! (`nvmlDeviceSetAPIRestriction`) — the exact mechanism the paper's SLURM
//! plugin toggles in its prologue/epilogue.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Who is making a management-library call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Caller {
    /// The root user (system daemons, the SLURM plugin).
    Root,
    /// An unprivileged user with the given uid.
    User(u32),
}

impl Caller {
    /// True for root.
    pub fn is_root(&self) -> bool {
        matches!(self, Caller::Root)
    }
}

impl fmt::Display for Caller {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Caller::Root => write!(f, "root"),
            Caller::User(uid) => write!(f, "uid {uid}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_detection() {
        assert!(Caller::Root.is_root());
        assert!(!Caller::User(1000).is_root());
    }

    #[test]
    fn display() {
        assert_eq!(Caller::Root.to_string(), "root");
        assert_eq!(Caller::User(42).to_string(), "uid 42");
    }
}
