//! The portable device-management layer.
//!
//! Section 2.1 of the paper observes that *"there is no common interface to
//! provide portable common functionality"* across vendor power libraries —
//! SYnergy's API is exactly that wrapper. [`DeviceManagement`] is the
//! narrow, vendor-neutral surface the runtime programs against; it is
//! implemented by dispatching onto the NVML or ROCm SMI analogue depending
//! on the board's vendor.

use crate::caller::Caller;
use crate::error::{HalError, HalResult};
use crate::nvml::{NvmlDevice, RestrictedApi};
use crate::rocm::{PerfLevel, RocmDevice};
use std::sync::Arc;
use synergy_sim::{ClockConfig, SimDevice, Vendor};

/// Vendor-portable management operations over one GPU board.
pub trait DeviceManagement: Send + Sync {
    /// Board name.
    fn name(&self) -> String;

    /// Supported memory clocks in MHz.
    fn supported_memory_clocks(&self) -> Vec<u32>;

    /// Supported core clocks in MHz (at the top memory clock).
    fn supported_core_clocks(&self) -> Vec<u32>;

    /// Pin the board to an exact (mem, core) clock pair.
    fn set_clocks(&self, caller: Caller, clocks: ClockConfig) -> HalResult<()>;

    /// Return the board to its default/auto clock behaviour.
    fn reset_clocks(&self, caller: Caller) -> HalResult<()>;

    /// Lower or restore the privilege requirement for clock control
    /// (root-only).
    fn set_restriction(&self, caller: Caller, restricted: bool) -> HalResult<()>;

    /// Whether clock control currently requires root.
    fn restricted(&self) -> bool;

    /// Instantaneous (sensor-smoothed) board power in watts.
    fn power_usage_w(&self) -> f64;

    /// Total energy since power-on in joules.
    fn total_energy_j(&self) -> f64;

    /// The raw simulated board (the runtime's executor needs it to submit
    /// work; a real implementation would hand back a CUDA/HIP context).
    fn raw(&self) -> &Arc<SimDevice>;
}

impl DeviceManagement for NvmlDevice {
    fn name(&self) -> String {
        NvmlDevice::name(self)
    }

    fn supported_memory_clocks(&self) -> Vec<u32> {
        NvmlDevice::supported_memory_clocks(self)
    }

    fn supported_core_clocks(&self) -> Vec<u32> {
        let mem = *self
            .supported_memory_clocks()
            .last()
            .expect("table is never empty");
        self.supported_graphics_clocks(mem)
            .expect("top mem clock is supported")
    }

    fn set_clocks(&self, caller: Caller, clocks: ClockConfig) -> HalResult<()> {
        self.set_application_clocks(caller, clocks)
    }

    fn reset_clocks(&self, caller: Caller) -> HalResult<()> {
        self.reset_application_clocks(caller)
    }

    fn set_restriction(&self, caller: Caller, restricted: bool) -> HalResult<()> {
        self.set_api_restriction(caller, RestrictedApi::SetApplicationClocks, restricted)
    }

    fn restricted(&self) -> bool {
        self.api_restricted()
    }

    fn power_usage_w(&self) -> f64 {
        NvmlDevice::power_usage_w(self)
    }

    fn total_energy_j(&self) -> f64 {
        self.total_energy_mj() * 1e-3
    }

    fn raw(&self) -> &Arc<SimDevice> {
        NvmlDevice::raw(self)
    }
}

impl DeviceManagement for RocmDevice {
    fn name(&self) -> String {
        RocmDevice::name(self)
    }

    fn supported_memory_clocks(&self) -> Vec<u32> {
        vec![self.mclk_mhz()]
    }

    fn supported_core_clocks(&self) -> Vec<u32> {
        self.supported_sclk()
    }

    fn set_clocks(&self, caller: Caller, clocks: ClockConfig) -> HalResult<()> {
        if clocks.mem_mhz != self.mclk_mhz() {
            return Err(HalError::UnsupportedClock(clocks));
        }
        self.set_perf_level(
            caller,
            PerfLevel::Manual {
                sclk_mhz: clocks.core_mhz,
            },
        )
    }

    fn reset_clocks(&self, caller: Caller) -> HalResult<()> {
        self.set_perf_level(caller, PerfLevel::Auto)
    }

    fn set_restriction(&self, caller: Caller, restricted: bool) -> HalResult<()> {
        RocmDevice::set_restriction(self, caller, restricted)
    }

    fn restricted(&self) -> bool {
        self.raw().api_restricted()
    }

    fn power_usage_w(&self) -> f64 {
        RocmDevice::power_usage_w(self)
    }

    fn total_energy_j(&self) -> f64 {
        self.total_energy_mj() * 1e-3
    }

    fn raw(&self) -> &Arc<SimDevice> {
        RocmDevice::raw(self)
    }
}

/// Open the vendor-appropriate management handle for a board — the
/// dispatch that makes the SYnergy API portable.
pub fn open_device(dev: Arc<SimDevice>) -> Arc<dyn DeviceManagement> {
    match dev.spec().vendor {
        Vendor::Nvidia => {
            Arc::new(NvmlDevice::new(dev).expect("vendor checked")) as Arc<dyn DeviceManagement>
        }
        Vendor::Amd => {
            Arc::new(RocmDevice::new(dev).expect("vendor checked")) as Arc<dyn DeviceManagement>
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synergy_sim::DeviceSpec;

    #[test]
    fn open_dispatches_by_vendor() {
        let nv = open_device(SimDevice::new(DeviceSpec::v100(), 0));
        assert_eq!(nv.name(), "NVIDIA V100");
        let amd = open_device(SimDevice::new(DeviceSpec::mi100(), 0));
        assert_eq!(amd.name(), "AMD MI100");
    }

    #[test]
    fn portable_surface_works_on_both_vendors() {
        for dev in [
            open_device(SimDevice::new(DeviceSpec::v100(), 0)),
            open_device(SimDevice::new(DeviceSpec::mi100(), 0)),
        ] {
            let mems = dev.supported_memory_clocks();
            let cores = dev.supported_core_clocks();
            assert!(!mems.is_empty() && !cores.is_empty());
            let cfg = ClockConfig::new(*mems.last().unwrap(), cores[0]);
            // Restricted: user denied, root allowed.
            assert_eq!(
                dev.set_clocks(Caller::User(1), cfg).unwrap_err(),
                HalError::NoPermission
            );
            dev.set_clocks(Caller::Root, cfg).unwrap();
            assert_eq!(dev.raw().effective_clocks(), cfg);
            dev.reset_clocks(Caller::Root).unwrap();
            assert!(dev.restricted());
            dev.set_restriction(Caller::Root, false).unwrap();
            dev.set_clocks(Caller::User(1), cfg).unwrap();
            assert!(dev.power_usage_w() >= 0.0);
            assert!(dev.total_energy_j() >= 0.0);
        }
    }

    #[test]
    fn rocm_rejects_foreign_mem_clock() {
        let amd = open_device(SimDevice::new(DeviceSpec::mi100(), 0));
        let err = amd
            .set_clocks(Caller::Root, ClockConfig::new(877, 1502))
            .unwrap_err();
        assert!(matches!(err, HalError::UnsupportedClock(_)));
    }
}
