//! Telemetry instrumentation over the portable management layer.
//!
//! [`InstrumentedManagement`] decorates any [`DeviceManagement`] handle
//! and records one [`EventKind::HalCall`] per state-changing call
//! (`set_clocks`, `reset_clocks`, `set_restriction`) with the caller
//! identity and the outcome — the vendor-library traffic a production
//! deployment would see in its NVML/SMI audit logs. Sensor reads are not
//! recorded: they are high-frequency and carry no decision.
//!
//! The wrapper is only worth paying for when a recorder is live;
//! [`InstrumentedManagement::wrap`] returns the inner handle untouched
//! for a disabled recorder, so the default path stays one virtual call.

use crate::caller::Caller;
use crate::error::HalResult;
use crate::mgmt::DeviceManagement;
use std::sync::Arc;
use synergy_sim::{ClockConfig, SimDevice};
use synergy_telemetry::{EventKind, Recorder};

/// A [`DeviceManagement`] decorator that records every state-changing
/// management call into a telemetry [`Recorder`].
pub struct InstrumentedManagement {
    inner: Arc<dyn DeviceManagement>,
    recorder: Recorder,
}

impl InstrumentedManagement {
    /// Decorate `inner`, recording management calls into `recorder`.
    pub fn new(inner: Arc<dyn DeviceManagement>, recorder: Recorder) -> InstrumentedManagement {
        InstrumentedManagement { inner, recorder }
    }

    /// Decorate `inner` only when `recorder` is enabled; a disabled
    /// recorder returns `inner` unchanged (zero overhead).
    pub fn wrap(
        inner: Arc<dyn DeviceManagement>,
        recorder: Recorder,
    ) -> Arc<dyn DeviceManagement> {
        if recorder.is_enabled() {
            Arc::new(InstrumentedManagement::new(inner, recorder))
        } else {
            inner
        }
    }

    fn record(&self, api: &'static str, caller: Caller, ok: bool) {
        self.recorder
            .record_with(self.inner.raw().now_ns(), || EventKind::HalCall {
                api: api.to_string(),
                caller: caller.to_string(),
                ok,
            });
    }
}

impl DeviceManagement for InstrumentedManagement {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn supported_memory_clocks(&self) -> Vec<u32> {
        self.inner.supported_memory_clocks()
    }

    fn supported_core_clocks(&self) -> Vec<u32> {
        self.inner.supported_core_clocks()
    }

    fn set_clocks(&self, caller: Caller, clocks: ClockConfig) -> HalResult<()> {
        let result = self.inner.set_clocks(caller, clocks);
        self.record("set_clocks", caller, result.is_ok());
        result
    }

    fn reset_clocks(&self, caller: Caller) -> HalResult<()> {
        let result = self.inner.reset_clocks(caller);
        self.record("reset_clocks", caller, result.is_ok());
        result
    }

    fn set_restriction(&self, caller: Caller, restricted: bool) -> HalResult<()> {
        let result = self.inner.set_restriction(caller, restricted);
        self.record("set_restriction", caller, result.is_ok());
        result
    }

    fn restricted(&self) -> bool {
        self.inner.restricted()
    }

    fn power_usage_w(&self) -> f64 {
        self.inner.power_usage_w()
    }

    fn total_energy_j(&self) -> f64 {
        self.inner.total_energy_j()
    }

    fn raw(&self) -> &Arc<SimDevice> {
        self.inner.raw()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mgmt::open_device;
    use synergy_sim::DeviceSpec;

    #[test]
    fn wrap_is_identity_for_disabled_recorders() {
        let inner = open_device(SimDevice::new(DeviceSpec::v100(), 0));
        let wrapped = InstrumentedManagement::wrap(Arc::clone(&inner), Recorder::disabled());
        assert!(Arc::ptr_eq(&wrapped, &inner));
    }

    #[test]
    fn calls_are_recorded_with_caller_and_outcome() {
        let rec = Recorder::enabled();
        let dev = InstrumentedManagement::wrap(
            open_device(SimDevice::new(DeviceSpec::v100(), 0)),
            rec.clone(),
        );
        // Restricted device: the user call fails, the root calls succeed.
        let cfg = ClockConfig::new(877, dev.supported_core_clocks()[0]);
        let _ = dev.set_clocks(Caller::User(1000), cfg);
        dev.set_clocks(Caller::Root, cfg).unwrap();
        dev.reset_clocks(Caller::Root).unwrap();
        dev.set_restriction(Caller::Root, false).unwrap();
        // Sensor reads must not generate events.
        let _ = dev.power_usage_w();
        let _ = dev.total_energy_j();

        let events = rec.drain();
        assert_eq!(events.len(), 4);
        let calls: Vec<(String, String, bool)> = events
            .iter()
            .map(|e| match &e.kind {
                EventKind::HalCall { api, caller, ok } => {
                    (api.clone(), caller.clone(), *ok)
                }
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        assert_eq!(calls[0], ("set_clocks".into(), "uid 1000".into(), false));
        assert_eq!(calls[1], ("set_clocks".into(), "root".into(), true));
        assert_eq!(calls[2], ("reset_clocks".into(), "root".into(), true));
        assert_eq!(calls[3], ("set_restriction".into(), "root".into(), true));
        // Virtual timestamps follow the device timeline (clock changes
        // cost virtual time).
        assert!(events.windows(2).all(|w| w[0].ts_virtual_ns <= w[1].ts_virtual_ns));
    }

    #[test]
    fn summary_counts_hal_failures() {
        let rec = Recorder::enabled();
        let dev = InstrumentedManagement::wrap(
            open_device(SimDevice::new(DeviceSpec::mi100(), 0)),
            rec.clone(),
        );
        let cfg = ClockConfig::new(1200, dev.supported_core_clocks()[0]);
        let _ = dev.set_clocks(Caller::User(7), cfg); // restricted → fails
        dev.set_clocks(Caller::Root, cfg).unwrap();
        let s = rec.summary();
        assert_eq!((s.hal_calls, s.hal_failures), (2, 1));
    }
}
