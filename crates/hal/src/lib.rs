//! # synergy-hal
//!
//! Vendor management-library analogues over the GPU simulator: an NVML
//! surface (application clocks, API restrictions, locked clocks, power and
//! energy counters) for NVIDIA boards, a ROCm SMI surface (performance
//! levels, sclk pinning) for AMD boards, and the vendor-portable
//! [`DeviceManagement`] layer that the SYnergy runtime programs against.
//!
//! Privilege semantics follow the paper's Section 7: state-changing calls
//! are root-only by default; `nvmlDeviceSetAPIRestriction` (root-only)
//! lowers the requirement per board, which is exactly what the SLURM
//! plugin toggles in its prologue and epilogue.

#![warn(missing_docs)]

pub mod caller;
pub mod error;
pub mod mgmt;
pub mod nvml;
pub mod rocm;
pub mod trace;

pub use caller::Caller;
pub use error::{HalError, HalResult};
pub use mgmt::{open_device, DeviceManagement};
pub use nvml::{Nvml, NvmlDevice, RestrictedApi};
pub use rocm::{PerfLevel, RocmDevice, RocmSmi};
pub use trace::InstrumentedManagement;

#[cfg(test)]
mod proptests {
    use crate::caller::Caller;
    use crate::mgmt::{open_device, DeviceManagement};
    use crate::HalError;
    use proptest::prelude::*;
    use std::sync::Arc;
    use synergy_sim::{ClockConfig, DeviceSpec, SimDevice};

    /// One step of a management-call fuzz sequence.
    #[derive(Debug, Clone)]
    enum Op {
        SetClocks { as_root: bool, core_idx: usize },
        ResetClocks { as_root: bool },
        Restrict { as_root: bool, restricted: bool },
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            (any::<bool>(), 0usize..200).prop_map(|(as_root, core_idx)| Op::SetClocks {
                as_root,
                core_idx
            }),
            any::<bool>().prop_map(|as_root| Op::ResetClocks { as_root }),
            (any::<bool>(), any::<bool>()).prop_map(|(as_root, restricted)| Op::Restrict {
                as_root,
                restricted
            }),
        ]
    }

    fn caller(as_root: bool) -> Caller {
        if as_root {
            Caller::Root
        } else {
            Caller::User(1000)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Permission invariant: across any call sequence, an unprivileged
        /// caller only ever changes clocks while the device is
        /// unrestricted, and a restriction toggle only ever succeeds for
        /// root. Clocks always remain supported table entries.
        #[test]
        fn permission_invariants_hold(ops in prop::collection::vec(arb_op(), 1..40)) {
            let dev: Arc<dyn DeviceManagement> =
                open_device(SimDevice::new(DeviceSpec::v100(), 0));
            let table = dev.raw().spec().freq_table.clone();
            for op in ops {
                match op {
                    Op::SetClocks { as_root, core_idx } => {
                        let core = table.core_mhz[core_idx % table.core_mhz.len()];
                        let cfg = ClockConfig::new(877, core);
                        let restricted_before = dev.restricted();
                        let result = dev.set_clocks(caller(as_root), cfg);
                        if !as_root && restricted_before {
                            prop_assert_eq!(result.unwrap_err(), HalError::NoPermission);
                        } else {
                            prop_assert!(result.is_ok());
                        }
                    }
                    Op::ResetClocks { as_root } => {
                        let restricted_before = dev.restricted();
                        let result = dev.reset_clocks(caller(as_root));
                        if !as_root && restricted_before {
                            prop_assert!(result.is_err());
                        } else {
                            prop_assert!(result.is_ok());
                        }
                    }
                    Op::Restrict { as_root, restricted } => {
                        let result = dev.set_restriction(caller(as_root), restricted);
                        prop_assert_eq!(result.is_ok(), as_root);
                    }
                }
                // The device's effective clocks are always supported.
                let eff = dev.raw().effective_clocks();
                prop_assert!(table.supports(eff), "unsupported effective clocks {eff}");
            }
        }

        /// Sensor reads are always available and physically bounded, no
        /// matter what management calls happened.
        #[test]
        fn sensor_reads_always_sane(ops in prop::collection::vec(arb_op(), 0..20)) {
            let dev: Arc<dyn DeviceManagement> =
                open_device(SimDevice::new(DeviceSpec::mi100(), 0));
            for op in ops {
                match op {
                    Op::SetClocks { as_root, core_idx } => {
                        let table = &dev.raw().spec().freq_table;
                        let core = table.core_mhz[core_idx % table.core_mhz.len()];
                        let _ = dev.set_clocks(caller(as_root), ClockConfig::new(1200, core));
                    }
                    Op::ResetClocks { as_root } => {
                        let _ = dev.reset_clocks(caller(as_root));
                    }
                    Op::Restrict { as_root, restricted } => {
                        let _ = dev.set_restriction(caller(as_root), restricted);
                    }
                }
                dev.raw().advance_idle(1_000_000);
                let p = dev.power_usage_w();
                prop_assert!(p >= 0.0 && p <= dev.raw().spec().tdp_w * 1.05);
                prop_assert!(dev.total_energy_j() >= 0.0);
            }
        }
    }
}
