//! ROCm SMI analogue: the AMD system-management surface.
//!
//! AMD boards expose performance levels rather than application clocks:
//! `auto` (the firmware picks, which is why MI100 has no default
//! configuration in Figure 1), `manual` with an explicit sclk ceiling, or
//! `high`/`low` shortcuts. Clock control requires root or a prior
//! unrestriction, matching how production clusters gate `rocm-smi`.

use crate::caller::Caller;
use crate::error::{HalError, HalResult};
use std::sync::Arc;
use synergy_sim::{ClockConfig, SimDevice, Vendor};

/// AMD performance-level selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PerfLevel {
    /// Firmware-managed boosting (the MI100 default).
    Auto,
    /// Pin the sclk to an explicit supported frequency.
    Manual {
        /// Target core clock in MHz (must be in the supported table).
        sclk_mhz: u32,
    },
    /// Highest supported sclk.
    High,
    /// Lowest supported sclk.
    Low,
}

/// An initialized ROCm SMI handle over a node's AMD boards.
#[derive(Debug, Clone)]
pub struct RocmSmi {
    devices: Vec<Arc<SimDevice>>,
}

impl RocmSmi {
    /// `rsmi_init`: attach to every AMD board among `devices`.
    pub fn init(devices: &[Arc<SimDevice>]) -> RocmSmi {
        RocmSmi {
            devices: devices
                .iter()
                .filter(|d| d.spec().vendor == Vendor::Amd)
                .cloned()
                .collect(),
        }
    }

    /// Number of visible AMD devices.
    pub fn device_count(&self) -> u32 {
        self.devices.len() as u32
    }

    /// Handle by index.
    pub fn device_by_index(&self, index: u32) -> HalResult<RocmDevice> {
        self.devices
            .get(index as usize)
            .cloned()
            .map(|dev| RocmDevice { dev })
            .ok_or(HalError::NotFound(index))
    }
}

/// A handle to one AMD board.
#[derive(Debug, Clone)]
pub struct RocmDevice {
    dev: Arc<SimDevice>,
}

impl RocmDevice {
    /// Wrap a raw simulated device; fails on non-AMD boards.
    pub fn new(dev: Arc<SimDevice>) -> HalResult<RocmDevice> {
        if dev.spec().vendor != Vendor::Amd {
            return Err(HalError::WrongVendor);
        }
        Ok(RocmDevice { dev })
    }

    /// Board name.
    pub fn name(&self) -> String {
        self.dev.spec().name.clone()
    }

    /// Supported sclk frequencies (`rsmi_dev_gpu_clk_freq_get`).
    pub fn supported_sclk(&self) -> Vec<u32> {
        self.dev.spec().freq_table.core_mhz.clone()
    }

    /// The fixed memory clock of the HBM stack.
    pub fn mclk_mhz(&self) -> u32 {
        self.dev.spec().freq_table.top_mem()
    }

    /// `rsmi_dev_perf_level_set` (+ manual sclk pin). Root-only while the
    /// board is restricted.
    pub fn set_perf_level(&self, caller: Caller, level: PerfLevel) -> HalResult<()> {
        if !caller.is_root() && self.dev.api_restricted() {
            return Err(HalError::NoPermission);
        }
        let mem = self.mclk_mhz();
        match level {
            PerfLevel::Auto => {
                self.dev.reset_application_clocks();
                Ok(())
            }
            PerfLevel::Manual { sclk_mhz } => {
                self.dev
                    .set_application_clocks(ClockConfig::new(mem, sclk_mhz))?;
                Ok(())
            }
            PerfLevel::High => {
                let hi = self.dev.spec().freq_table.max_core();
                self.dev.set_application_clocks(ClockConfig::new(mem, hi))?;
                Ok(())
            }
            PerfLevel::Low => {
                let lo = self.dev.spec().freq_table.min_core();
                self.dev.set_application_clocks(ClockConfig::new(mem, lo))?;
                Ok(())
            }
        }
    }

    /// Root-only toggle allowing unprivileged perf-level control
    /// (the AMD-side equivalent the paper's plugin would use).
    pub fn set_restriction(&self, caller: Caller, restricted: bool) -> HalResult<()> {
        if !caller.is_root() {
            return Err(HalError::NoPermission);
        }
        self.dev.set_api_restriction(restricted);
        Ok(())
    }

    /// Current pinned sclk, `None` in auto mode.
    pub fn pinned_sclk(&self) -> Option<u32> {
        self.dev.application_clocks().map(|c| c.core_mhz)
    }

    /// Board power in watts (`rsmi_dev_power_ave_get`).
    pub fn power_usage_w(&self) -> f64 {
        self.dev.power_usage_w()
    }

    /// Accumulated energy counter in millijoules
    /// (`rsmi_dev_energy_count_get`).
    pub fn total_energy_mj(&self) -> f64 {
        self.dev.total_energy_mj()
    }

    /// The underlying simulated board.
    pub fn raw(&self) -> &Arc<SimDevice> {
        &self.dev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synergy_sim::{DeviceSpec, SimNode};

    fn rocm() -> (SimNode, RocmDevice) {
        let node = SimNode::amd_node("amd01");
        let smi = RocmSmi::init(&node.gpus);
        let dev = smi.device_by_index(0).unwrap();
        (node, dev)
    }

    #[test]
    fn init_sees_only_amd() {
        let nvidia = SimNode::marconi100("node001");
        assert_eq!(RocmSmi::init(&nvidia.gpus).device_count(), 0);
        let amd = SimNode::amd_node("amd01");
        assert_eq!(RocmSmi::init(&amd.gpus).device_count(), 1);
    }

    #[test]
    fn wrong_vendor_rejected() {
        let v100 = SimDevice::new(DeviceSpec::v100(), 0);
        assert_eq!(RocmDevice::new(v100).unwrap_err(), HalError::WrongVendor);
    }

    #[test]
    fn perf_levels_map_to_clocks() {
        let (_n, dev) = rocm();
        dev.set_perf_level(Caller::Root, PerfLevel::High).unwrap();
        assert_eq!(dev.pinned_sclk(), Some(1502));
        dev.set_perf_level(Caller::Root, PerfLevel::Low).unwrap();
        assert_eq!(dev.pinned_sclk(), Some(300));
        dev.set_perf_level(Caller::Root, PerfLevel::Manual { sclk_mhz: 300 })
            .unwrap();
        assert_eq!(dev.pinned_sclk(), Some(300));
        dev.set_perf_level(Caller::Root, PerfLevel::Auto).unwrap();
        assert_eq!(dev.pinned_sclk(), None);
    }

    #[test]
    fn manual_requires_supported_sclk() {
        let (_n, dev) = rocm();
        let err = dev
            .set_perf_level(Caller::Root, PerfLevel::Manual { sclk_mhz: 301 })
            .unwrap_err();
        assert!(matches!(err, HalError::UnsupportedClock(_)));
    }

    #[test]
    fn user_blocked_until_unrestricted() {
        let (_n, dev) = rocm();
        let err = dev
            .set_perf_level(Caller::User(500), PerfLevel::High)
            .unwrap_err();
        assert_eq!(err, HalError::NoPermission);
        dev.set_restriction(Caller::Root, false).unwrap();
        dev.set_perf_level(Caller::User(500), PerfLevel::High).unwrap();
        assert_eq!(
            dev.set_restriction(Caller::User(500), true).unwrap_err(),
            HalError::NoPermission
        );
    }

    #[test]
    fn clock_table_matches_figure1() {
        let (_n, dev) = rocm();
        assert_eq!(dev.supported_sclk().len(), 16);
        assert_eq!(dev.mclk_mhz(), 1200);
    }

    #[test]
    fn power_reads_work() {
        let (node, dev) = rocm();
        node.gpus[0].advance_idle(50_000_000);
        assert!(dev.power_usage_w() > 0.0);
        assert!(dev.total_energy_mj() > 0.0);
    }
}
