//! HAL error types, mirroring the error surface of the vendor management
//! libraries (NVML return codes, ROCm SMI statuses).

use serde::{Deserialize, Serialize};
use std::fmt;
use synergy_sim::{ClockConfig, SimError};

/// Errors returned by the management-library analogues.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum HalError {
    /// The library handle was not initialized (`NVML_ERROR_UNINITIALIZED`).
    Uninitialized,
    /// The caller lacks the privilege for a state-changing call
    /// (`NVML_ERROR_NO_PERMISSION`).
    NoPermission,
    /// No device at the requested index (`NVML_ERROR_NOT_FOUND`).
    NotFound(u32),
    /// The requested clocks are not in the supported table
    /// (`NVML_ERROR_INVALID_ARGUMENT`).
    UnsupportedClock(ClockConfig),
    /// Clock bounds rejected by the hardware.
    InvalidClockBounds {
        /// Lower bound (MHz).
        lo: u32,
        /// Upper bound (MHz).
        hi: u32,
    },
    /// The operation is not supported on this device/vendor
    /// (`NVML_ERROR_NOT_SUPPORTED`), e.g. NVML calls on an AMD board.
    WrongVendor,
    /// The shared object could not be loaded (`dlopen` failure in the
    /// SLURM plugin's check chain).
    LibraryNotLoaded,
}

impl fmt::Display for HalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HalError::Uninitialized => write!(f, "management library not initialized"),
            HalError::NoPermission => write!(f, "caller lacks permission"),
            HalError::NotFound(i) => write!(f, "no device at index {i}"),
            HalError::UnsupportedClock(c) => write!(f, "unsupported clock configuration {c}"),
            HalError::InvalidClockBounds { lo, hi } => {
                write!(f, "invalid clock bounds [{lo}, {hi}] MHz")
            }
            HalError::WrongVendor => write!(f, "operation not supported on this vendor"),
            HalError::LibraryNotLoaded => write!(f, "management library could not be loaded"),
        }
    }
}

impl std::error::Error for HalError {}

impl From<SimError> for HalError {
    fn from(e: SimError) -> HalError {
        match e {
            SimError::UnsupportedClock(c) => HalError::UnsupportedClock(c),
            SimError::InvalidClockBounds { lo, hi } => HalError::InvalidClockBounds { lo, hi },
        }
    }
}

/// Result alias for HAL calls.
pub type HalResult<T> = Result<T, HalError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_error_converts() {
        let e: HalError = SimError::UnsupportedClock(ClockConfig::new(1, 2)).into();
        assert_eq!(e, HalError::UnsupportedClock(ClockConfig::new(1, 2)));
        let e: HalError = SimError::InvalidClockBounds { lo: 1, hi: 2 }.into();
        assert_eq!(e, HalError::InvalidClockBounds { lo: 1, hi: 2 });
    }

    #[test]
    fn display_strings() {
        assert!(HalError::NoPermission.to_string().contains("permission"));
        assert!(HalError::NotFound(3).to_string().contains('3'));
    }
}
