//! NVML analogue: the NVIDIA Management Library surface the paper's
//! runtime and SLURM plugin program against.
//!
//! Reproduced semantics:
//! * `init` / device enumeration by index;
//! * supported memory/graphics clock queries;
//! * `set_application_clocks` — rejected with `NoPermission` for
//!   unprivileged callers while the API restriction is in place;
//! * `set_api_restriction` — root-only toggle that lowers the privilege
//!   requirement for application-clock calls on one board;
//! * root-only locked (min/max) clocks that bound application clocks;
//! * board power reads (smoothed sensor with ~15 ms granularity) and the
//!   total-energy counter.

use crate::caller::Caller;
use crate::error::{HalError, HalResult};
use std::sync::Arc;
use synergy_sim::{ClockConfig, SimDevice, Vendor};

/// NVML APIs whose privilege requirement can be lowered per device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestrictedApi {
    /// `nvmlDeviceSetApplicationClocks` and the reset call.
    SetApplicationClocks,
}

/// An initialized NVML library handle over a node's NVIDIA boards.
#[derive(Debug, Clone)]
pub struct Nvml {
    devices: Vec<Arc<SimDevice>>,
}

impl Nvml {
    /// `nvmlInit`: attach to every NVIDIA board among `devices`.
    /// Boards from other vendors are invisible to NVML.
    pub fn init(devices: &[Arc<SimDevice>]) -> Nvml {
        Nvml {
            devices: devices
                .iter()
                .filter(|d| d.spec().vendor == Vendor::Nvidia)
                .cloned()
                .collect(),
        }
    }

    /// Number of visible NVIDIA devices.
    pub fn device_count(&self) -> u32 {
        self.devices.len() as u32
    }

    /// `nvmlDeviceGetHandleByIndex`.
    pub fn device_by_index(&self, index: u32) -> HalResult<NvmlDevice> {
        self.devices
            .get(index as usize)
            .cloned()
            .map(|dev| NvmlDevice { dev })
            .ok_or(HalError::NotFound(index))
    }

    /// Handles for all visible devices.
    pub fn devices(&self) -> Vec<NvmlDevice> {
        self.devices
            .iter()
            .cloned()
            .map(|dev| NvmlDevice { dev })
            .collect()
    }
}

/// A handle to one NVIDIA board.
#[derive(Debug, Clone)]
pub struct NvmlDevice {
    dev: Arc<SimDevice>,
}

impl NvmlDevice {
    /// Wrap a raw simulated device; fails on non-NVIDIA boards.
    pub fn new(dev: Arc<SimDevice>) -> HalResult<NvmlDevice> {
        if dev.spec().vendor != Vendor::Nvidia {
            return Err(HalError::WrongVendor);
        }
        Ok(NvmlDevice { dev })
    }

    /// Board name.
    pub fn name(&self) -> String {
        self.dev.spec().name.clone()
    }

    /// Board UUID.
    pub fn uuid(&self) -> String {
        self.dev.uuid().to_string()
    }

    /// `nvmlDeviceGetSupportedMemoryClocks`.
    pub fn supported_memory_clocks(&self) -> Vec<u32> {
        self.dev.spec().freq_table.mem_mhz.clone()
    }

    /// `nvmlDeviceGetSupportedGraphicsClocks(mem_mhz)`.
    pub fn supported_graphics_clocks(&self, mem_mhz: u32) -> HalResult<Vec<u32>> {
        let table = &self.dev.spec().freq_table;
        if table.mem_mhz.binary_search(&mem_mhz).is_err() {
            return Err(HalError::UnsupportedClock(ClockConfig::new(mem_mhz, 0)));
        }
        Ok(table.core_mhz.clone())
    }

    /// `nvmlDeviceSetApplicationsClocks`: root, or any caller once the API
    /// restriction has been lowered on this board.
    pub fn set_application_clocks(
        &self,
        caller: Caller,
        clocks: ClockConfig,
    ) -> HalResult<()> {
        self.check_app_clock_permission(caller)?;
        self.dev.set_application_clocks(clocks)?;
        Ok(())
    }

    /// `nvmlDeviceResetApplicationsClocks` (same permission rule).
    pub fn reset_application_clocks(&self, caller: Caller) -> HalResult<()> {
        self.check_app_clock_permission(caller)?;
        self.dev.reset_application_clocks();
        Ok(())
    }

    fn check_app_clock_permission(&self, caller: Caller) -> HalResult<()> {
        if caller.is_root() || !self.dev.api_restricted() {
            Ok(())
        } else {
            Err(HalError::NoPermission)
        }
    }

    /// Current application clocks, if set.
    pub fn application_clocks(&self) -> Option<ClockConfig> {
        self.dev.application_clocks()
    }

    /// `nvmlDeviceSetAPIRestriction(SetApplicationClocks, ...)` — strictly
    /// root-only; this is the privilege-raising lever of Section 7.
    pub fn set_api_restriction(
        &self,
        caller: Caller,
        _api: RestrictedApi,
        restricted: bool,
    ) -> HalResult<()> {
        if !caller.is_root() {
            return Err(HalError::NoPermission);
        }
        self.dev.set_api_restriction(restricted);
        Ok(())
    }

    /// Whether application-clock calls currently require root.
    pub fn api_restricted(&self) -> bool {
        self.dev.api_restricted()
    }

    /// `nvmlDeviceSetGpuLockedClocks` — hard min/max bounds, root-only; the
    /// paper notes privileges for these "cannot be lowered".
    pub fn set_locked_clocks(&self, caller: Caller, lo: u32, hi: u32) -> HalResult<()> {
        if !caller.is_root() {
            return Err(HalError::NoPermission);
        }
        self.dev.set_locked_core_clocks(Some((lo, hi)))?;
        Ok(())
    }

    /// `nvmlDeviceResetGpuLockedClocks` (root-only).
    pub fn reset_locked_clocks(&self, caller: Caller) -> HalResult<()> {
        if !caller.is_root() {
            return Err(HalError::NoPermission);
        }
        self.dev.set_locked_core_clocks(None)?;
        Ok(())
    }

    /// `nvmlDeviceGetPowerUsage`: current smoothed board power in watts
    /// (unprivileged).
    pub fn power_usage_w(&self) -> f64 {
        self.dev.power_usage_w()
    }

    /// `nvmlDeviceGetTotalEnergyConsumption`: millijoules since power-on.
    pub fn total_energy_mj(&self) -> f64 {
        self.dev.total_energy_mj()
    }

    /// The underlying simulated board (for the runtime executor).
    pub fn raw(&self) -> &Arc<SimDevice> {
        &self.dev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synergy_sim::{DeviceSpec, SimNode};

    fn nvml_node() -> (SimNode, Nvml) {
        let node = SimNode::marconi100("node001");
        let nvml = Nvml::init(&node.gpus);
        (node, nvml)
    }

    #[test]
    fn init_sees_only_nvidia() {
        let (_n, nvml) = nvml_node();
        assert_eq!(nvml.device_count(), 4);
        let amd = SimNode::amd_node("amd01");
        let nvml_amd = Nvml::init(&amd.gpus);
        assert_eq!(nvml_amd.device_count(), 0);
    }

    #[test]
    fn wrong_vendor_handle_rejected() {
        let amd = SimDevice::new(DeviceSpec::mi100(), 0);
        assert_eq!(NvmlDevice::new(amd).unwrap_err(), HalError::WrongVendor);
    }

    #[test]
    fn out_of_range_index() {
        let (_n, nvml) = nvml_node();
        assert_eq!(nvml.device_by_index(9).unwrap_err(), HalError::NotFound(9));
    }

    #[test]
    fn user_cannot_set_clocks_while_restricted() {
        let (_n, nvml) = nvml_node();
        let dev = nvml.device_by_index(0).unwrap();
        let err = dev
            .set_application_clocks(Caller::User(1000), ClockConfig::new(877, 1530))
            .unwrap_err();
        assert_eq!(err, HalError::NoPermission);
    }

    #[test]
    fn root_can_always_set_clocks() {
        let (_n, nvml) = nvml_node();
        let dev = nvml.device_by_index(0).unwrap();
        dev.set_application_clocks(Caller::Root, ClockConfig::new(877, 1530))
            .unwrap();
        assert_eq!(dev.application_clocks(), Some(ClockConfig::new(877, 1530)));
    }

    #[test]
    fn lowering_restriction_enables_user_clock_control() {
        let (_n, nvml) = nvml_node();
        let dev = nvml.device_by_index(0).unwrap();
        dev.set_api_restriction(Caller::Root, RestrictedApi::SetApplicationClocks, false)
            .unwrap();
        dev.set_application_clocks(Caller::User(1000), ClockConfig::new(877, 135))
            .unwrap();
        dev.reset_application_clocks(Caller::User(1000)).unwrap();
        // Restore: user loses access again.
        dev.set_api_restriction(Caller::Root, RestrictedApi::SetApplicationClocks, true)
            .unwrap();
        let err = dev
            .set_application_clocks(Caller::User(1000), ClockConfig::new(877, 135))
            .unwrap_err();
        assert_eq!(err, HalError::NoPermission);
    }

    #[test]
    fn user_cannot_toggle_restriction() {
        let (_n, nvml) = nvml_node();
        let dev = nvml.device_by_index(0).unwrap();
        let err = dev
            .set_api_restriction(
                Caller::User(1000),
                RestrictedApi::SetApplicationClocks,
                false,
            )
            .unwrap_err();
        assert_eq!(err, HalError::NoPermission);
    }

    #[test]
    fn locked_clocks_root_only() {
        let (_n, nvml) = nvml_node();
        let dev = nvml.device_by_index(0).unwrap();
        assert_eq!(
            dev.set_locked_clocks(Caller::User(7), 135, 1000).unwrap_err(),
            HalError::NoPermission
        );
        dev.set_locked_clocks(Caller::Root, 135, 1000).unwrap();
        dev.reset_locked_clocks(Caller::Root).unwrap();
    }

    #[test]
    fn clock_queries_match_spec() {
        let (_n, nvml) = nvml_node();
        let dev = nvml.device_by_index(0).unwrap();
        assert_eq!(dev.supported_memory_clocks(), vec![877]);
        let cores = dev.supported_graphics_clocks(877).unwrap();
        assert_eq!(cores.len(), 196);
        assert!(dev.supported_graphics_clocks(1215).is_err());
    }

    #[test]
    fn invalid_clock_propagates() {
        let (_n, nvml) = nvml_node();
        let dev = nvml.device_by_index(0).unwrap();
        let err = dev
            .set_application_clocks(Caller::Root, ClockConfig::new(877, 77777))
            .unwrap_err();
        assert!(matches!(err, HalError::UnsupportedClock(_)));
    }

    #[test]
    fn power_and_energy_reads_are_unprivileged() {
        let (node, nvml) = nvml_node();
        node.gpus[0].advance_idle(100_000_000);
        let dev = nvml.device_by_index(0).unwrap();
        assert!(dev.power_usage_w() > 0.0);
        assert!(dev.total_energy_mj() > 0.0);
    }
}
