//! # synergy-cluster
//!
//! Multi-node simulation for the paper's Figure-10 experiment: an α–β
//! model of the Marconi-100 interconnect (InfiniBand EDR, DragonFly+) and
//! a weak-scaling driver that runs CloverLeaf and MiniWeather across 4–64
//! simulated V100 GPUs with per-kernel frequency schedules compiled from
//! the energy models.

#![warn(missing_docs)]

pub mod comm;
pub mod strong_scaling;
pub mod weak_scaling;

pub use comm::{hops_for, CommModel};
pub use strong_scaling::{run_strong_scaling, StrongScalingConfig};
pub use weak_scaling::{
    fresh_v100_ranks, run_weak_scaling, run_weak_scaling_traced, FrequencySchedule, MiniApp,
    ScalingOutcome, WeakScalingConfig,
};
