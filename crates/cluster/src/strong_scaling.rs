//! Strong scaling: a fixed global problem divided across more GPUs.
//!
//! The paper's Figure 10 uses weak scaling; strong scaling is the natural
//! companion study (and the regime where the communication model actually
//! bends the curve): per-rank compute shrinks as 1/N while halo traffic
//! stays put, so speedup saturates and energy develops a minimum at a
//! finite GPU count — more boards eventually burn idle/comm joules for no
//! time gain.

use crate::comm::{hops_for, CommModel};
use crate::weak_scaling::{FrequencySchedule, MiniApp, ScalingOutcome};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use synergy_hal::{open_device, Caller, DeviceManagement};
use synergy_kernel::extract;
use synergy_sim::{SimDevice, Workload};

/// Configuration of a strong-scaling run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StrongScalingConfig {
    /// GPUs sharing the problem.
    pub gpus: usize,
    /// Global grid size in x (divided across ranks).
    pub global_nx: usize,
    /// Global grid size in y.
    pub global_ny: usize,
    /// Timesteps.
    pub steps: usize,
    /// Interconnect model.
    pub comm: CommModel,
}

impl StrongScalingConfig {
    /// A study-sized default: 8192² global grid.
    pub fn study(gpus: usize) -> StrongScalingConfig {
        StrongScalingConfig {
            gpus,
            global_nx: 8192,
            global_ny: 8192,
            steps: 10,
            comm: CommModel::edr_dragonfly(),
        }
    }

    /// Per-rank work items (1-D decomposition along x).
    pub fn items_per_rank(&self) -> u64 {
        (self.global_nx / self.gpus.max(1)) as u64 * self.global_ny as u64
    }

    /// Nodes at 4 GPUs per node.
    pub fn nodes(&self) -> usize {
        self.gpus.div_ceil(4)
    }
}

/// Run a strong-scaling experiment (same schedule semantics as the weak
/// driver; devices must be fresh).
pub fn run_strong_scaling(
    app: MiniApp,
    cfg: &StrongScalingConfig,
    devices: &[Arc<SimDevice>],
    caller: Caller,
    schedule: &FrequencySchedule,
) -> ScalingOutcome {
    assert_eq!(devices.len(), cfg.gpus);
    let irs = app.kernel_irs();
    let infos: Vec<_> = irs.iter().map(extract).collect();
    let items = cfg.items_per_rank();
    let hops = hops_for(cfg.nodes());
    // Halo along the decomposition axis: full y-edges, independent of N.
    let halo = app.halo_bytes(cfg.global_nx / cfg.gpus.max(1), cfg.global_ny);

    let mgmt: Vec<Arc<dyn DeviceManagement>> =
        devices.iter().map(|d| open_device(Arc::clone(d))).collect();
    let e0: f64 = devices.iter().map(|d| d.total_energy_mj()).sum::<f64>() * 1e-3;
    let t0 = devices.iter().map(|d| d.now_ns()).max().expect("ranks");

    for _ in 0..cfg.steps {
        for (rank, dev) in devices.iter().enumerate() {
            for (ir, info) in irs.iter().zip(&infos) {
                let wanted = match schedule {
                    FrequencySchedule::Default => None,
                    FrequencySchedule::PerKernel { registry, target } => {
                        registry.lookup(&ir.name, *target)
                    }
                    FrequencySchedule::Coarse(c) => Some(*c),
                };
                if let Some(clocks) = wanted {
                    let _ = mgmt[rank].set_clocks(caller, clocks);
                }
                dev.execute(&Workload::from_static(info, items));
            }
        }
        let t_sync = devices.iter().map(|d| d.now_ns()).max().expect("ranks");
        let comm_ns = if cfg.gpus > 1 {
            cfg.comm.transfer_ns(halo, hops)
        } else {
            0
        };
        for dev in devices {
            dev.advance_idle(t_sync - dev.now_ns() + comm_ns);
        }
    }

    let t1 = devices.iter().map(|d| d.now_ns()).max().expect("ranks");
    let e1: f64 = devices.iter().map(|d| d.total_energy_mj()).sum::<f64>() * 1e-3;
    ScalingOutcome {
        app: app.name().to_string(),
        schedule: match schedule {
            FrequencySchedule::Default => "default".into(),
            FrequencySchedule::PerKernel { target, .. } => target.to_string(),
            FrequencySchedule::Coarse(c) => format!("coarse@{}", c.core_mhz),
        },
        gpus: cfg.gpus,
        time_s: (t1 - t0) as f64 * 1e-9,
        energy_j: e1 - e0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weak_scaling::fresh_v100_ranks;

    fn run(gpus: usize) -> ScalingOutcome {
        run_strong_scaling(
            MiniApp::CloverLeaf,
            &StrongScalingConfig {
                gpus,
                global_nx: 4096,
                global_ny: 2048,
                steps: 2,
                comm: CommModel::edr_dragonfly(),
            },
            &fresh_v100_ranks(gpus),
            Caller::Root,
            &FrequencySchedule::Default,
        )
    }

    #[test]
    fn more_gpus_reduce_time() {
        let t1 = run(1).time_s;
        let t4 = run(4).time_s;
        let t16 = run(16).time_s;
        assert!(t4 < t1, "4 GPUs should beat 1 ({t4} vs {t1})");
        assert!(t16 < t4, "16 GPUs should beat 4 ({t16} vs {t4})");
        // But sublinearly: comm + per-wave floors eat the ideal speedup.
        assert!(t1 / t16 < 16.0);
    }

    #[test]
    fn items_split_evenly() {
        let cfg = StrongScalingConfig::study(8);
        assert_eq!(cfg.items_per_rank(), (8192 / 8) as u64 * 8192);
        assert_eq!(cfg.nodes(), 2);
    }

    #[test]
    fn strong_scaling_is_deterministic() {
        assert_eq!(run(4), run(4));
    }

    #[test]
    fn energy_does_not_scale_linearly_down() {
        // Strong scaling wastes energy at high counts: 16 GPUs must burn
        // more total joules than 1 GPU doing the same problem (idle +
        // launch + comm overheads replicated per board).
        let e1 = run(1).energy_j;
        let e16 = run(16).energy_j;
        assert!(
            e16 > e1 * 0.9,
            "16-GPU strong scaling should not be dramatically cheaper: {e16} vs {e1}"
        );
    }
}
