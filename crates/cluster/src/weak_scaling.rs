//! The weak-scaling driver behind Figure 10: CloverLeaf and MiniWeather
//! across 4–64 GPUs, one MPI rank per GPU, with per-kernel frequency
//! selection from a compiled [`TargetRegistry`].
//!
//! Per step, every rank runs the app's kernel sequence on its device
//! (setting the kernel's compiled clocks first — paying the vendor-library
//! switch latency), then all ranks synchronize through a halo exchange
//! priced by the α–β interconnect model. Time is the makespan over ranks;
//! energy is summed over GPUs only, matching the paper's measurement
//! ("the energy consumption regards only the GPU devices, while the
//! execution time includes computation and communication").

use crate::comm::{hops_for, CommModel};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use synergy_hal::{open_device, Caller, DeviceManagement, InstrumentedManagement};
use synergy_kernel::{extract, KernelIr};
use synergy_metrics::EnergyTarget;
use synergy_rt::TargetRegistry;
use synergy_sim::{SimDevice, Workload};
use synergy_telemetry::{EventKind, Recorder};

/// Which mini-app to scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MiniApp {
    /// 2-D compressible Euler hydrodynamics.
    CloverLeaf,
    /// 2-D stratified atmospheric flow.
    MiniWeather,
}

impl MiniApp {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            MiniApp::CloverLeaf => "CloverLeaf",
            MiniApp::MiniWeather => "MiniWeather",
        }
    }

    /// The app's per-step kernel IRs.
    pub fn kernel_irs(&self) -> Vec<KernelIr> {
        match self {
            MiniApp::CloverLeaf => synergy_apps::cloverleaf::kernel_irs(),
            MiniApp::MiniWeather => synergy_apps::miniweather::kernel_irs(),
        }
    }

    /// Halo bytes exchanged per rank per step for an `nx × ny` local grid:
    /// both x-edges of every exchanged field at 4 bytes per value.
    pub fn halo_bytes(&self, nx: usize, ny: usize) -> f64 {
        let fields = match self {
            MiniApp::CloverLeaf => 6.0, // density, energy, pressure, visc, u, v
            MiniApp::MiniWeather => 4.0, // the four state variables
        };
        let _ = nx;
        2.0 * ny as f64 * 4.0 * fields
    }
}

/// Configuration of one weak-scaling run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeakScalingConfig {
    /// Number of GPUs (ranks). Marconi-100 packs 4 per node.
    pub gpus: usize,
    /// Local grid size in x (per GPU — weak scaling keeps this fixed).
    pub local_nx: usize,
    /// Local grid size in y.
    pub local_ny: usize,
    /// Timesteps to run.
    pub steps: usize,
    /// Interconnect model.
    pub comm: CommModel,
}

impl WeakScalingConfig {
    /// The Figure-10 configuration at a given GPU count.
    pub fn figure10(gpus: usize) -> WeakScalingConfig {
        WeakScalingConfig {
            gpus,
            local_nx: 4096,
            local_ny: 4096,
            steps: 10,
            comm: CommModel::edr_dragonfly(),
        }
    }

    /// Nodes needed at 4 GPUs per node.
    pub fn nodes(&self) -> usize {
        self.gpus.div_ceil(4)
    }
}

/// How kernels pick their clocks during a run.
#[derive(Debug, Clone)]
pub enum FrequencySchedule {
    /// Default clocks for every kernel (the Figure-10 baseline cross).
    Default,
    /// Per-kernel clocks compiled for one energy target.
    PerKernel {
        /// The compiled registry.
        registry: Arc<TargetRegistry>,
        /// The target to look up.
        target: EnergyTarget,
    },
    /// One fixed frequency for the entire application — the coarse-grained
    /// strategy the paper argues against (used by the ablation bench).
    Coarse(synergy_sim::ClockConfig),
}

impl FrequencySchedule {
    fn label(&self) -> String {
        match self {
            FrequencySchedule::Default => "default".to_string(),
            FrequencySchedule::PerKernel { target, .. } => target.to_string(),
            FrequencySchedule::Coarse(c) => format!("coarse@{}", c.core_mhz),
        }
    }
}

/// Result of one weak-scaling run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingOutcome {
    /// App name.
    pub app: String,
    /// Schedule label ("default", "ES_50", ...).
    pub schedule: String,
    /// GPU count.
    pub gpus: usize,
    /// End-to-end time (compute + communication), seconds.
    pub time_s: f64,
    /// Total GPU energy, joules.
    pub energy_j: f64,
}

/// Run one weak-scaling experiment on the given devices.
///
/// `devices` must all start from a fresh timeline (one per rank); `caller`
/// is the identity used for clock changes — without the SLURM plugin's
/// privilege raising, clock requests fail and every kernel runs at default
/// clocks (exactly what happens to an unprivileged job on a production
/// cluster).
pub fn run_weak_scaling(
    app: MiniApp,
    cfg: &WeakScalingConfig,
    devices: &[Arc<SimDevice>],
    caller: Caller,
    schedule: &FrequencySchedule,
) -> ScalingOutcome {
    run_weak_scaling_traced(app, cfg, devices, caller, schedule, &Recorder::disabled())
}

/// [`run_weak_scaling`] with a telemetry recorder: every management call
/// goes through an [`InstrumentedManagement`] wrapper, and each rank's
/// per-timestep compute window is recorded as an
/// [`EventKind::ClusterStep`] with the rank's GPU energy for that step.
pub fn run_weak_scaling_traced(
    app: MiniApp,
    cfg: &WeakScalingConfig,
    devices: &[Arc<SimDevice>],
    caller: Caller,
    schedule: &FrequencySchedule,
    recorder: &Recorder,
) -> ScalingOutcome {
    assert_eq!(devices.len(), cfg.gpus, "one device per rank");
    let irs = app.kernel_irs();
    let infos: Vec<_> = irs.iter().map(extract).collect();
    let items = (cfg.local_nx * cfg.local_ny) as u64;
    let hops = hops_for(cfg.nodes());
    let halo = app.halo_bytes(cfg.local_nx, cfg.local_ny);

    let mgmt: Vec<Arc<dyn DeviceManagement>> = devices
        .iter()
        .map(|d| InstrumentedManagement::wrap(open_device(Arc::clone(d)), recorder.clone()))
        .collect();

    let t0: Vec<u64> = devices.iter().map(|d| d.now_ns()).collect();
    let e0: f64 = devices.iter().map(|d| d.total_energy_mj()).sum::<f64>() * 1e-3;

    for step in 0..cfg.steps {
        // Compute phase on every rank.
        for (rank, dev) in devices.iter().enumerate() {
            let step_start_ns = dev.now_ns();
            let step_e0_mj = dev.total_energy_mj();
            for (ir, info) in irs.iter().zip(&infos) {
                let wanted = match schedule {
                    FrequencySchedule::Default => None,
                    FrequencySchedule::PerKernel { registry, target } => {
                        registry.lookup(&ir.name, *target)
                    }
                    FrequencySchedule::Coarse(c) => Some(*c),
                };
                if let Some(clocks) = wanted {
                    // Unprivileged callers fail here and fall through to
                    // the current clocks.
                    let _ = mgmt[rank].set_clocks(caller, clocks);
                }
                let wl = Workload::from_static(info, items);
                dev.execute(&wl);
            }
            recorder.record_with(dev.now_ns(), || EventKind::ClusterStep {
                rank: rank as u32,
                step: step as u32,
                start_ns: step_start_ns,
                end_ns: dev.now_ns(),
                energy_j: (dev.total_energy_mj() - step_e0_mj) * 1e-3,
            });
        }
        // Synchronization + halo exchange: every rank waits for the
        // slowest, then pays the transfer (single-rank runs skip it).
        let t_sync = devices.iter().map(|d| d.now_ns()).max().expect("ranks");
        let comm_ns = if cfg.gpus > 1 {
            cfg.comm.transfer_ns(halo, hops)
        } else {
            0
        };
        for dev in devices {
            let idle = t_sync - dev.now_ns() + comm_ns;
            dev.advance_idle(idle);
        }
    }

    let t1 = devices.iter().map(|d| d.now_ns()).max().expect("ranks");
    let t0_max = t0.into_iter().max().expect("ranks");
    let e1: f64 = devices.iter().map(|d| d.total_energy_mj()).sum::<f64>() * 1e-3;

    ScalingOutcome {
        app: app.name().to_string(),
        schedule: schedule.label(),
        gpus: cfg.gpus,
        time_s: (t1 - t0_max) as f64 * 1e-9,
        energy_j: e1 - e0,
    }
}

/// Convenience: fresh V100 devices for `gpus` ranks.
pub fn fresh_v100_ranks(gpus: usize) -> Vec<Arc<SimDevice>> {
    (0..gpus)
        .map(|i| SimDevice::new(synergy_sim::DeviceSpec::v100(), i as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use synergy_ml::ModelSelection;
    use synergy_rt::{compile_application, train_device_models};
    use synergy_sim::DeviceSpec;

    fn small_cfg(gpus: usize) -> WeakScalingConfig {
        WeakScalingConfig {
            gpus,
            local_nx: 2048,
            local_ny: 2048,
            steps: 3,
            comm: CommModel::edr_dragonfly(),
        }
    }

    fn compiled_registry(app: MiniApp) -> Arc<TargetRegistry> {
        let spec = DeviceSpec::v100();
        let suite = synergy_kernel::microbench::generate_default(7);
        let models =
            train_device_models(&spec, &suite, ModelSelection::paper_best(), 24, 0);
        Arc::new(
            compile_application(&spec, &models, &app.kernel_irs(), &EnergyTarget::PAPER_SET)
                .expect("suite kernels lint clean"),
        )
    }

    #[test]
    fn default_run_produces_time_and_energy() {
        let cfg = small_cfg(4);
        let devs = fresh_v100_ranks(4);
        let out = run_weak_scaling(
            MiniApp::CloverLeaf,
            &cfg,
            &devs,
            Caller::Root,
            &FrequencySchedule::Default,
        );
        assert!(out.time_s > 0.0);
        assert!(out.energy_j > 0.0);
        assert_eq!(out.schedule, "default");
        assert_eq!(out.gpus, 4);
    }

    #[test]
    fn es50_saves_energy_vs_default() {
        let registry = compiled_registry(MiniApp::MiniWeather);
        let cfg = small_cfg(4);
        let base = run_weak_scaling(
            MiniApp::MiniWeather,
            &cfg,
            &fresh_v100_ranks(4),
            Caller::Root,
            &FrequencySchedule::Default,
        );
        let es = run_weak_scaling(
            MiniApp::MiniWeather,
            &cfg,
            &fresh_v100_ranks(4),
            Caller::Root,
            &FrequencySchedule::PerKernel {
                registry,
                target: EnergyTarget::EnergySaving(50),
            },
        );
        assert!(
            es.energy_j < base.energy_j,
            "ES_50 {} J should beat default {} J",
            es.energy_j,
            base.energy_j
        );
    }

    #[test]
    fn unprivileged_caller_runs_at_default() {
        let registry = compiled_registry(MiniApp::CloverLeaf);
        let cfg = small_cfg(2);
        let sched = FrequencySchedule::PerKernel {
            registry,
            target: EnergyTarget::MinEnergy,
        };
        let privileged = run_weak_scaling(
            MiniApp::CloverLeaf,
            &cfg,
            &fresh_v100_ranks(2),
            Caller::Root,
            &sched,
        );
        let unprivileged = run_weak_scaling(
            MiniApp::CloverLeaf,
            &cfg,
            &fresh_v100_ranks(2),
            Caller::User(1000),
            &sched,
        );
        // Without privileges the clocks never change: same as default.
        let default = run_weak_scaling(
            MiniApp::CloverLeaf,
            &cfg,
            &fresh_v100_ranks(2),
            Caller::Root,
            &FrequencySchedule::Default,
        );
        assert!((unprivileged.energy_j - default.energy_j).abs() / default.energy_j < 0.05);
        assert!(privileged.energy_j < unprivileged.energy_j);
    }

    #[test]
    fn weak_scaling_time_grows_slowly() {
        let out4 = run_weak_scaling(
            MiniApp::MiniWeather,
            &small_cfg(4),
            &fresh_v100_ranks(4),
            Caller::Root,
            &FrequencySchedule::Default,
        );
        let out16 = run_weak_scaling(
            MiniApp::MiniWeather,
            &small_cfg(16),
            &fresh_v100_ranks(16),
            Caller::Root,
            &FrequencySchedule::Default,
        );
        // Weak scaling: same local problem, a bit more communication.
        assert!(out16.time_s >= out4.time_s);
        assert!(out16.time_s < out4.time_s * 1.5);
        // Energy scales with GPU count.
        assert!(out16.energy_j > 3.0 * out4.energy_j);
    }

    #[test]
    fn single_gpu_has_no_comm() {
        let out = run_weak_scaling(
            MiniApp::CloverLeaf,
            &small_cfg(1),
            &fresh_v100_ranks(1),
            Caller::Root,
            &FrequencySchedule::Default,
        );
        assert!(out.time_s > 0.0);
    }

    #[test]
    fn traced_run_records_every_rank_and_step() {
        let rec = Recorder::enabled();
        let cfg = small_cfg(2);
        let devs = fresh_v100_ranks(2);
        let out = run_weak_scaling_traced(
            MiniApp::CloverLeaf,
            &cfg,
            &devs,
            Caller::Root,
            &FrequencySchedule::Default,
            &rec,
        );
        let events = rec.drain();
        let steps: Vec<(u32, u32, u64, u64, f64)> = events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::ClusterStep {
                    rank,
                    step,
                    start_ns,
                    end_ns,
                    energy_j,
                } => Some((*rank, *step, *start_ns, *end_ns, *energy_j)),
                _ => None,
            })
            .collect();
        // 2 ranks x 3 steps, each a non-empty window with positive energy.
        assert_eq!(steps.len(), 6);
        let ranks: std::collections::BTreeSet<u32> = steps.iter().map(|s| s.0).collect();
        assert_eq!(ranks.len(), 2);
        assert!(steps.iter().all(|s| s.3 > s.2 && s.4 > 0.0));
        // Step compute energy is part of (but below) the run total, which
        // also includes idle and communication windows.
        let step_energy: f64 = steps.iter().map(|s| s.4).sum();
        assert!(step_energy > 0.0 && step_energy <= out.energy_j + 1e-9);

        let summary = synergy_telemetry::TelemetrySummary::from_events(&events, 0);
        assert_eq!(summary.cluster_steps, 6);
        assert_eq!(summary.cluster_ranks, 2);
        assert!((summary.cluster_energy_j - step_energy).abs() < 1e-12);
    }

    #[test]
    fn traced_clock_changes_surface_as_hal_calls() {
        let rec = Recorder::enabled();
        let cfg = small_cfg(2);
        let devs = fresh_v100_ranks(2);
        let clocks =
            synergy_sim::ClockConfig::new(877, devs[0].spec().freq_table.nearest_core(900));
        let _ = run_weak_scaling_traced(
            MiniApp::CloverLeaf,
            &cfg,
            &devs,
            Caller::Root,
            &FrequencySchedule::Coarse(clocks),
            &rec,
        );
        let summary = synergy_telemetry::TelemetrySummary::from_events(&rec.drain(), 0);
        // One set_clocks per kernel per step per rank, all as root, all ok.
        let kernels = MiniApp::CloverLeaf.kernel_irs().len() as u64;
        assert_eq!(summary.hal_calls, 2 * 3 * kernels);
        assert_eq!(summary.hal_failures, 0);
    }

    #[test]
    fn coarse_schedule_applies_one_frequency() {
        let cfg = small_cfg(2);
        let devs = fresh_v100_ranks(2);
        let clocks = synergy_sim::ClockConfig::new(877, devs[0].spec().freq_table.nearest_core(900));
        let out = run_weak_scaling(
            MiniApp::CloverLeaf,
            &cfg,
            &devs,
            Caller::Root,
            &FrequencySchedule::Coarse(clocks),
        );
        assert!(out.schedule.starts_with("coarse@"));
        // Exactly one clock change per device (same clocks each kernel).
        for d in &devs {
            assert_eq!(d.clock_sets(), 1);
        }
    }
}
