//! Communication model: an α–β (latency–bandwidth) model of the
//! Marconi-100 interconnect — Mellanox InfiniBand EDR in a DragonFly+
//! topology (Section 8.1).
//!
//! Each weak-scaling step ends with a halo exchange between neighbouring
//! ranks; its cost is `α · hops + bytes / β`. Hop count grows with the
//! node count the DragonFly+ way: intra-node, intra-group, then global
//! links — this is what bends the weak-scaling curves of Figure 10.

use serde::{Deserialize, Serialize};

/// α–β interconnect model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CommModel {
    /// Per-hop latency in nanoseconds.
    pub hop_latency_ns: u64,
    /// Link bandwidth in GB/s.
    pub bandwidth_gbps: f64,
    /// Software (MPI) overhead per message in nanoseconds.
    pub sw_overhead_ns: u64,
}

impl CommModel {
    /// Mellanox InfiniBand EDR (100 Gb/s ≈ 12.5 GB/s) with DragonFly+
    /// hop latencies, as on Marconi-100.
    pub fn edr_dragonfly() -> CommModel {
        CommModel {
            hop_latency_ns: 700,
            bandwidth_gbps: 12.5,
            sw_overhead_ns: 1_500,
        }
    }

    /// Time to move `bytes` over `hops` switch hops, in nanoseconds.
    pub fn transfer_ns(&self, bytes: f64, hops: u32) -> u64 {
        let serial = bytes / (self.bandwidth_gbps * 1e9) * 1e9;
        self.sw_overhead_ns + self.hop_latency_ns * hops as u64 + serial as u64
    }
}

/// DragonFly+ hop count for a job spanning `nodes` nodes: GPUs on one node
/// talk over NVLink/PCIe (1 hop), nodes within a group over the local
/// switch (2 hops), larger jobs cross global links (3 hops). Groups hold
/// 16 nodes on Marconi-100.
pub fn hops_for(nodes: usize) -> u32 {
    match nodes {
        0 | 1 => 1,
        2..=16 => 2,
        _ => 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_scales_with_bytes() {
        let m = CommModel::edr_dragonfly();
        let small = m.transfer_ns(1e3, 2);
        let large = m.transfer_ns(1e6, 2);
        assert!(large > small);
        // 1 MB at 12.5 GB/s = 80 µs of serialization.
        assert!((large as i64 - small as i64 - 79_920).abs() < 200);
    }

    #[test]
    fn latency_floor_for_tiny_messages() {
        let m = CommModel::edr_dragonfly();
        let t = m.transfer_ns(8.0, 3);
        assert!(t >= m.sw_overhead_ns + 3 * m.hop_latency_ns);
    }

    #[test]
    fn hop_counts_follow_dragonfly() {
        assert_eq!(hops_for(1), 1);
        assert_eq!(hops_for(2), 2);
        assert_eq!(hops_for(16), 2);
        assert_eq!(hops_for(17), 3);
    }

    #[test]
    fn more_hops_cost_more() {
        let m = CommModel::edr_dragonfly();
        assert!(m.transfer_ns(1e5, 3) > m.transfer_ns(1e5, 1));
    }
}
