//! The asynchronous fine-grained profiler of Section 4.2.
//!
//! *"Using an asynchronous thread to poll the kernel status we sample the
//! power of a kernel until it is complete."* — [`KernelProfiler`] is that
//! thread: started at submission, it polls the event's execution status
//! and, once the kernel completes, reads the power samples covering its
//! execution window (at the board's sensor interval, with sensor noise)
//! and integrates them into the measured energy.
//!
//! The poll sleep is derived from the board's power-sensor interval
//! ([`KernelProfiler::poll_interval_ns`]) rather than hard-coded: polling
//! much faster than the sensor updates buys nothing, polling much slower
//! misses short kernels. Each measurement window can be recorded into a
//! telemetry [`Recorder`] ([`KernelProfiler::start_with`]), including the
//! configured interval and the poll cadence actually achieved.

use crate::event::{Event, EventStatus};
use std::fmt;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use synergy_sim::{DeviceSpec, PowerTrace, SimDevice};
use synergy_telemetry::{EventKind, Recorder};

/// How many status polls should fit into one power-sensor interval: the
/// poller needs to notice completion well within a sample period so the
/// window boundaries are sharp, without busy-spinning.
const POLLS_PER_SAMPLE_INTERVAL: u64 = 300;

/// Lower clamp for the derived poll sleep (ns) — below this the poller is
/// effectively a spin loop.
const MIN_POLL_INTERVAL_NS: u64 = 10_000;

/// Upper clamp for the derived poll sleep (ns) — above this short kernels
/// would complete entirely between two polls.
const MAX_POLL_INTERVAL_NS: u64 = 1_000_000;

/// The profiler's polling thread panicked (it never produced a report).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfilerError(pub String);

impl fmt::Display for ProfilerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "profiler thread panicked: {}", self.0)
    }
}

impl std::error::Error for ProfilerError {}

/// A handle to an in-flight asynchronous kernel-energy measurement.
pub struct KernelProfiler {
    handle: JoinHandle<ProfileReport>,
}

/// The profiler's result.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// Sampled (measured) kernel energy in joules.
    pub measured_energy_j: f64,
    /// Exact kernel energy in joules (ground truth from the trace).
    pub exact_energy_j: f64,
    /// Number of power samples the measurement integrated.
    pub samples: usize,
    /// How many poll iterations saw the kernel still incomplete.
    pub polls_while_running: usize,
    /// The configured sleep between status polls, wall nanoseconds
    /// (derived from the board's power-sensor interval).
    pub poll_interval_ns: u64,
    /// Mean wall time between polls actually achieved (0 when the kernel
    /// was already complete at the first poll).
    pub poll_cadence_ns: u64,
}

impl ProfileReport {
    /// Relative measurement error versus ground truth.
    pub fn relative_error(&self) -> f64 {
        if self.exact_energy_j == 0.0 {
            0.0
        } else {
            ((self.measured_energy_j - self.exact_energy_j) / self.exact_energy_j).abs()
        }
    }
}

impl KernelProfiler {
    /// The poll sleep used on a board: the power-sensor interval divided
    /// by [`POLLS_PER_SAMPLE_INTERVAL`], clamped to
    /// `[`[`MIN_POLL_INTERVAL_NS`]`, `[`MAX_POLL_INTERVAL_NS`]`]`. For
    /// every current spec (15 ms sensors) this is 50 µs — the value that
    /// used to be hard-coded.
    pub fn poll_interval_ns(spec: &DeviceSpec) -> u64 {
        (spec.power_sample_interval_ns / POLLS_PER_SAMPLE_INTERVAL)
            .clamp(MIN_POLL_INTERVAL_NS, MAX_POLL_INTERVAL_NS)
    }

    /// Start profiling `event` on `device`. The returned handle joins to
    /// the report once the kernel completes.
    pub fn start(device: Arc<SimDevice>, event: Event) -> KernelProfiler {
        KernelProfiler::start_with(device, event, Recorder::disabled())
    }

    /// [`KernelProfiler::start`] with a telemetry recorder: the completed
    /// measurement window is recorded as one
    /// [`EventKind::ProfilerWindow`] event, timestamped at the window's
    /// end on the device's virtual timeline.
    pub fn start_with(device: Arc<SimDevice>, event: Event, recorder: Recorder) -> KernelProfiler {
        let handle = std::thread::spawn(move || {
            let poll_interval_ns = KernelProfiler::poll_interval_ns(device.spec());
            let poll_start = Instant::now();
            let mut polls = 0usize;
            // Poll the kernel status, as the paper's profiling thread does.
            while event.status() != EventStatus::Complete {
                polls += 1;
                std::thread::sleep(Duration::from_nanos(poll_interval_ns));
            }
            // Mean wall time per poll actually achieved — sleep overshoot
            // and scheduling noise make this larger than the configured
            // interval; the trace records both.
            let poll_cadence_ns = if polls > 0 {
                (poll_start.elapsed().as_nanos() as u64) / polls as u64
            } else {
                0
            };
            let rec = event.execution().expect("event completed");
            let interval = device.spec().power_sample_interval_ns;
            let trace = device.trace_snapshot();
            let noise = device.noise();
            let samples = trace.sample(rec.start_ns, rec.end_ns, interval, Some(&noise));
            let measured = PowerTrace::sampled_energy_j(&samples, interval, rec.end_ns);
            recorder.record_with(rec.end_ns, || EventKind::ProfilerWindow {
                kernel: rec.name.clone(),
                start_ns: rec.start_ns,
                end_ns: rec.end_ns,
                polls: polls as u64,
                samples: samples.len() as u64,
                measured_j: measured,
                exact_j: rec.energy_j,
                poll_interval_ns,
                poll_cadence_ns,
            });
            ProfileReport {
                measured_energy_j: measured,
                exact_energy_j: rec.energy_j,
                samples: samples.len(),
                polls_while_running: polls,
                poll_interval_ns,
                poll_cadence_ns,
            }
        });
        KernelProfiler { handle }
    }

    /// Wait for the measurement. A panicking profiler thread (e.g. the
    /// event was dropped without completing) surfaces as a
    /// [`ProfilerError`] instead of poisoning the caller.
    pub fn join(self) -> Result<ProfileReport, ProfilerError> {
        self.handle.join().map_err(|panic| {
            let msg = if let Some(s) = panic.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = panic.downcast_ref::<String>() {
                s.clone()
            } else {
                "unknown panic payload".to_string()
            };
            ProfilerError(msg)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::Queue;
    use synergy_kernel::{Inst, IrBuilder};
    use synergy_sim::DeviceSpec;

    #[test]
    fn profiler_matches_post_hoc_measurement() {
        let dev = SimDevice::new(DeviceSpec::v100(), 0);
        let q = Queue::new(Arc::clone(&dev));
        let ir = IrBuilder::new()
            .ops(Inst::GlobalLoad, 1)
            .loop_n(1 << 14, |b| b.ops(Inst::FloatMul, 1).ops(Inst::FloatAdd, 1))
            .ops(Inst::GlobalStore, 1)
            .build("profiled");
        let ev = q.submit(|h| h.parallel_for_modeled(1 << 24, &ir));
        let profiler = KernelProfiler::start(Arc::clone(&dev), ev.clone());
        let report = profiler.join().unwrap();
        let post_hoc = q.kernel_energy_consumption(&ev);
        assert_eq!(report.measured_energy_j, post_hoc);
        assert!(report.exact_energy_j > 0.0);
        assert!(report.samples > 1);
    }

    #[test]
    fn long_kernels_profile_within_tolerance() {
        let dev = SimDevice::new(DeviceSpec::v100(), 0);
        let q = Queue::new(Arc::clone(&dev));
        let ir = IrBuilder::new()
            .ops(Inst::GlobalLoad, 1)
            .loop_n(1 << 16, |b| b.ops(Inst::FloatMul, 1).ops(Inst::FloatAdd, 1))
            .ops(Inst::GlobalStore, 1)
            .build("long");
        let ev = q.submit(|h| h.parallel_for_modeled(1 << 24, &ir));
        let report = KernelProfiler::start(dev, ev).join().unwrap();
        assert!(
            report.relative_error() < 0.05,
            "error {}",
            report.relative_error()
        );
    }

    #[test]
    fn profiler_observes_running_kernels_with_real_compute() {
        // Real host numerics take real wall time, so the poller genuinely
        // runs concurrently with the kernel.
        let dev = SimDevice::new(DeviceSpec::v100(), 0);
        let q = Queue::new(Arc::clone(&dev));
        let ir = IrBuilder::new()
            .ops(Inst::FloatMul, 8)
            .build("spin");
        let ev = q.submit(|h| {
            h.parallel_for(1 << 22, &ir, |i| {
                // A little real work per item.
                let mut acc = i as f32;
                for _ in 0..16 {
                    acc = acc * 1.0000001 + 1.0;
                }
                std::hint::black_box(acc);
            });
        });
        let report = KernelProfiler::start(dev, ev).join().unwrap();
        assert!(report.exact_energy_j > 0.0);
        // polls_while_running is best-effort (scheduling dependent) — the
        // report itself proves the thread ran to completion either way.
    }

    #[test]
    fn multiple_profilers_run_concurrently() {
        let dev = SimDevice::new(DeviceSpec::v100(), 0);
        let q = Queue::new(Arc::clone(&dev));
        let ir = IrBuilder::new()
            .ops(Inst::GlobalLoad, 2)
            .loop_n(1 << 12, |b| b.ops(Inst::FloatAdd, 1))
            .ops(Inst::GlobalStore, 1)
            .build("multi");
        let profilers: Vec<KernelProfiler> = (0..4)
            .map(|_| {
                let ev = q.submit(|h| h.parallel_for_modeled(1 << 22, &ir));
                KernelProfiler::start(Arc::clone(&dev), ev)
            })
            .collect();
        for p in profilers {
            let r = p.join().unwrap();
            assert!(r.measured_energy_j > 0.0);
        }
    }

    #[test]
    fn poll_interval_derives_from_the_sensor_interval() {
        let mut spec = DeviceSpec::v100();
        // 15 ms sensor / 300 = the historical 50 µs.
        assert_eq!(KernelProfiler::poll_interval_ns(&spec), 50_000);
        // A (hypothetical) 1 µs sensor clamps at the 10 µs floor.
        spec.power_sample_interval_ns = 1_000;
        assert_eq!(KernelProfiler::poll_interval_ns(&spec), MIN_POLL_INTERVAL_NS);
        // A 10 s sensor clamps at the 1 ms ceiling.
        spec.power_sample_interval_ns = 10_000_000_000;
        assert_eq!(KernelProfiler::poll_interval_ns(&spec), MAX_POLL_INTERVAL_NS);
        // Every shipped spec uses 15 ms sensors today.
        for s in [
            DeviceSpec::a100(),
            DeviceSpec::mi100(),
            DeviceSpec::titan_x(),
        ] {
            assert_eq!(KernelProfiler::poll_interval_ns(&s), 50_000);
        }
    }

    #[test]
    fn profiler_window_lands_in_the_trace() {
        let rec = Recorder::enabled();
        let dev = SimDevice::new(DeviceSpec::v100(), 0);
        let q = Queue::new(Arc::clone(&dev));
        let ir = IrBuilder::new()
            .ops(Inst::GlobalLoad, 1)
            .loop_n(1 << 14, |b| b.ops(Inst::FloatMul, 1))
            .ops(Inst::GlobalStore, 1)
            .build("traced");
        let ev = q.submit(|h| h.parallel_for_modeled(1 << 22, &ir));
        let report = KernelProfiler::start_with(dev, ev.clone(), rec.clone())
            .join()
            .unwrap();
        let window = rec
            .drain()
            .into_iter()
            .find_map(|e| match e.kind {
                EventKind::ProfilerWindow {
                    kernel,
                    polls,
                    samples,
                    measured_j,
                    exact_j,
                    poll_interval_ns,
                    ..
                } => Some((kernel, polls, samples, measured_j, exact_j, poll_interval_ns)),
                _ => None,
            })
            .expect("a ProfilerWindow event");
        assert_eq!(window.0, "traced");
        assert_eq!(window.1, report.polls_while_running as u64);
        assert_eq!(window.2, report.samples as u64);
        assert_eq!(window.3, report.measured_energy_j);
        assert_eq!(window.4, report.exact_energy_j);
        assert_eq!(window.5, 50_000);
    }

    #[test]
    fn join_surfaces_profiler_panics_as_errors() {
        // An event that completes without a record makes the profiler
        // thread panic on `execution().expect(...)`; join must return Err
        // rather than propagate the panic.
        let dev = SimDevice::new(DeviceSpec::v100(), 0);
        let ev = Event::new();
        let profiler = KernelProfiler::start(dev, ev.clone());
        ev.fail(synergy_hal::HalError::Uninitialized);
        let err = profiler.join().unwrap_err();
        assert!(err.to_string().contains("profiler thread panicked"));
    }
}
