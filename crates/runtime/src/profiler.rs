//! The asynchronous fine-grained profiler of Section 4.2.
//!
//! *"Using an asynchronous thread to poll the kernel status we sample the
//! power of a kernel until it is complete."* — [`KernelProfiler`] is that
//! thread: started at submission, it polls the event's execution status
//! and, once the kernel completes, reads the power samples covering its
//! execution window (at the board's sensor interval, with sensor noise)
//! and integrates them into the measured energy.

use crate::event::{Event, EventStatus};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use synergy_sim::{PowerTrace, SimDevice};

/// A handle to an in-flight asynchronous kernel-energy measurement.
pub struct KernelProfiler {
    handle: JoinHandle<ProfileReport>,
}

/// The profiler's result.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// Sampled (measured) kernel energy in joules.
    pub measured_energy_j: f64,
    /// Exact kernel energy in joules (ground truth from the trace).
    pub exact_energy_j: f64,
    /// Number of power samples the measurement integrated.
    pub samples: usize,
    /// How many poll iterations saw the kernel still incomplete.
    pub polls_while_running: usize,
}

impl ProfileReport {
    /// Relative measurement error versus ground truth.
    pub fn relative_error(&self) -> f64 {
        if self.exact_energy_j == 0.0 {
            0.0
        } else {
            ((self.measured_energy_j - self.exact_energy_j) / self.exact_energy_j).abs()
        }
    }
}

impl KernelProfiler {
    /// Start profiling `event` on `device`. The returned handle joins to
    /// the report once the kernel completes.
    pub fn start(device: Arc<SimDevice>, event: Event) -> KernelProfiler {
        let handle = std::thread::spawn(move || {
            let mut polls = 0usize;
            // Poll the kernel status, as the paper's profiling thread does.
            while event.status() != EventStatus::Complete {
                polls += 1;
                std::thread::sleep(Duration::from_micros(50));
            }
            let rec = event.execution().expect("event completed");
            let interval = device.spec().power_sample_interval_ns;
            let trace = device.trace_snapshot();
            let noise = device.noise();
            let samples = trace.sample(rec.start_ns, rec.end_ns, interval, Some(&noise));
            let measured = PowerTrace::sampled_energy_j(&samples, interval, rec.end_ns);
            ProfileReport {
                measured_energy_j: measured,
                exact_energy_j: rec.energy_j,
                samples: samples.len(),
                polls_while_running: polls,
            }
        });
        KernelProfiler { handle }
    }

    /// Wait for the measurement.
    pub fn join(self) -> ProfileReport {
        self.handle.join().expect("profiler thread completes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::Queue;
    use synergy_kernel::{Inst, IrBuilder};
    use synergy_sim::DeviceSpec;

    #[test]
    fn profiler_matches_post_hoc_measurement() {
        let dev = SimDevice::new(DeviceSpec::v100(), 0);
        let q = Queue::new(Arc::clone(&dev));
        let ir = IrBuilder::new()
            .ops(Inst::GlobalLoad, 1)
            .loop_n(1 << 14, |b| b.ops(Inst::FloatMul, 1).ops(Inst::FloatAdd, 1))
            .ops(Inst::GlobalStore, 1)
            .build("profiled");
        let ev = q.submit(|h| h.parallel_for_modeled(1 << 24, &ir));
        let profiler = KernelProfiler::start(Arc::clone(&dev), ev.clone());
        let report = profiler.join();
        let post_hoc = q.kernel_energy_consumption(&ev);
        assert_eq!(report.measured_energy_j, post_hoc);
        assert!(report.exact_energy_j > 0.0);
        assert!(report.samples > 1);
    }

    #[test]
    fn long_kernels_profile_within_tolerance() {
        let dev = SimDevice::new(DeviceSpec::v100(), 0);
        let q = Queue::new(Arc::clone(&dev));
        let ir = IrBuilder::new()
            .ops(Inst::GlobalLoad, 1)
            .loop_n(1 << 16, |b| b.ops(Inst::FloatMul, 1).ops(Inst::FloatAdd, 1))
            .ops(Inst::GlobalStore, 1)
            .build("long");
        let ev = q.submit(|h| h.parallel_for_modeled(1 << 24, &ir));
        let report = KernelProfiler::start(dev, ev).join();
        assert!(
            report.relative_error() < 0.05,
            "error {}",
            report.relative_error()
        );
    }

    #[test]
    fn profiler_observes_running_kernels_with_real_compute() {
        // Real host numerics take real wall time, so the poller genuinely
        // runs concurrently with the kernel.
        let dev = SimDevice::new(DeviceSpec::v100(), 0);
        let q = Queue::new(Arc::clone(&dev));
        let ir = IrBuilder::new()
            .ops(Inst::FloatMul, 8)
            .build("spin");
        let ev = q.submit(|h| {
            h.parallel_for(1 << 22, &ir, |i| {
                // A little real work per item.
                let mut acc = i as f32;
                for _ in 0..16 {
                    acc = acc * 1.0000001 + 1.0;
                }
                std::hint::black_box(acc);
            });
        });
        let report = KernelProfiler::start(dev, ev).join();
        assert!(report.exact_energy_j > 0.0);
        // polls_while_running is best-effort (scheduling dependent) — the
        // report itself proves the thread ran to completion either way.
    }

    #[test]
    fn multiple_profilers_run_concurrently() {
        let dev = SimDevice::new(DeviceSpec::v100(), 0);
        let q = Queue::new(Arc::clone(&dev));
        let ir = IrBuilder::new()
            .ops(Inst::GlobalLoad, 2)
            .loop_n(1 << 12, |b| b.ops(Inst::FloatAdd, 1))
            .ops(Inst::GlobalStore, 1)
            .build("multi");
        let profilers: Vec<KernelProfiler> = (0..4)
            .map(|_| {
                let ev = q.submit(|h| h.parallel_for_modeled(1 << 22, &ir));
                KernelProfiler::start(Arc::clone(&dev), ev)
            })
            .collect();
        for p in profilers {
            let r = p.join();
            assert!(r.measured_energy_j > 0.0);
        }
    }
}
