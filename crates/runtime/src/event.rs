//! Events: the handle returned by every kernel submission.
//!
//! A SYCL event exposes the execution status of its command (submitted,
//! running, complete); SYnergy leans on that to run its fine-grained
//! profiling thread. Our event additionally carries the execution record
//! (device-timeline window, clocks, exact energy) once complete, plus the
//! outcome of any frequency change requested for the kernel.

use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use synergy_hal::HalError;
use synergy_sim::KernelExecution;

/// Execution status of a submitted command (SYCL
/// `info::event_command_status`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventStatus {
    /// Queued, not yet picked up by the device.
    Submitted,
    /// Executing on the device.
    Running,
    /// Finished.
    Complete,
}

#[derive(Debug)]
struct EventState {
    status: EventStatus,
    record: Option<KernelExecution>,
    clock_set_error: Option<HalError>,
}

/// A shareable handle to one kernel submission.
#[derive(Debug, Clone)]
pub struct Event {
    inner: Arc<(Mutex<EventState>, Condvar)>,
}

impl Default for Event {
    fn default() -> Self {
        Event::new()
    }
}

impl Event {
    /// A fresh event in `Submitted` state.
    pub fn new() -> Event {
        Event {
            inner: Arc::new((
                Mutex::new(EventState {
                    status: EventStatus::Submitted,
                    record: None,
                    clock_set_error: None,
                }),
                Condvar::new(),
            )),
        }
    }

    /// Current status.
    pub fn status(&self) -> EventStatus {
        self.inner.0.lock().status
    }

    /// Block until the command completes.
    pub fn wait(&self) {
        let (lock, cvar) = &*self.inner;
        let mut st = lock.lock();
        while st.status != EventStatus::Complete {
            cvar.wait(&mut st);
        }
    }

    /// Block until complete, then surface any frequency-change failure the
    /// submission encountered (SYCL `wait_and_throw` flavour).
    pub fn wait_and_throw(&self) -> Result<(), HalError> {
        self.wait();
        match self.inner.0.lock().clock_set_error.clone() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// The execution record, once complete.
    pub fn execution(&self) -> Option<KernelExecution> {
        self.inner.0.lock().record.clone()
    }

    /// The frequency-change failure for this submission, if any.
    pub fn clock_set_error(&self) -> Option<HalError> {
        self.inner.0.lock().clock_set_error.clone()
    }

    // --- producer side (crate-internal) ------------------------------------

    pub(crate) fn mark_running(&self) {
        self.inner.0.lock().status = EventStatus::Running;
    }

    pub(crate) fn set_clock_error(&self, e: HalError) {
        self.inner.0.lock().clock_set_error = Some(e);
    }

    pub(crate) fn complete(&self, record: KernelExecution) {
        let (lock, cvar) = &*self.inner;
        let mut st = lock.lock();
        st.record = Some(record);
        st.status = EventStatus::Complete;
        cvar.notify_all();
    }

    /// Terminate the event without an execution record — the submission
    /// never reached the device (e.g. the queue worker is gone). Waiters
    /// are released; `execution()` stays `None` and `wait_and_throw`
    /// surfaces `error`.
    pub(crate) fn fail(&self, error: HalError) {
        let (lock, cvar) = &*self.inner;
        let mut st = lock.lock();
        st.clock_set_error = Some(error);
        st.status = EventStatus::Complete;
        cvar.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synergy_sim::{ClockConfig, KernelTiming};

    fn record() -> KernelExecution {
        KernelExecution {
            name: "k".into(),
            start_ns: 0,
            end_ns: 100,
            energy_j: 1.0,
            clocks: ClockConfig::new(877, 1312),
            timing: KernelTiming {
                launch_ns: 10,
                exec_ns: 90,
                exec_power_w: 100.0,
                t_compute_s: 1.0,
                t_memory_s: 0.5,
                util_core: 1.0,
                util_mem: 0.5,
            },
        }
    }

    #[test]
    fn lifecycle() {
        let e = Event::new();
        assert_eq!(e.status(), EventStatus::Submitted);
        e.mark_running();
        assert_eq!(e.status(), EventStatus::Running);
        e.complete(record());
        assert_eq!(e.status(), EventStatus::Complete);
        assert_eq!(e.execution().unwrap().name, "k");
    }

    #[test]
    fn wait_from_another_thread() {
        let e = Event::new();
        let e2 = e.clone();
        let h = std::thread::spawn(move || {
            e2.wait();
            e2.execution().unwrap().energy_j
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        e.complete(record());
        assert_eq!(h.join().unwrap(), 1.0);
    }

    #[test]
    fn wait_and_throw_surfaces_clock_errors() {
        let e = Event::new();
        e.set_clock_error(HalError::NoPermission);
        e.complete(record());
        assert_eq!(e.wait_and_throw().unwrap_err(), HalError::NoPermission);

        let ok = Event::new();
        ok.complete(record());
        assert!(ok.wait_and_throw().is_ok());
    }

    #[test]
    fn failed_event_releases_waiters_without_a_record() {
        let e = Event::new();
        e.fail(HalError::Uninitialized);
        e.wait();
        assert_eq!(e.status(), EventStatus::Complete);
        assert!(e.execution().is_none());
        assert_eq!(e.wait_and_throw().unwrap_err(), HalError::Uninitialized);
    }

    #[test]
    fn wait_on_complete_event_returns_immediately() {
        let e = Event::new();
        e.complete(record());
        e.wait();
        e.wait();
    }
}
