//! The command-group handler: where kernels are described.
//!
//! A SYCL command group binds accessors and calls `parallel_for`. Here the
//! handler records (a) the kernel IR and launch size — what the device
//! model times and the feature pass analyzes — and (b) a host closure that
//! actually computes the result with Rayon, so examples and tests observe
//! real numerics.

use rayon::prelude::*;
use synergy_kernel::KernelIr;

/// Work submitted by one command group.
pub(crate) struct CommandGroup {
    /// Kernel IR (for timing/energy and the model key).
    pub ir: KernelIr,
    /// Number of work-items.
    pub work_items: u64,
    /// Host computation (runs once, internally parallel).
    pub host: Option<Box<dyn FnOnce() + Send>>,
}

/// The command-group handler passed to `Queue::submit` closures.
#[derive(Default)]
pub struct Handler {
    pub(crate) group: Option<CommandGroup>,
}

impl Handler {
    pub(crate) fn new() -> Handler {
        Handler::default()
    }

    /// Launch `range` work-items of the kernel described by `ir`; `body`
    /// is invoked once per work-item (in parallel) to produce the actual
    /// result.
    ///
    /// Calling `parallel_for` twice in one command group panics, as in
    /// SYCL (one action per command group).
    pub fn parallel_for<F>(&mut self, range: usize, ir: &KernelIr, body: F)
    where
        F: Fn(usize) + Send + Sync + 'static,
    {
        assert!(
            self.group.is_none(),
            "a command group may contain exactly one parallel_for"
        );
        let items = range as u64;
        self.group = Some(CommandGroup {
            ir: ir.clone(),
            work_items: items,
            host: Some(Box::new(move || {
                (0..range).into_par_iter().for_each(body);
            })),
        });
    }

    /// Launch a kernel for timing/energy only, with no host computation —
    /// used by benchmarks that sweep thousands of configurations where the
    /// numeric result is irrelevant.
    pub fn parallel_for_modeled(&mut self, range: usize, ir: &KernelIr) {
        assert!(
            self.group.is_none(),
            "a command group may contain exactly one parallel_for"
        );
        self.group = Some(CommandGroup {
            ir: ir.clone(),
            work_items: range as u64,
            host: None,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use synergy_kernel::IrBuilder;

    #[test]
    fn records_ir_and_items() {
        let ir = IrBuilder::new().build("k");
        let mut h = Handler::new();
        h.parallel_for(128, &ir, |_i| {});
        let g = h.group.unwrap();
        assert_eq!(g.ir.name, "k");
        assert_eq!(g.work_items, 128);
        assert!(g.host.is_some());
    }

    #[test]
    fn host_closure_runs_per_item() {
        let ir = IrBuilder::new().build("count");
        let counter = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&counter);
        let mut h = Handler::new();
        h.parallel_for(1000, &ir, move |_i| {
            c2.fetch_add(1, Ordering::Relaxed);
        });
        (h.group.unwrap().host.unwrap())();
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn modeled_launch_has_no_host_side() {
        let ir = IrBuilder::new().build("m");
        let mut h = Handler::new();
        h.parallel_for_modeled(64, &ir);
        let g = h.group.unwrap();
        assert!(g.host.is_none());
        assert_eq!(g.work_items, 64);
    }

    #[test]
    #[should_panic(expected = "exactly one parallel_for")]
    fn double_parallel_for_panics() {
        let ir = IrBuilder::new().build("k");
        let mut h = Handler::new();
        h.parallel_for(1, &ir, |_| {});
        h.parallel_for(1, &ir, |_| {});
    }
}
