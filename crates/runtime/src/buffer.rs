//! Buffers and accessors: the data side of the SYCL-like API.
//!
//! Kernels in this reproduction really execute on the host (via Rayon), so
//! buffers must support concurrent element-disjoint reads and writes from
//! worker threads. Elements are stored in `crossbeam::atomic::AtomicCell`s,
//! which are lock-free for the word-sized `Copy` types kernels use — safe
//! parallel access without `unsafe` aliasing games.

use crossbeam::atomic::AtomicCell;
use std::sync::Arc;

/// A device buffer of `Copy` elements.
///
/// Cloning a buffer is cheap and shares the storage, mirroring SYCL buffer
/// semantics where accessors alias one allocation.
///
/// ```
/// use synergy_rt::Buffer;
///
/// let b = Buffer::from_slice(&[1.0f32, 2.0, 3.0]);
/// let acc = b.accessor();
/// acc.set(1, 20.0);
/// assert_eq!(b.to_vec(), vec![1.0, 20.0, 3.0]);
/// ```
#[derive(Debug, Clone)]
pub struct Buffer<T: Copy> {
    cells: Arc<Vec<AtomicCell<T>>>,
}

impl<T: Copy> Buffer<T> {
    /// Create a buffer holding a copy of `data`.
    pub fn from_slice(data: &[T]) -> Buffer<T> {
        Buffer {
            cells: Arc::new(data.iter().copied().map(AtomicCell::new).collect()),
        }
    }

    /// Create a buffer of `len` copies of `value`.
    pub fn filled(value: T, len: usize) -> Buffer<T> {
        Buffer {
            cells: Arc::new((0..len).map(|_| AtomicCell::new(value)).collect()),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Snapshot the contents to a host vector.
    pub fn to_vec(&self) -> Vec<T> {
        self.cells.iter().map(|c| c.load()).collect()
    }

    /// An accessor for use inside kernels (read and write).
    pub fn accessor(&self) -> Accessor<T> {
        Accessor {
            cells: Arc::clone(&self.cells),
        }
    }

    /// Overwrite the buffer from a host slice (lengths must match).
    pub fn write_from(&self, data: &[T]) {
        assert_eq!(data.len(), self.len(), "length mismatch");
        for (cell, &v) in self.cells.iter().zip(data) {
            cell.store(v);
        }
    }
}

impl<T: Copy + Default> Buffer<T> {
    /// Create a zero/default-initialized buffer of `len` elements.
    pub fn zeros(len: usize) -> Buffer<T> {
        Buffer::filled(T::default(), len)
    }
}

/// A kernel-side view of a buffer. `get`/`set` are element-atomic; kernels
/// are expected (as on a GPU) to write disjoint indices.
#[derive(Debug, Clone)]
pub struct Accessor<T: Copy> {
    cells: Arc<Vec<AtomicCell<T>>>,
}

impl<T: Copy> Accessor<T> {
    /// Read element `i`.
    #[inline]
    pub fn get(&self, i: usize) -> T {
        self.cells[i].load()
    }

    /// Write element `i`.
    #[inline]
    pub fn set(&self, i: usize, v: T) {
        self.cells[i].store(v);
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn roundtrip() {
        let b = Buffer::from_slice(&[1.0f32, 2.0, 3.0]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.to_vec(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn zeros_and_filled() {
        let z: Buffer<f64> = Buffer::zeros(4);
        assert_eq!(z.to_vec(), vec![0.0; 4]);
        let f = Buffer::filled(7u32, 2);
        assert_eq!(f.to_vec(), vec![7, 7]);
    }

    #[test]
    fn accessor_shares_storage() {
        let b = Buffer::from_slice(&[0i32; 8]);
        let acc = b.accessor();
        acc.set(3, 42);
        assert_eq!(b.to_vec()[3], 42);
    }

    #[test]
    fn parallel_disjoint_writes() {
        let b: Buffer<f64> = Buffer::zeros(10_000);
        let acc = b.accessor();
        (0..10_000usize).into_par_iter().for_each(|i| {
            acc.set(i, i as f64 * 2.0);
        });
        let v = b.to_vec();
        assert_eq!(v[0], 0.0);
        assert_eq!(v[9999], 19998.0);
    }

    #[test]
    fn write_from_host() {
        let b: Buffer<u8> = Buffer::zeros(3);
        b.write_from(&[9, 8, 7]);
        assert_eq!(b.to_vec(), vec![9, 8, 7]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn write_from_wrong_length() {
        let b: Buffer<u8> = Buffer::zeros(3);
        b.write_from(&[1]);
    }

    #[test]
    fn atomic_cell_is_lockfree_for_kernel_types() {
        assert!(AtomicCell::<f32>::is_lock_free());
        assert!(AtomicCell::<f64>::is_lock_free());
        assert!(AtomicCell::<u32>::is_lock_free());
        assert!(AtomicCell::<i64>::is_lock_free());
    }
}
