//! The `synergy::queue` analogue — the paper's main programming-interface
//! contribution (Section 4).
//!
//! A queue wraps a device with energy capabilities:
//!
//! * **coarse-grained profiling** — device energy accumulated since the
//!   queue was constructed ([`Queue::device_energy_consumption`]);
//! * **fine-grained profiling** — per-kernel energy measured by sampling
//!   the board power over the kernel's execution window, exactly like the
//!   paper's asynchronous polling thread
//!   ([`Queue::kernel_energy_consumption`]);
//! * **frequency scaling** — per-queue fixed clocks (Listing 2), per-kernel
//!   explicit clocks (Listing 4), or per-kernel energy targets resolved
//!   through the compile-time [`TargetRegistry`] (Listing 3).
//!
//! Submissions run in order on a dedicated worker thread; kernels advance
//! the device's virtual timeline and execute their host computation with
//! Rayon. As in Section 4.4, the frequency for a kernel is set in the
//! command group before the kernel launches, and each vendor-library clock
//! change costs real (virtual) time.

use crate::event::Event;
use crate::handler::{CommandGroup, Handler};
use crate::registry::TargetRegistry;
use crossbeam::channel::{unbounded, Sender};
use std::fmt;
use std::sync::Arc;
use std::thread::JoinHandle;
use synergy_hal::{open_device, Caller, DeviceManagement, HalError, InstrumentedManagement};
use synergy_kernel::extract;
use synergy_metrics::EnergyTarget;
use synergy_sim::{ClockConfig, PowerTrace, SimDevice, Workload};
use synergy_telemetry::{Clocks, EventKind, Recorder};

/// Errors from the queue's worker lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueError {
    /// The worker thread panicked (a host closure blew up); queued
    /// submissions after the panic were failed, not run.
    WorkerPanicked,
}

impl fmt::Display for QueueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueueError::WorkerPanicked => write!(f, "queue worker thread panicked"),
        }
    }
}

impl std::error::Error for QueueError {}

fn tele_clocks(c: ClockConfig) -> Clocks {
    Clocks::new(c.mem_mhz, c.core_mhz)
}

/// How a submission wants its clocks handled.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ClockRequest {
    /// Use the queue's fixed clocks, or the device default if none.
    Inherit,
    /// Explicit per-kernel clocks (Listing 4).
    Explicit(ClockConfig),
    /// Energy target resolved through the registry (Listing 3).
    Target(EnergyTarget),
}

enum Msg {
    Run {
        group: CommandGroup,
        clocks: ClockRequest,
        event: Event,
    },
    Flush(Sender<()>),
}

struct QueueShared {
    mgmt: Arc<dyn DeviceManagement>,
    caller: Caller,
    registry: Option<Arc<TargetRegistry>>,
    fixed_clocks: Option<ClockConfig>,
    start_energy_j: f64,
    kernel_log: parking_lot::Mutex<Vec<synergy_sim::KernelExecution>>,
    telemetry: Recorder,
}

/// An in-order, energy-aware queue onto one device.
pub struct Queue {
    shared: Arc<QueueShared>,
    sender: Option<Sender<Msg>>,
    worker: Option<JoinHandle<()>>,
}

/// Builder for [`Queue`] (covers all the constructor shapes of Section 4.3).
pub struct QueueBuilder {
    device: Arc<SimDevice>,
    caller: Caller,
    fixed_clocks: Option<ClockConfig>,
    registry: Option<Arc<TargetRegistry>>,
    telemetry: Recorder,
}

impl QueueBuilder {
    /// Run management calls as `caller` (default: unprivileged uid 1000).
    pub fn caller(mut self, caller: Caller) -> Self {
        self.caller = caller;
        self
    }

    /// Fix (mem, core) clocks for every kernel submitted to this queue —
    /// the `synergy::queue q{1215, 210, gpu_selector_v}` form of Listing 2.
    pub fn frequency(mut self, mem_mhz: u32, core_mhz: u32) -> Self {
        self.fixed_clocks = Some(ClockConfig::new(mem_mhz, core_mhz));
        self
    }

    /// Attach the compile-time target registry so kernels can be submitted
    /// with energy targets.
    pub fn registry(mut self, registry: Arc<TargetRegistry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Record this queue's activity (submissions, clock changes, kernel
    /// completions, management calls) into `recorder`. The default is the
    /// disabled recorder, which costs one branch per would-be event.
    pub fn telemetry(mut self, recorder: Recorder) -> Self {
        self.telemetry = recorder;
        self
    }

    /// Construct the queue and start its worker.
    pub fn build(self) -> Queue {
        // With a live recorder the management handle is decorated so HAL
        // calls land in the trace too; disabled recorders skip the wrapper.
        let mgmt = InstrumentedManagement::wrap(open_device(self.device), self.telemetry.clone());
        let shared = Arc::new(QueueShared {
            start_energy_j: mgmt.total_energy_j(),
            mgmt,
            caller: self.caller,
            registry: self.registry,
            fixed_clocks: self.fixed_clocks,
            kernel_log: parking_lot::Mutex::new(Vec::new()),
            telemetry: self.telemetry,
        });
        let (tx, rx) = unbounded::<Msg>();
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::spawn(move || {
            while let Ok(msg) = rx.recv() {
                match msg {
                    Msg::Run {
                        group,
                        clocks,
                        event,
                    } => run_one(&worker_shared, group, clocks, &event),
                    Msg::Flush(ack) => {
                        let _ = ack.send(());
                    }
                }
            }
        });
        Queue {
            shared,
            sender: Some(tx),
            worker: Some(worker),
        }
    }
}

fn run_one(shared: &QueueShared, group: CommandGroup, clocks: ClockRequest, event: &Event) {
    event.mark_running();
    // Resolve the clock request (Section 4.4: done in the command group,
    // right before the kernel starts).
    let wanted = match clocks {
        ClockRequest::Inherit => shared.fixed_clocks,
        ClockRequest::Explicit(c) => Some(c),
        ClockRequest::Target(t) => {
            match shared
                .registry
                .as_ref()
                .and_then(|r| r.lookup(&group.ir.name, t))
            {
                Some(c) => Some(c),
                None => {
                    // No compiled decision: run at current clocks, note it.
                    event.set_clock_error(synergy_hal::HalError::NotFound(0));
                    None
                }
            }
        }
    };
    if let Some(cfg) = wanted {
        let dev = shared.mgmt.raw();
        let before = dev.effective_clocks();
        let t0 = dev.now_ns();
        let result = shared.mgmt.set_clocks(shared.caller, cfg);
        shared.telemetry.record_with(dev.now_ns(), || EventKind::ClockChange {
            from: tele_clocks(before),
            to: tele_clocks(cfg),
            latency_ns: dev.now_ns() - t0,
            ok: result.is_ok(),
            error: result.as_ref().err().map(|e| e.to_string()),
        });
        if let Err(e) = result {
            event.set_clock_error(e);
        }
    }
    let info = extract(&group.ir);
    let wl = Workload::from_static(&info, group.work_items);
    let record = shared.mgmt.raw().execute(&wl);
    shared.telemetry.record_with(record.end_ns, || EventKind::KernelRun {
        kernel: record.name.clone(),
        start_ns: record.start_ns,
        end_ns: record.end_ns,
        energy_j: record.energy_j,
        clocks: tele_clocks(record.clocks),
    });
    shared.kernel_log.lock().push(record.clone());
    if let Some(host) = group.host {
        host();
    }
    event.complete(record);
}

impl Queue {
    /// Builder with every energy option.
    pub fn builder(device: Arc<SimDevice>) -> QueueBuilder {
        QueueBuilder {
            device,
            caller: Caller::User(1000),
            fixed_clocks: None,
            registry: None,
            telemetry: Recorder::disabled(),
        }
    }

    /// A plain queue on `device` (default clocks, unprivileged caller).
    pub fn new(device: Arc<SimDevice>) -> Queue {
        Queue::builder(device).build()
    }

    /// Submit a command group; the kernel runs at the queue's clocks.
    pub fn submit(&self, cgf: impl FnOnce(&mut Handler)) -> Event {
        self.submit_inner(cgf, ClockRequest::Inherit)
    }

    /// Submit with explicit per-kernel clocks (Listing 4's
    /// `q.submit(877, 1530, ...)`).
    pub fn submit_with_frequency(
        &self,
        mem_mhz: u32,
        core_mhz: u32,
        cgf: impl FnOnce(&mut Handler),
    ) -> Event {
        self.submit_inner(
            cgf,
            ClockRequest::Explicit(ClockConfig::new(mem_mhz, core_mhz)),
        )
    }

    /// Submit with a per-kernel energy target (Listing 3's
    /// `q.submit(MIN_EDP, ...)`); requires a registry.
    pub fn submit_with_target(
        &self,
        target: EnergyTarget,
        cgf: impl FnOnce(&mut Handler),
    ) -> Event {
        self.submit_inner(cgf, ClockRequest::Target(target))
    }

    fn submit_inner(&self, cgf: impl FnOnce(&mut Handler), clocks: ClockRequest) -> Event {
        let mut handler = Handler::new();
        cgf(&mut handler);
        let group = handler.group.unwrap_or_else(|| CommandGroup {
            ir: synergy_kernel::KernelIr::new("<empty>", vec![]),
            work_items: 0,
            host: None,
        });
        let event = Event::new();
        self.shared
            .telemetry
            .record_with(self.shared.mgmt.raw().now_ns(), || EventKind::KernelSubmit {
                kernel: group.ir.name.clone(),
                work_items: group.work_items,
            });
        let sent = self.sender.as_ref().is_some_and(|tx| {
            tx.send(Msg::Run {
                group,
                clocks,
                event: event.clone(),
            })
            .is_ok()
        });
        if !sent {
            // The worker is gone (it panicked, or the queue was closed):
            // terminate the event so waiters do not hang, instead of
            // panicking the submitting thread. `close()` reports the
            // underlying worker failure.
            event.fail(HalError::Uninitialized);
        }
        event
    }

    /// Block until every previously submitted command has completed. A
    /// no-op when the worker is gone (nothing can still be in flight).
    pub fn wait(&self) {
        let (ack_tx, ack_rx) = unbounded();
        let sent = self
            .sender
            .as_ref()
            .is_some_and(|tx| tx.send(Msg::Flush(ack_tx)).is_ok());
        if sent {
            let _ = ack_rx.recv();
        }
    }

    /// Shut the queue down after draining it, surfacing a worker panic as
    /// an error — the graceful counterpart of `Drop` (which swallows it).
    /// Idempotent: closing an already-closed queue reports the first
    /// outcome's success/failure only once; later calls return `Ok`.
    pub fn close(&mut self) -> Result<(), QueueError> {
        self.sender.take();
        match self.worker.take() {
            Some(w) => w.join().map_err(|_| QueueError::WorkerPanicked),
            None => Ok(()),
        }
    }

    /// Coarse-grained profiling: device energy (joules) consumed since this
    /// queue was constructed (Section 4.2, `device_energy_consumption`).
    pub fn device_energy_consumption(&self) -> f64 {
        self.shared.mgmt.total_energy_j() - self.shared.start_energy_j
    }

    /// Fine-grained profiling: the *measured* energy of one kernel, in
    /// joules, obtained by sampling board power over the kernel's window at
    /// the sensor interval with sensor noise — what the paper's
    /// asynchronous polling thread reports (Section 4.2, limitations in
    /// 4.4). Waits for the kernel first.
    pub fn kernel_energy_consumption(&self, event: &Event) -> f64 {
        event.wait();
        let rec = event.execution().expect("event completed");
        let dev = self.shared.mgmt.raw();
        let interval = dev.spec().power_sample_interval_ns;
        let trace = dev.trace_snapshot();
        let noise = dev.noise();
        let samples = trace.sample(rec.start_ns, rec.end_ns, interval, Some(&noise));
        PowerTrace::sampled_energy_j(&samples, interval, rec.end_ns)
    }

    /// The exact (ground-truth) energy of one kernel — the quantity the
    /// sampled measurement approaches for long-running kernels. Waits.
    pub fn kernel_energy_exact(&self, event: &Event) -> f64 {
        event.wait();
        event.execution().expect("event completed").energy_j
    }

    /// Current board power as the sensor reports it.
    pub fn power_usage_w(&self) -> f64 {
        self.shared.mgmt.power_usage_w()
    }

    /// The underlying device (for tests and the scheduler).
    pub fn device(&self) -> &Arc<SimDevice> {
        self.shared.mgmt.raw()
    }

    /// Every kernel executed through this queue so far, in completion
    /// order (waits for outstanding submissions first).
    pub fn kernel_log(&self) -> Vec<synergy_sim::KernelExecution> {
        self.wait();
        self.shared.kernel_log.lock().clone()
    }

    /// Export this queue's activity as a Chrome trace-event JSON document
    /// (kernel slices + a board-power counter track), openable in
    /// `chrome://tracing` or Perfetto.
    pub fn export_chrome_trace(&self) -> String {
        let kernels = self.kernel_log();
        let dev = self.shared.mgmt.raw();
        let mut events = synergy_sim::kernel_events(dev.index(), &kernels);
        events.extend(synergy_sim::power_events(
            dev.index(),
            &dev.trace_snapshot(),
            dev.spec().power_sample_interval_ns,
        ));
        synergy_sim::to_chrome_trace(&events)
    }
}

impl Drop for Queue {
    fn drop(&mut self) {
        // Closing the channel stops the worker after it drains the queue —
        // the coarse profiling window of Section 4.2 ends at destruction.
        // A worker panic is swallowed here; call `close()` to observe it.
        let _ = self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Buffer;
    use synergy_hal::HalError;
    use synergy_kernel::{Inst, IrBuilder, KernelIr};
    use synergy_sim::DeviceSpec;

    fn saxpy_ir() -> KernelIr {
        IrBuilder::new()
            .ops(Inst::GlobalLoad, 2)
            .ops(Inst::FloatMul, 1)
            .ops(Inst::FloatAdd, 1)
            .ops(Inst::GlobalStore, 1)
            .build("saxpy")
    }

    #[test]
    fn listing1_profiling_flow() {
        // The paper's Listing 1: submit a saxpy, wait, query energies.
        let dev = SimDevice::new(DeviceSpec::v100(), 0);
        let q = Queue::new(Arc::clone(&dev));
        let n = 1 << 20;
        let x = Buffer::from_slice(&vec![1.0f32; n]);
        let y = Buffer::from_slice(&vec![2.0f32; n]);
        let z: Buffer<f32> = Buffer::zeros(n);
        let (xa, ya, za) = (x.accessor(), y.accessor(), z.accessor());
        let a = 3.0f32;
        let ir = saxpy_ir();
        let e = q.submit(move |h| {
            h.parallel_for(n, &ir, move |i| {
                za.set(i, a * xa.get(i) + ya.get(i));
            });
        });
        e.wait_and_throw().unwrap();
        let kernel_energy = q.kernel_energy_consumption(&e);
        let device_energy = q.device_energy_consumption();
        assert!(kernel_energy > 0.0);
        assert!(device_energy >= q.kernel_energy_exact(&e) * 0.99);
        // Numerics are real.
        assert!(z.to_vec().iter().all(|&v| v == 5.0));
    }

    #[test]
    fn submissions_execute_in_order() {
        let dev = SimDevice::new(DeviceSpec::v100(), 0);
        let q = Queue::new(dev);
        let ir = saxpy_ir();
        let e1 = q.submit(|h| h.parallel_for_modeled(1 << 16, &ir));
        let e2 = q.submit(|h| h.parallel_for_modeled(1 << 16, &ir));
        e2.wait();
        let r1 = e1.execution().unwrap();
        let r2 = e2.execution().unwrap();
        assert!(r1.end_ns <= r2.start_ns, "in-order queue semantics");
    }

    #[test]
    fn fixed_frequency_queue_listing2() {
        let dev = SimDevice::new(DeviceSpec::v100(), 0);
        dev.set_api_restriction(false); // pretend the plugin ran
        let q = Queue::builder(dev).frequency(877, 135).build();
        let ir = saxpy_ir();
        let e = q.submit(|h| h.parallel_for_modeled(1 << 16, &ir));
        e.wait_and_throw().unwrap();
        assert_eq!(e.execution().unwrap().clocks, ClockConfig::new(877, 135));
    }

    #[test]
    fn per_kernel_frequency_listing4() {
        let dev = SimDevice::new(DeviceSpec::v100(), 0);
        dev.set_api_restriction(false);
        let q = Queue::new(dev);
        let ir = saxpy_ir();
        let slow = q.submit_with_frequency(877, 135, |h| h.parallel_for_modeled(1 << 16, &ir));
        let fast = q.submit_with_frequency(877, 1530, |h| h.parallel_for_modeled(1 << 16, &ir));
        fast.wait();
        assert_eq!(slow.execution().unwrap().clocks.core_mhz, 135);
        assert_eq!(fast.execution().unwrap().clocks.core_mhz, 1530);
    }

    #[test]
    fn restricted_device_reports_no_permission() {
        let dev = SimDevice::new(DeviceSpec::v100(), 0);
        // API restriction is on by default: a user queue cannot scale.
        let q = Queue::new(Arc::clone(&dev));
        let ir = saxpy_ir();
        let e = q.submit_with_frequency(877, 135, |h| h.parallel_for_modeled(1 << 16, &ir));
        assert_eq!(e.wait_and_throw().unwrap_err(), HalError::NoPermission);
        // Kernel still ran, at default clocks.
        assert_eq!(
            e.execution().unwrap().clocks,
            dev.spec().baseline_clocks()
        );
    }

    #[test]
    fn target_submission_uses_registry() {
        let dev = SimDevice::new(DeviceSpec::v100(), 0);
        dev.set_api_restriction(false);
        let target_core = dev.spec().freq_table.nearest_core(877);
        let mut reg = TargetRegistry::new();
        reg.insert(
            "saxpy",
            EnergyTarget::MinEdp,
            ClockConfig::new(877, target_core),
        );
        let q = Queue::builder(dev).registry(Arc::new(reg)).build();
        let ir = saxpy_ir();
        let e = q.submit_with_target(EnergyTarget::MinEdp, |h| {
            h.parallel_for_modeled(1 << 16, &ir)
        });
        e.wait_and_throw().unwrap();
        assert_eq!(e.execution().unwrap().clocks.core_mhz, target_core);
    }

    #[test]
    fn missing_registry_entry_flags_event() {
        let dev = SimDevice::new(DeviceSpec::v100(), 0);
        let q = Queue::builder(dev).registry(Arc::new(TargetRegistry::new())).build();
        let ir = saxpy_ir();
        let e = q.submit_with_target(EnergyTarget::MinEdp, |h| {
            h.parallel_for_modeled(1 << 10, &ir)
        });
        assert!(e.wait_and_throw().is_err());
        assert!(e.execution().is_some(), "kernel still executed");
    }

    #[test]
    fn empty_command_group_completes() {
        let dev = SimDevice::new(DeviceSpec::v100(), 0);
        let q = Queue::new(dev);
        let e = q.submit(|_h| {});
        e.wait();
        let r = e.execution().unwrap();
        assert_eq!(r.name, "<empty>");
    }

    #[test]
    fn queue_wait_drains_all() {
        let dev = SimDevice::new(DeviceSpec::v100(), 0);
        let q = Queue::new(dev);
        let ir = saxpy_ir();
        let events: Vec<Event> = (0..5)
            .map(|_| q.submit(|h| h.parallel_for_modeled(1 << 14, &ir)))
            .collect();
        q.wait();
        for e in events {
            assert_eq!(e.status(), crate::event::EventStatus::Complete);
        }
    }

    #[test]
    fn two_queues_one_device_interleave_on_timeline() {
        let dev = SimDevice::new(DeviceSpec::v100(), 0);
        dev.set_api_restriction(false);
        let q1 = Queue::builder(Arc::clone(&dev)).frequency(877, 877).build();
        let q2 = Queue::new(Arc::clone(&dev));
        let ir = saxpy_ir();
        let e1 = q1.submit(|h| h.parallel_for_modeled(1 << 16, &ir));
        let e2 = q2.submit(|h| h.parallel_for_modeled(1 << 16, &ir));
        e1.wait();
        e2.wait();
        let (r1, r2) = (e1.execution().unwrap(), e2.execution().unwrap());
        // Device timeline is a total order: windows never overlap.
        assert!(r1.end_ns <= r2.start_ns || r2.end_ns <= r1.start_ns);
    }

    #[test]
    fn kernel_log_and_chrome_trace_export() {
        let dev = SimDevice::new(DeviceSpec::v100(), 0);
        let q = Queue::new(dev);
        let ir = saxpy_ir();
        for _ in 0..3 {
            q.submit(|h| h.parallel_for_modeled(1 << 16, &ir));
        }
        let log = q.kernel_log();
        assert_eq!(log.len(), 3);
        assert!(log.windows(2).all(|w| w[0].end_ns <= w[1].start_ns));
        let doc = q.export_chrome_trace();
        let parsed: serde_json::Value = serde_json::from_str(&doc).unwrap();
        let events = parsed["traceEvents"].as_array().unwrap();
        assert!(events.len() >= 3);
        assert!(events.iter().any(|e| e["name"] == "saxpy"));
        assert!(events.iter().any(|e| e["name"] == "board_power"));
    }

    #[test]
    fn telemetry_records_the_full_kernel_lifecycle() {
        let rec = Recorder::enabled();
        let dev = SimDevice::new(DeviceSpec::v100(), 0);
        dev.set_api_restriction(false);
        let q = Queue::builder(Arc::clone(&dev))
            .telemetry(rec.clone())
            .build();
        let ir = saxpy_ir();
        let e = q.submit_with_frequency(877, 135, |h| h.parallel_for_modeled(1 << 16, &ir));
        e.wait_and_throw().unwrap();
        q.wait();

        let events = rec.snapshot();
        let kinds: Vec<&str> = events.iter().map(|e| e.kind.track()).collect();
        assert!(kinds.contains(&"kernels"), "kinds: {kinds:?}");
        assert!(kinds.contains(&"clocks"), "kinds: {kinds:?}");
        assert!(kinds.contains(&"hal"), "kinds: {kinds:?}");
        // The submit instant precedes the run, and the run window matches
        // the execution record exactly.
        let rec_exec = e.execution().unwrap();
        let run = events
            .iter()
            .find_map(|ev| match &ev.kind {
                EventKind::KernelRun { kernel, start_ns, end_ns, energy_j, clocks } => {
                    Some((kernel.clone(), *start_ns, *end_ns, *energy_j, *clocks))
                }
                _ => None,
            })
            .expect("a KernelRun event");
        assert_eq!(run.0, "saxpy");
        assert_eq!((run.1, run.2), (rec_exec.start_ns, rec_exec.end_ns));
        assert_eq!(run.3, rec_exec.energy_j);
        assert_eq!(run.4, Clocks::new(877, 135));
        let change = events
            .iter()
            .find_map(|ev| match &ev.kind {
                EventKind::ClockChange { to, latency_ns, ok, .. } => {
                    Some((*to, *latency_ns, *ok))
                }
                _ => None,
            })
            .expect("a ClockChange event");
        assert_eq!(change.0, Clocks::new(877, 135));
        assert!(change.2, "root-free device: change succeeds");
        assert!(change.1 > 0, "clock changes cost virtual time");
        let s = rec.summary();
        assert_eq!((s.kernel_submits, s.kernels, s.clock_changes), (1, 1, 1));
        assert!(s.hal_calls >= 1);
    }

    #[test]
    fn failed_clock_changes_are_traced_with_their_error() {
        let rec = Recorder::enabled();
        // Restricted device + unprivileged caller: the change must fail.
        let dev = SimDevice::new(DeviceSpec::v100(), 0);
        let q = Queue::builder(dev).telemetry(rec.clone()).build();
        let ir = saxpy_ir();
        let e = q.submit_with_frequency(877, 135, |h| h.parallel_for_modeled(1 << 12, &ir));
        assert!(e.wait_and_throw().is_err());
        let change = rec
            .snapshot()
            .into_iter()
            .find_map(|ev| match ev.kind {
                EventKind::ClockChange { ok, error, latency_ns, .. } => {
                    Some((ok, error, latency_ns))
                }
                _ => None,
            })
            .expect("a ClockChange event");
        assert!(!change.0);
        assert!(change.1.unwrap().contains("permission"));
        assert_eq!(change.2, 0, "failed calls cost no switch latency");
        assert_eq!(rec.summary().clock_change_failures, 1);
    }

    #[test]
    fn untraced_queue_records_nothing() {
        let dev = SimDevice::new(DeviceSpec::v100(), 0);
        let q = Queue::new(dev);
        let ir = saxpy_ir();
        q.submit(|h| h.parallel_for_modeled(1 << 12, &ir)).wait();
        // Nothing to assert on a disabled recorder beyond construction
        // succeeding — the default builder has no recorder attached at all.
        assert!(!Recorder::default().is_enabled());
    }

    #[test]
    fn close_surfaces_worker_panics_and_later_submits_fail_cleanly() {
        let dev = SimDevice::new(DeviceSpec::v100(), 0);
        let mut q = Queue::new(dev);
        let ir = saxpy_ir();
        // A host closure that panics kills the worker thread.
        let _boom = q.submit(|h| {
            h.parallel_for(16, &ir, |_| panic!("host bug"));
        });
        assert_eq!(q.close(), Err(QueueError::WorkerPanicked));
        assert_eq!(q.close(), Ok(()), "second close is idempotent");
        // Submissions and waits after the worker died degrade gracefully:
        // no panic, no hang — the event completes with an error.
        let e = q.submit(|h| h.parallel_for_modeled(16, &ir));
        e.wait();
        assert!(e.execution().is_none());
        assert_eq!(e.wait_and_throw().unwrap_err(), HalError::Uninitialized);
        q.wait();
    }

    #[test]
    fn clean_close_returns_ok() {
        let dev = SimDevice::new(DeviceSpec::v100(), 0);
        let mut q = Queue::new(dev);
        let ir = saxpy_ir();
        let e = q.submit(|h| h.parallel_for_modeled(1 << 12, &ir));
        assert_eq!(q.close(), Ok(()));
        assert_eq!(e.status(), crate::event::EventStatus::Complete);
    }

    #[test]
    fn sampled_energy_close_to_exact_for_long_kernel() {
        let dev = SimDevice::new(DeviceSpec::v100(), 0);
        let q = Queue::new(dev);
        // Long kernel: hundreds of ms, far above the 15 ms sensor interval.
        let ir = IrBuilder::new()
            .ops(Inst::GlobalLoad, 1)
            .loop_n(65_536, |b| b.ops(Inst::FloatMul, 1).ops(Inst::FloatAdd, 1))
            .ops(Inst::GlobalStore, 1)
            .build("long");
        let e = q.submit(|h| h.parallel_for_modeled(1 << 24, &ir));
        let measured = q.kernel_energy_consumption(&e);
        let exact = q.kernel_energy_exact(&e);
        let err = (measured - exact).abs() / exact;
        assert!(err < 0.05, "sampled {measured} vs exact {exact} (err {err})");
    }
}
