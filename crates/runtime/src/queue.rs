//! The `synergy::queue` analogue — the paper's main programming-interface
//! contribution (Section 4).
//!
//! A queue wraps a device with energy capabilities:
//!
//! * **coarse-grained profiling** — device energy accumulated since the
//!   queue was constructed ([`Queue::device_energy_consumption`]);
//! * **fine-grained profiling** — per-kernel energy measured by sampling
//!   the board power over the kernel's execution window, exactly like the
//!   paper's asynchronous polling thread
//!   ([`Queue::kernel_energy_consumption`]);
//! * **frequency scaling** — per-queue fixed clocks (Listing 2), per-kernel
//!   explicit clocks (Listing 4), or per-kernel energy targets resolved
//!   through the compile-time [`TargetRegistry`] (Listing 3).
//!
//! Submissions run in order on a dedicated worker thread; kernels advance
//! the device's virtual timeline and execute their host computation with
//! Rayon. As in Section 4.4, the frequency for a kernel is set in the
//! command group before the kernel launches, and each vendor-library clock
//! change costs real (virtual) time.

use crate::event::Event;
use crate::handler::{CommandGroup, Handler};
use crate::registry::TargetRegistry;
use crossbeam::channel::{unbounded, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use synergy_hal::{open_device, Caller, DeviceManagement};
use synergy_kernel::extract;
use synergy_metrics::EnergyTarget;
use synergy_sim::{ClockConfig, PowerTrace, SimDevice, Workload};

/// How a submission wants its clocks handled.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ClockRequest {
    /// Use the queue's fixed clocks, or the device default if none.
    Inherit,
    /// Explicit per-kernel clocks (Listing 4).
    Explicit(ClockConfig),
    /// Energy target resolved through the registry (Listing 3).
    Target(EnergyTarget),
}

enum Msg {
    Run {
        group: CommandGroup,
        clocks: ClockRequest,
        event: Event,
    },
    Flush(Sender<()>),
}

struct QueueShared {
    mgmt: Arc<dyn DeviceManagement>,
    caller: Caller,
    registry: Option<Arc<TargetRegistry>>,
    fixed_clocks: Option<ClockConfig>,
    start_energy_j: f64,
    kernel_log: parking_lot::Mutex<Vec<synergy_sim::KernelExecution>>,
}

/// An in-order, energy-aware queue onto one device.
pub struct Queue {
    shared: Arc<QueueShared>,
    sender: Option<Sender<Msg>>,
    worker: Option<JoinHandle<()>>,
}

/// Builder for [`Queue`] (covers all the constructor shapes of Section 4.3).
pub struct QueueBuilder {
    device: Arc<SimDevice>,
    caller: Caller,
    fixed_clocks: Option<ClockConfig>,
    registry: Option<Arc<TargetRegistry>>,
}

impl QueueBuilder {
    /// Run management calls as `caller` (default: unprivileged uid 1000).
    pub fn caller(mut self, caller: Caller) -> Self {
        self.caller = caller;
        self
    }

    /// Fix (mem, core) clocks for every kernel submitted to this queue —
    /// the `synergy::queue q{1215, 210, gpu_selector_v}` form of Listing 2.
    pub fn frequency(mut self, mem_mhz: u32, core_mhz: u32) -> Self {
        self.fixed_clocks = Some(ClockConfig::new(mem_mhz, core_mhz));
        self
    }

    /// Attach the compile-time target registry so kernels can be submitted
    /// with energy targets.
    pub fn registry(mut self, registry: Arc<TargetRegistry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Construct the queue and start its worker.
    pub fn build(self) -> Queue {
        let mgmt = open_device(self.device);
        let shared = Arc::new(QueueShared {
            start_energy_j: mgmt.total_energy_j(),
            mgmt,
            caller: self.caller,
            registry: self.registry,
            fixed_clocks: self.fixed_clocks,
            kernel_log: parking_lot::Mutex::new(Vec::new()),
        });
        let (tx, rx) = unbounded::<Msg>();
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::spawn(move || {
            while let Ok(msg) = rx.recv() {
                match msg {
                    Msg::Run {
                        group,
                        clocks,
                        event,
                    } => run_one(&worker_shared, group, clocks, &event),
                    Msg::Flush(ack) => {
                        let _ = ack.send(());
                    }
                }
            }
        });
        Queue {
            shared,
            sender: Some(tx),
            worker: Some(worker),
        }
    }
}

fn run_one(shared: &QueueShared, group: CommandGroup, clocks: ClockRequest, event: &Event) {
    event.mark_running();
    // Resolve the clock request (Section 4.4: done in the command group,
    // right before the kernel starts).
    let wanted = match clocks {
        ClockRequest::Inherit => shared.fixed_clocks,
        ClockRequest::Explicit(c) => Some(c),
        ClockRequest::Target(t) => {
            match shared
                .registry
                .as_ref()
                .and_then(|r| r.lookup(&group.ir.name, t))
            {
                Some(c) => Some(c),
                None => {
                    // No compiled decision: run at current clocks, note it.
                    event.set_clock_error(synergy_hal::HalError::NotFound(0));
                    None
                }
            }
        }
    };
    if let Some(cfg) = wanted {
        if let Err(e) = shared.mgmt.set_clocks(shared.caller, cfg) {
            event.set_clock_error(e);
        }
    }
    let info = extract(&group.ir);
    let wl = Workload::from_static(&info, group.work_items);
    let record = shared.mgmt.raw().execute(&wl);
    shared.kernel_log.lock().push(record.clone());
    if let Some(host) = group.host {
        host();
    }
    event.complete(record);
}

impl Queue {
    /// Builder with every energy option.
    pub fn builder(device: Arc<SimDevice>) -> QueueBuilder {
        QueueBuilder {
            device,
            caller: Caller::User(1000),
            fixed_clocks: None,
            registry: None,
        }
    }

    /// A plain queue on `device` (default clocks, unprivileged caller).
    pub fn new(device: Arc<SimDevice>) -> Queue {
        Queue::builder(device).build()
    }

    /// Submit a command group; the kernel runs at the queue's clocks.
    pub fn submit(&self, cgf: impl FnOnce(&mut Handler)) -> Event {
        self.submit_inner(cgf, ClockRequest::Inherit)
    }

    /// Submit with explicit per-kernel clocks (Listing 4's
    /// `q.submit(877, 1530, ...)`).
    pub fn submit_with_frequency(
        &self,
        mem_mhz: u32,
        core_mhz: u32,
        cgf: impl FnOnce(&mut Handler),
    ) -> Event {
        self.submit_inner(
            cgf,
            ClockRequest::Explicit(ClockConfig::new(mem_mhz, core_mhz)),
        )
    }

    /// Submit with a per-kernel energy target (Listing 3's
    /// `q.submit(MIN_EDP, ...)`); requires a registry.
    pub fn submit_with_target(
        &self,
        target: EnergyTarget,
        cgf: impl FnOnce(&mut Handler),
    ) -> Event {
        self.submit_inner(cgf, ClockRequest::Target(target))
    }

    fn submit_inner(&self, cgf: impl FnOnce(&mut Handler), clocks: ClockRequest) -> Event {
        let mut handler = Handler::new();
        cgf(&mut handler);
        let group = handler.group.unwrap_or_else(|| CommandGroup {
            ir: synergy_kernel::KernelIr::new("<empty>", vec![]),
            work_items: 0,
            host: None,
        });
        let event = Event::new();
        self.sender
            .as_ref()
            .expect("queue is live")
            .send(Msg::Run {
                group,
                clocks,
                event: event.clone(),
            })
            .expect("worker is live");
        event
    }

    /// Block until every previously submitted command has completed.
    pub fn wait(&self) {
        let (ack_tx, ack_rx) = unbounded();
        self.sender
            .as_ref()
            .expect("queue is live")
            .send(Msg::Flush(ack_tx))
            .expect("worker is live");
        let _ = ack_rx.recv();
    }

    /// Coarse-grained profiling: device energy (joules) consumed since this
    /// queue was constructed (Section 4.2, `device_energy_consumption`).
    pub fn device_energy_consumption(&self) -> f64 {
        self.shared.mgmt.total_energy_j() - self.shared.start_energy_j
    }

    /// Fine-grained profiling: the *measured* energy of one kernel, in
    /// joules, obtained by sampling board power over the kernel's window at
    /// the sensor interval with sensor noise — what the paper's
    /// asynchronous polling thread reports (Section 4.2, limitations in
    /// 4.4). Waits for the kernel first.
    pub fn kernel_energy_consumption(&self, event: &Event) -> f64 {
        event.wait();
        let rec = event.execution().expect("event completed");
        let dev = self.shared.mgmt.raw();
        let interval = dev.spec().power_sample_interval_ns;
        let trace = dev.trace_snapshot();
        let noise = dev.noise();
        let samples = trace.sample(rec.start_ns, rec.end_ns, interval, Some(&noise));
        PowerTrace::sampled_energy_j(&samples, interval, rec.end_ns)
    }

    /// The exact (ground-truth) energy of one kernel — the quantity the
    /// sampled measurement approaches for long-running kernels. Waits.
    pub fn kernel_energy_exact(&self, event: &Event) -> f64 {
        event.wait();
        event.execution().expect("event completed").energy_j
    }

    /// Current board power as the sensor reports it.
    pub fn power_usage_w(&self) -> f64 {
        self.shared.mgmt.power_usage_w()
    }

    /// The underlying device (for tests and the scheduler).
    pub fn device(&self) -> &Arc<SimDevice> {
        self.shared.mgmt.raw()
    }

    /// Every kernel executed through this queue so far, in completion
    /// order (waits for outstanding submissions first).
    pub fn kernel_log(&self) -> Vec<synergy_sim::KernelExecution> {
        self.wait();
        self.shared.kernel_log.lock().clone()
    }

    /// Export this queue's activity as a Chrome trace-event JSON document
    /// (kernel slices + a board-power counter track), openable in
    /// `chrome://tracing` or Perfetto.
    pub fn export_chrome_trace(&self) -> String {
        let kernels = self.kernel_log();
        let dev = self.shared.mgmt.raw();
        let mut events = synergy_sim::kernel_events(dev.index(), &kernels);
        events.extend(synergy_sim::power_events(
            dev.index(),
            &dev.trace_snapshot(),
            dev.spec().power_sample_interval_ns,
        ));
        synergy_sim::to_chrome_trace(&events)
    }
}

impl Drop for Queue {
    fn drop(&mut self) {
        // Closing the channel stops the worker after it drains the queue —
        // the coarse profiling window of Section 4.2 ends at destruction.
        self.sender.take();
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Buffer;
    use synergy_hal::HalError;
    use synergy_kernel::{Inst, IrBuilder, KernelIr};
    use synergy_sim::DeviceSpec;

    fn saxpy_ir() -> KernelIr {
        IrBuilder::new()
            .ops(Inst::GlobalLoad, 2)
            .ops(Inst::FloatMul, 1)
            .ops(Inst::FloatAdd, 1)
            .ops(Inst::GlobalStore, 1)
            .build("saxpy")
    }

    #[test]
    fn listing1_profiling_flow() {
        // The paper's Listing 1: submit a saxpy, wait, query energies.
        let dev = SimDevice::new(DeviceSpec::v100(), 0);
        let q = Queue::new(Arc::clone(&dev));
        let n = 1 << 20;
        let x = Buffer::from_slice(&vec![1.0f32; n]);
        let y = Buffer::from_slice(&vec![2.0f32; n]);
        let z: Buffer<f32> = Buffer::zeros(n);
        let (xa, ya, za) = (x.accessor(), y.accessor(), z.accessor());
        let a = 3.0f32;
        let ir = saxpy_ir();
        let e = q.submit(move |h| {
            h.parallel_for(n, &ir, move |i| {
                za.set(i, a * xa.get(i) + ya.get(i));
            });
        });
        e.wait_and_throw().unwrap();
        let kernel_energy = q.kernel_energy_consumption(&e);
        let device_energy = q.device_energy_consumption();
        assert!(kernel_energy > 0.0);
        assert!(device_energy >= q.kernel_energy_exact(&e) * 0.99);
        // Numerics are real.
        assert!(z.to_vec().iter().all(|&v| v == 5.0));
    }

    #[test]
    fn submissions_execute_in_order() {
        let dev = SimDevice::new(DeviceSpec::v100(), 0);
        let q = Queue::new(dev);
        let ir = saxpy_ir();
        let e1 = q.submit(|h| h.parallel_for_modeled(1 << 16, &ir));
        let e2 = q.submit(|h| h.parallel_for_modeled(1 << 16, &ir));
        e2.wait();
        let r1 = e1.execution().unwrap();
        let r2 = e2.execution().unwrap();
        assert!(r1.end_ns <= r2.start_ns, "in-order queue semantics");
    }

    #[test]
    fn fixed_frequency_queue_listing2() {
        let dev = SimDevice::new(DeviceSpec::v100(), 0);
        dev.set_api_restriction(false); // pretend the plugin ran
        let q = Queue::builder(dev).frequency(877, 135).build();
        let ir = saxpy_ir();
        let e = q.submit(|h| h.parallel_for_modeled(1 << 16, &ir));
        e.wait_and_throw().unwrap();
        assert_eq!(e.execution().unwrap().clocks, ClockConfig::new(877, 135));
    }

    #[test]
    fn per_kernel_frequency_listing4() {
        let dev = SimDevice::new(DeviceSpec::v100(), 0);
        dev.set_api_restriction(false);
        let q = Queue::new(dev);
        let ir = saxpy_ir();
        let slow = q.submit_with_frequency(877, 135, |h| h.parallel_for_modeled(1 << 16, &ir));
        let fast = q.submit_with_frequency(877, 1530, |h| h.parallel_for_modeled(1 << 16, &ir));
        fast.wait();
        assert_eq!(slow.execution().unwrap().clocks.core_mhz, 135);
        assert_eq!(fast.execution().unwrap().clocks.core_mhz, 1530);
    }

    #[test]
    fn restricted_device_reports_no_permission() {
        let dev = SimDevice::new(DeviceSpec::v100(), 0);
        // API restriction is on by default: a user queue cannot scale.
        let q = Queue::new(Arc::clone(&dev));
        let ir = saxpy_ir();
        let e = q.submit_with_frequency(877, 135, |h| h.parallel_for_modeled(1 << 16, &ir));
        assert_eq!(e.wait_and_throw().unwrap_err(), HalError::NoPermission);
        // Kernel still ran, at default clocks.
        assert_eq!(
            e.execution().unwrap().clocks,
            dev.spec().baseline_clocks()
        );
    }

    #[test]
    fn target_submission_uses_registry() {
        let dev = SimDevice::new(DeviceSpec::v100(), 0);
        dev.set_api_restriction(false);
        let target_core = dev.spec().freq_table.nearest_core(877);
        let mut reg = TargetRegistry::new();
        reg.insert(
            "saxpy",
            EnergyTarget::MinEdp,
            ClockConfig::new(877, target_core),
        );
        let q = Queue::builder(dev).registry(Arc::new(reg)).build();
        let ir = saxpy_ir();
        let e = q.submit_with_target(EnergyTarget::MinEdp, |h| {
            h.parallel_for_modeled(1 << 16, &ir)
        });
        e.wait_and_throw().unwrap();
        assert_eq!(e.execution().unwrap().clocks.core_mhz, target_core);
    }

    #[test]
    fn missing_registry_entry_flags_event() {
        let dev = SimDevice::new(DeviceSpec::v100(), 0);
        let q = Queue::builder(dev).registry(Arc::new(TargetRegistry::new())).build();
        let ir = saxpy_ir();
        let e = q.submit_with_target(EnergyTarget::MinEdp, |h| {
            h.parallel_for_modeled(1 << 10, &ir)
        });
        assert!(e.wait_and_throw().is_err());
        assert!(e.execution().is_some(), "kernel still executed");
    }

    #[test]
    fn empty_command_group_completes() {
        let dev = SimDevice::new(DeviceSpec::v100(), 0);
        let q = Queue::new(dev);
        let e = q.submit(|_h| {});
        e.wait();
        let r = e.execution().unwrap();
        assert_eq!(r.name, "<empty>");
    }

    #[test]
    fn queue_wait_drains_all() {
        let dev = SimDevice::new(DeviceSpec::v100(), 0);
        let q = Queue::new(dev);
        let ir = saxpy_ir();
        let events: Vec<Event> = (0..5)
            .map(|_| q.submit(|h| h.parallel_for_modeled(1 << 14, &ir)))
            .collect();
        q.wait();
        for e in events {
            assert_eq!(e.status(), crate::event::EventStatus::Complete);
        }
    }

    #[test]
    fn two_queues_one_device_interleave_on_timeline() {
        let dev = SimDevice::new(DeviceSpec::v100(), 0);
        dev.set_api_restriction(false);
        let q1 = Queue::builder(Arc::clone(&dev)).frequency(877, 877).build();
        let q2 = Queue::new(Arc::clone(&dev));
        let ir = saxpy_ir();
        let e1 = q1.submit(|h| h.parallel_for_modeled(1 << 16, &ir));
        let e2 = q2.submit(|h| h.parallel_for_modeled(1 << 16, &ir));
        e1.wait();
        e2.wait();
        let (r1, r2) = (e1.execution().unwrap(), e2.execution().unwrap());
        // Device timeline is a total order: windows never overlap.
        assert!(r1.end_ns <= r2.start_ns || r2.end_ns <= r1.start_ns);
    }

    #[test]
    fn kernel_log_and_chrome_trace_export() {
        let dev = SimDevice::new(DeviceSpec::v100(), 0);
        let q = Queue::new(dev);
        let ir = saxpy_ir();
        for _ in 0..3 {
            q.submit(|h| h.parallel_for_modeled(1 << 16, &ir));
        }
        let log = q.kernel_log();
        assert_eq!(log.len(), 3);
        assert!(log.windows(2).all(|w| w[0].end_ns <= w[1].start_ns));
        let doc = q.export_chrome_trace();
        let parsed: serde_json::Value = serde_json::from_str(&doc).unwrap();
        let events = parsed["traceEvents"].as_array().unwrap();
        assert!(events.len() >= 3);
        assert!(events.iter().any(|e| e["name"] == "saxpy"));
        assert!(events.iter().any(|e| e["name"] == "board_power"));
    }

    #[test]
    fn sampled_energy_close_to_exact_for_long_kernel() {
        let dev = SimDevice::new(DeviceSpec::v100(), 0);
        let q = Queue::new(dev);
        // Long kernel: hundreds of ms, far above the 15 ms sensor interval.
        let ir = IrBuilder::new()
            .ops(Inst::GlobalLoad, 1)
            .loop_n(65_536, |b| b.ops(Inst::FloatMul, 1).ops(Inst::FloatAdd, 1))
            .ops(Inst::GlobalStore, 1)
            .build("long");
        let e = q.submit(|h| h.parallel_for_modeled(1 << 24, &ir));
        let measured = q.kernel_energy_consumption(&e);
        let exact = q.kernel_energy_exact(&e);
        let err = (measured - exact).abs() / exact;
        assert!(err < 0.05, "sampled {measured} vs exact {exact} (err {err})");
    }
}
