//! The target registry: the artifact the "compile step" hands to the
//! runtime.
//!
//! After feature extraction and model inference, every (kernel, energy
//! target) pair maps to a concrete frequency configuration. The registry is
//! that mapping; the queue consults it when a kernel is submitted with an
//! energy target (Listing 3 of the paper).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use synergy_metrics::EnergyTarget;
use synergy_sim::ClockConfig;

/// Per-kernel, per-target frequency decisions.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TargetRegistry {
    // kernel name -> target name -> clocks (string key keeps it
    // serde-friendly and diff-able on disk).
    entries: BTreeMap<String, BTreeMap<String, ClockConfig>>,
}

impl TargetRegistry {
    /// Empty registry.
    pub fn new() -> TargetRegistry {
        TargetRegistry::default()
    }

    /// Record the decision for `(kernel, target)`.
    pub fn insert(&mut self, kernel: &str, target: EnergyTarget, clocks: ClockConfig) {
        self.entries
            .entry(kernel.to_string())
            .or_default()
            .insert(target.to_string(), clocks);
    }

    /// Look up the decision for `(kernel, target)`.
    pub fn lookup(&self, kernel: &str, target: EnergyTarget) -> Option<ClockConfig> {
        self.entries
            .get(kernel)?
            .get(&target.to_string())
            .copied()
    }

    /// Kernels with at least one decision.
    pub fn kernels(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// Total number of (kernel, target) decisions.
    pub fn len(&self) -> usize {
        self.entries.values().map(BTreeMap::len).sum()
    }

    /// True when no decisions are recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Every `(kernel, target name, clocks)` decision in deterministic
    /// (kernel, target) order — the flat view wire encoders and reports
    /// want.
    pub fn decisions(&self) -> impl Iterator<Item = (&str, &str, ClockConfig)> {
        self.entries.iter().flat_map(|(kernel, targets)| {
            targets
                .iter()
                .map(move |(target, clocks)| (kernel.as_str(), target.as_str(), *clocks))
        })
    }

    /// Merge another registry into this one (other wins on conflicts).
    pub fn merge(&mut self, other: &TargetRegistry) {
        for (k, targets) in &other.entries {
            let slot = self.entries.entry(k.clone()).or_default();
            for (t, c) in targets {
                slot.insert(t.clone(), *c);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let mut r = TargetRegistry::new();
        r.insert("matmul", EnergyTarget::MinEdp, ClockConfig::new(877, 1000));
        assert_eq!(
            r.lookup("matmul", EnergyTarget::MinEdp),
            Some(ClockConfig::new(877, 1000))
        );
        assert_eq!(r.lookup("matmul", EnergyTarget::MinEd2p), None);
        assert_eq!(r.lookup("other", EnergyTarget::MinEdp), None);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn es_pl_targets_are_distinct_keys() {
        let mut r = TargetRegistry::new();
        r.insert("k", EnergyTarget::EnergySaving(25), ClockConfig::new(877, 900));
        r.insert("k", EnergyTarget::EnergySaving(50), ClockConfig::new(877, 800));
        r.insert("k", EnergyTarget::PerfLoss(25), ClockConfig::new(877, 1100));
        assert_eq!(r.len(), 3);
        assert_eq!(
            r.lookup("k", EnergyTarget::EnergySaving(50)),
            Some(ClockConfig::new(877, 800))
        );
    }

    #[test]
    fn merge_prefers_other() {
        let mut a = TargetRegistry::new();
        a.insert("k", EnergyTarget::MinEdp, ClockConfig::new(877, 1000));
        let mut b = TargetRegistry::new();
        b.insert("k", EnergyTarget::MinEdp, ClockConfig::new(877, 500));
        b.insert("j", EnergyTarget::MaxPerf, ClockConfig::new(877, 1530));
        a.merge(&b);
        assert_eq!(a.lookup("k", EnergyTarget::MinEdp), Some(ClockConfig::new(877, 500)));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn serde_roundtrip() {
        let mut r = TargetRegistry::new();
        r.insert("k", EnergyTarget::PerfLoss(75), ClockConfig::new(877, 600));
        let s = serde_json::to_string(&r).unwrap();
        let r2: TargetRegistry = serde_json::from_str(&s).unwrap();
        assert_eq!(r, r2);
    }

    #[test]
    fn kernels_iterator() {
        let mut r = TargetRegistry::new();
        r.insert("b", EnergyTarget::MaxPerf, ClockConfig::new(877, 1530));
        r.insert("a", EnergyTarget::MaxPerf, ClockConfig::new(877, 1530));
        let names: Vec<&str> = r.kernels().collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn decisions_iterate_flat_and_ordered() {
        let mut r = TargetRegistry::new();
        r.insert("b", EnergyTarget::MaxPerf, ClockConfig::new(877, 1530));
        r.insert("a", EnergyTarget::MinEdp, ClockConfig::new(877, 1000));
        r.insert("a", EnergyTarget::EnergySaving(50), ClockConfig::new(877, 800));
        let flat: Vec<(String, String, ClockConfig)> = r
            .decisions()
            .map(|(k, t, c)| (k.to_string(), t.to_string(), c))
            .collect();
        assert_eq!(flat.len(), r.len());
        assert_eq!(flat[0].0, "a");
        assert_eq!(flat[2], ("b".to_string(), "MAX_PERF".to_string(), ClockConfig::new(877, 1530)));
    }
}
