//! # synergy-rt
//!
//! The SYnergy runtime (Section 4 of the paper): an energy-aware,
//! SYCL-flavoured queue with coarse- and fine-grained energy profiling,
//! per-queue and per-kernel frequency scaling, and per-kernel energy
//! targets resolved through a compile-time [`TargetRegistry`]. Also hosts
//! the compile step (Figure 6): micro-benchmark sweeps → training sets →
//! four single-target metric models → frequency search per target.
//!
//! Kernels described by a [`synergy_kernel::KernelIr`] are *timed* on the
//! simulated device (advancing its virtual timeline and power trace) and
//! *computed* on the host with Rayon, so applications observe both real
//! numerics and faithful energy behaviour.
//!
//! The compile step fans its sweeps out over Rayon (with serial reference
//! paths kept for equivalence testing) and memoizes trained models through
//! the persistent [`ModelStore`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod buffer;
pub mod compile;
pub mod event;
pub mod handler;
pub mod profiler;
pub mod queue;
pub mod registry;
pub mod store;

pub use buffer::{Accessor, Buffer};
pub use compile::{
    baseline_clocks, build_training_set, build_training_set_serial, clock_grid,
    compile_application, compile_application_traced, compile_application_with_lints,
    measured_sweep, measured_sweep_from_info, measured_sweep_range, measured_sweep_serial,
    predict_sweep,
    predict_sweep_from_info, predict_sweep_from_info_serial, predict_sweep_over_grid,
    sweep_samples, sweep_samples_from_info, sweep_samples_serial, train_device_models,
    train_device_models_traced, CompileError,
};
pub use event::{Event, EventStatus};
pub use handler::Handler;
pub use profiler::{KernelProfiler, ProfileReport, ProfilerError};
pub use queue::{Queue, QueueBuilder, QueueError};
pub use registry::TargetRegistry;
pub use store::{
    default_cache_dir, CacheStats, ModelKey, ModelStore, CACHE_FORMAT_VERSION,
    DEFAULT_MEMORY_CAPACITY,
};

#[cfg(test)]
mod proptests {
    use crate::queue::Queue;
    use crate::registry::TargetRegistry;
    use proptest::prelude::*;
    use std::sync::Arc;
    use synergy_kernel::{Inst, IrBuilder};
    use synergy_metrics::EnergyTarget;
    use synergy_sim::{ClockConfig, DeviceSpec, SimDevice};

    #[derive(Debug, Clone)]
    enum Submission {
        Plain { items_log2: u8 },
        Frequency { items_log2: u8, core_idx: usize },
        Target { items_log2: u8, target_idx: usize },
    }

    fn arb_submission() -> impl Strategy<Value = Submission> {
        prop_oneof![
            (10u8..18).prop_map(|items_log2| Submission::Plain { items_log2 }),
            (10u8..18, 0usize..196).prop_map(|(items_log2, core_idx)| {
                Submission::Frequency {
                    items_log2,
                    core_idx,
                }
            }),
            (10u8..18, 0usize..10).prop_map(|(items_log2, target_idx)| {
                Submission::Target {
                    items_log2,
                    target_idx,
                }
            }),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Any submission sequence completes with a consistent device
        /// timeline: events in order, windows non-overlapping, per-kernel
        /// energies summing to no more than the trace total, and every
        /// executed clock a supported table entry.
        #[test]
        fn queue_timeline_invariants(subs in prop::collection::vec(arb_submission(), 1..12)) {
            let dev = SimDevice::new(DeviceSpec::v100(), 0);
            dev.set_api_restriction(false);
            let spec = dev.spec().clone();
            // A registry covering every paper target for our kernel.
            let mut reg = TargetRegistry::new();
            for (i, &t) in EnergyTarget::PAPER_SET.iter().enumerate() {
                let core = spec.freq_table.core_mhz[(i * 19) % spec.freq_table.core_mhz.len()];
                reg.insert("prop_kernel", t, ClockConfig::new(877, core));
            }
            let q = Queue::builder(Arc::clone(&dev)).registry(Arc::new(reg)).build();
            let ir = IrBuilder::new()
                .ops(Inst::GlobalLoad, 2)
                .ops(Inst::FloatMul, 3)
                .ops(Inst::FloatAdd, 3)
                .ops(Inst::GlobalStore, 1)
                .build("prop_kernel");
            let mut events = Vec::new();
            for s in &subs {
                let ev = match *s {
                    Submission::Plain { items_log2 } => {
                        q.submit(|h| h.parallel_for_modeled(1 << items_log2, &ir))
                    }
                    Submission::Frequency { items_log2, core_idx } => {
                        let core = spec.freq_table.core_mhz[core_idx % spec.freq_table.core_mhz.len()];
                        q.submit_with_frequency(877, core, |h| {
                            h.parallel_for_modeled(1 << items_log2, &ir)
                        })
                    }
                    Submission::Target { items_log2, target_idx } => {
                        let t = EnergyTarget::PAPER_SET[target_idx % 10];
                        q.submit_with_target(t, |h| h.parallel_for_modeled(1 << items_log2, &ir))
                    }
                };
                events.push(ev);
            }
            q.wait();
            let mut last_end = 0u64;
            let mut kernel_energy = 0.0;
            for ev in &events {
                let rec = ev.execution().expect("completed");
                prop_assert!(rec.start_ns >= last_end, "overlapping kernels");
                prop_assert!(rec.end_ns > rec.start_ns);
                prop_assert!(spec.freq_table.supports(rec.clocks), "clocks {:?}", rec.clocks);
                prop_assert!(rec.energy_j > 0.0);
                last_end = rec.end_ns;
                kernel_energy += rec.energy_j;
            }
            let total = dev.trace_snapshot().total_energy_j();
            prop_assert!(total >= kernel_energy - 1e-9,
                "trace {total} J below kernel sum {kernel_energy} J");
            prop_assert_eq!(q.kernel_log().len(), subs.len());
        }

        /// The queue's coarse window equals the device energy accumulated
        /// since construction, for any workload mix.
        #[test]
        fn coarse_window_matches_device_counter(sizes in prop::collection::vec(10u8..18, 1..8)) {
            let dev = SimDevice::new(DeviceSpec::mi100(), 0);
            let before = dev.total_energy_mj() * 1e-3;
            let q = Queue::new(Arc::clone(&dev));
            let ir = IrBuilder::new()
                .ops(Inst::GlobalLoad, 1)
                .ops(Inst::FloatAdd, 2)
                .ops(Inst::GlobalStore, 1)
                .build("mix");
            for &s in &sizes {
                q.submit(|h| h.parallel_for_modeled(1 << s, &ir));
            }
            q.wait();
            let window = q.device_energy_consumption();
            let counter = dev.total_energy_mj() * 1e-3 - before;
            prop_assert!((window - counter).abs() < 1e-9);
        }
    }
}
