//! The trained-model cache.
//!
//! Training the four metric models (Figure 6, step ③) is the most
//! expensive part of the compile-time pipeline, and every figure binary,
//! integration test and CLI invocation used to redo it from scratch for
//! the same (device, suite, selection, stride, seed) inputs. The
//! [`ModelStore`] memoizes trained [`MetricModels`] in memory and persists
//! them under `experiments/cache/` as JSON, keyed by a content hash of the
//! full training input, so identical trainings are paid for once per
//! machine rather than once per process.
//!
//! ## Cache key
//!
//! The key is an FNV-1a hash over the canonical JSON serialization of
//! `(device spec, micro-benchmark suite, model selection, stride, seed,
//! format version)`. Any change to any of these — a different device, one
//! extra micro-benchmark, a different stride — produces a different key
//! and therefore a cache miss; stale entries are never served.
//!
//! ## Layout and invalidation
//!
//! One file per key: `experiments/cache/models-<hash>.json`, written
//! atomically (temp file + rename). Loaded entries are validated against
//! the expected key and format version; corrupt or mismatching files are
//! ignored and overwritten by a fresh training (counted in
//! [`CacheStats::corrupt_files`] — deserialization failures never
//! propagate). Delete the files (or the directory) to clear the cache —
//! `rm -rf experiments/cache` is always safe.
//!
//! ## Memory bound
//!
//! The in-memory memo holds at most a configurable number of trained
//! bundles ([`DEFAULT_MEMORY_CAPACITY`] unless overridden with
//! [`ModelStore::with_memory_capacity`]), evicting the least-recently
//! used entry when full. Long-lived processes — the `synergy-serve`
//! daemon in particular — therefore cannot grow without bound no matter
//! how many distinct (device, suite, stride, seed) inputs they see.
//! Evictions only drop the memo; the disk entry, when one exists, still
//! serves the next lookup.
//!
//! ## Concurrency
//!
//! The memo is striped across [`MEM_SHARDS`] reader-writer locks keyed
//! by entry hash, and recency stamps are atomics: the hot path — a
//! memory hit, which is every `synergy-serve` data-plane request after
//! warmup — takes one shard *read* lock and bumps an atomic, so
//! concurrent hits on any keys proceed in parallel. Writes (insert,
//! evict, clear) take shard write locks; the capacity check and global
//! LRU scan happen only on the insert path, which is already paying for
//! a training or a disk load.

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use synergy_kernel::MicroBenchmark;
use synergy_ml::{MetricModels, ModelSelection};
use synergy_sim::DeviceSpec;
use synergy_telemetry::{CacheOp, EventKind, Recorder};

use crate::compile::train_device_models_traced;

/// Bumped whenever the serialized model format or the training pipeline
/// changes incompatibly; old cache files then miss and are rewritten.
pub const CACHE_FORMAT_VERSION: u32 = 1;

/// Default bound on in-memory entries — generous (a trained bundle is a
/// few kilobytes; real workloads touch a handful of devices), but finite.
pub const DEFAULT_MEMORY_CAPACITY: usize = 256;

/// Lock stripes in the in-memory memo (power of two; entries map to a
/// stripe by key hash). Sixteen is far more stripes than the serve
/// daemon has workers, so shard collisions on the hit path are rare.
pub const MEM_SHARDS: usize = 16;

/// Content-hash key identifying one training input exactly.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ModelKey {
    /// 64-bit FNV-1a hash of the canonical training input, as hex.
    pub hash: String,
}

/// Everything that determines a training's output, hashed canonically.
/// The fields are read only through the `Serialize` derive.
#[derive(Serialize)]
#[allow(dead_code)]
struct KeyMaterial<'a> {
    spec: &'a DeviceSpec,
    suite: &'a [MicroBenchmark],
    selection: ModelSelection,
    stride: usize,
    seed: u64,
    version: u32,
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl ModelKey {
    /// Derive the cache key for one training input.
    pub fn for_training(
        spec: &DeviceSpec,
        suite: &[MicroBenchmark],
        selection: ModelSelection,
        stride: usize,
        seed: u64,
    ) -> ModelKey {
        let material = KeyMaterial {
            spec,
            suite,
            selection,
            stride,
            seed,
            version: CACHE_FORMAT_VERSION,
        };
        let json = serde_json::to_vec(&material).expect("key material serializes");
        ModelKey {
            hash: format!("{:016x}", fnv1a64(&json)),
        }
    }
}

/// One on-disk cache entry.
#[derive(Serialize, Deserialize)]
struct CachedModels {
    version: u32,
    key: String,
    models: MetricModels,
}

/// Cache-effectiveness counters (cumulative since store construction).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Served from the in-memory map.
    pub memory_hits: u64,
    /// Served by deserializing a cache file.
    pub disk_hits: u64,
    /// Trained from scratch.
    pub misses: u64,
    /// Entries written to disk (0 for in-memory stores and when the cache
    /// directory is unwritable — persistence is best-effort).
    pub persists: u64,
    /// In-memory entries dropped by the LRU bound.
    pub evictions: u64,
    /// Cache files that existed but failed to deserialize (corrupt or
    /// truncated); each was treated as a miss and later overwritten.
    pub corrupt_files: u64,
    /// Derived per-model caches (forest SoA layouts, SVR support sets)
    /// rebuilt after deserializing a disk entry — they are skipped by
    /// serde and freshly trained bundles carry them already, so every
    /// rebuild here is real post-load work the disk hit paid for.
    pub flat_rebuilds: u64,
}

/// One memoized bundle plus its recency stamp for LRU eviction. The
/// stamp is atomic so a shard *read* lock suffices to freshen it.
struct MemEntry {
    models: Arc<MetricModels>,
    last_used: AtomicU64,
}

/// Memoizing store for trained [`MetricModels`].
///
/// Thread-safe; clones of the returned [`Arc`] share one trained bundle.
pub struct ModelStore {
    dir: Option<PathBuf>,
    capacity: usize,
    mem: Vec<RwLock<HashMap<String, MemEntry>>>,
    /// Total entries across all shards, maintained on the write paths so
    /// the capacity check does not sweep every stripe.
    mem_len: AtomicUsize,
    tick: AtomicU64,
    memory_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    persists: AtomicU64,
    evictions: AtomicU64,
    corrupt_files: AtomicU64,
    flat_rebuilds: AtomicU64,
}

impl ModelStore {
    /// A store that memoizes in memory only (no files touched).
    pub fn in_memory() -> ModelStore {
        ModelStore {
            dir: None,
            capacity: DEFAULT_MEMORY_CAPACITY,
            mem: (0..MEM_SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            mem_len: AtomicUsize::new(0),
            tick: AtomicU64::new(0),
            memory_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            persists: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            corrupt_files: AtomicU64::new(0),
            flat_rebuilds: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, hash: &str) -> usize {
        (fnv1a64(hash.as_bytes()) as usize) & (MEM_SHARDS - 1)
    }

    /// Cap the in-memory memo at `capacity` entries (at least 1),
    /// evicting least-recently-used bundles past the bound.
    pub fn with_memory_capacity(mut self, capacity: usize) -> ModelStore {
        self.capacity = capacity.max(1);
        self
    }

    /// The in-memory memo bound.
    pub fn memory_capacity(&self) -> usize {
        self.capacity
    }

    /// A store persisting entries as JSON files under `dir` (created on
    /// first write).
    pub fn with_dir(dir: impl Into<PathBuf>) -> ModelStore {
        ModelStore {
            dir: Some(dir.into()),
            ..ModelStore::in_memory()
        }
    }

    /// The process-wide store, persisting under the workspace's
    /// `experiments/cache/` (override with `SYNERGY_MODEL_CACHE_DIR`).
    pub fn global() -> &'static ModelStore {
        static GLOBAL: OnceLock<ModelStore> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let dir = std::env::var_os("SYNERGY_MODEL_CACHE_DIR")
                .map(PathBuf::from)
                .unwrap_or_else(default_cache_dir);
            ModelStore::with_dir(dir)
        })
    }

    /// The directory entries persist to (`None` for in-memory stores).
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Return the trained models for this input, training at most once.
    ///
    /// Lookup order: in-memory map → cache file → train (then populate
    /// both). The returned models are value-identical to what
    /// [`train_device_models`] would produce for the same input.
    pub fn get_or_train(
        &self,
        spec: &DeviceSpec,
        suite: &[MicroBenchmark],
        selection: ModelSelection,
        stride: usize,
        seed: u64,
    ) -> Arc<MetricModels> {
        self.get_or_train_traced(spec, suite, selection, stride, seed, &Recorder::disabled())
    }

    /// [`Self::get_or_train`] with a telemetry recorder: the lookup's
    /// outcome (memory hit, disk hit or miss) and any successful disk
    /// persist are recorded as [`EventKind::ModelCache`] events keyed by
    /// the entry's content hash, and a miss's training is phase-traced.
    pub fn get_or_train_traced(
        &self,
        spec: &DeviceSpec,
        suite: &[MicroBenchmark],
        selection: ModelSelection,
        stride: usize,
        seed: u64,
        recorder: &Recorder,
    ) -> Arc<MetricModels> {
        let key = ModelKey::for_training(spec, suite, selection, stride, seed);
        let cache_event = |op: CacheOp| EventKind::ModelCache {
            op,
            key: key.hash.clone(),
        };
        {
            // Hot path: shard read lock only — concurrent hits (same or
            // different keys) never serialize on a store-wide mutex.
            let shard = self.mem[self.shard_of(&key.hash)].read();
            if let Some(entry) = shard.get(&key.hash) {
                entry
                    .last_used
                    .store(self.tick.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
                self.memory_hits.fetch_add(1, Ordering::Relaxed);
                recorder.record_with(0, || cache_event(CacheOp::MemoryHit));
                return Arc::clone(&entry.models);
            }
        }
        if let Some(models) = self.load(&key) {
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
            recorder.record_with(0, || cache_event(CacheOp::DiskHit));
            let models = Arc::new(models);
            self.remember(&key.hash, &models);
            return models;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        recorder.record_with(0, || cache_event(CacheOp::Miss));
        let models = Arc::new(train_device_models_traced(
            spec, suite, selection, stride, seed, recorder,
        ));
        if self.persist(&key, &models) {
            self.persists.fetch_add(1, Ordering::Relaxed);
            recorder.record_with(0, || cache_event(CacheOp::Persist));
        }
        self.remember(&key.hash, &models);
        models
    }

    /// Insert into the memo, evicting the least-recently-used entry
    /// (across all stripes) when the bound is reached.
    fn remember(&self, hash: &str, models: &Arc<MetricModels>) {
        let idx = self.shard_of(hash);
        let new_key = !self.mem[idx].read().contains_key(hash);
        if new_key && self.mem_len.load(Ordering::Relaxed) >= self.capacity {
            // Evict without holding our shard's lock (the victim may
            // live anywhere, including our own shard). A concurrent
            // insert can transiently overshoot the bound by a slot —
            // the bound is a budget, not an invariant the hit path
            // should pay a global lock for.
            self.evict_lru();
        }
        let mut shard = self.mem[idx].write();
        let inserted = shard
            .insert(
                hash.to_string(),
                MemEntry {
                    models: Arc::clone(models),
                    last_used: AtomicU64::new(self.tick.fetch_add(1, Ordering::Relaxed)),
                },
            )
            .is_none();
        if inserted {
            self.mem_len.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Find and drop the globally least-recently-used entry. Scans shard
    /// by shard under read locks, then removes under the victim shard's
    /// write lock.
    fn evict_lru(&self) {
        let mut victim: Option<(usize, String, u64)> = None;
        for (idx, lock) in self.mem.iter().enumerate() {
            let shard = lock.read();
            for (k, e) in shard.iter() {
                let t = e.last_used.load(Ordering::Relaxed);
                if victim.as_ref().is_none_or(|(_, _, vt)| t < *vt) {
                    victim = Some((idx, k.clone(), t));
                }
            }
        }
        if let Some((idx, key, _)) = victim {
            if self.mem[idx].write().remove(&key).is_some() {
                self.mem_len.fetch_sub(1, Ordering::Relaxed);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Drop one entry from memory and disk (no-op when absent). The next
    /// [`Self::get_or_train`] for that input retrains from scratch.
    pub fn evict(&self, key: &ModelKey) {
        if self.mem[self.shard_of(&key.hash)]
            .write()
            .remove(&key.hash)
            .is_some()
        {
            self.mem_len.fetch_sub(1, Ordering::Relaxed);
        }
        if let Some(path) = self.entry_path(key) {
            let _ = fs::remove_file(path);
        }
    }

    /// Drop every entry from memory and every `models-*.json` cache file
    /// from the store directory (other files are left alone).
    pub fn clear(&self) {
        for lock in &self.mem {
            let mut shard = lock.write();
            let n = shard.len();
            shard.clear();
            self.mem_len.fetch_sub(n, Ordering::Relaxed);
        }
        let Some(dir) = &self.dir else { return };
        let Ok(entries) = fs::read_dir(dir) else { return };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with("models-") && name.ends_with(".json") {
                let _ = fs::remove_file(entry.path());
            }
        }
    }

    /// Cumulative hit/miss/persist/eviction counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            memory_hits: self.memory_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            persists: self.persists.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            corrupt_files: self.corrupt_files.load(Ordering::Relaxed),
            flat_rebuilds: self.flat_rebuilds.load(Ordering::Relaxed),
        }
    }

    fn entry_path(&self, key: &ModelKey) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("models-{}.json", key.hash)))
    }

    /// Read one cache file; `None` is always a miss, never an error. A
    /// file that exists but fails to deserialize (corrupt, truncated,
    /// wrong format) is counted and treated exactly like a missing file —
    /// the caller retrains and the fresh persist overwrites it.
    fn load(&self, key: &ModelKey) -> Option<MetricModels> {
        let path = self.entry_path(key)?;
        let text = match fs::read_to_string(path) {
            Ok(text) => text,
            Err(_) => return None, // missing or unreadable: plain miss
        };
        let cached: CachedModels = match serde_json::from_str(&text) {
            Ok(cached) => cached,
            Err(_) => {
                self.corrupt_files.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        if cached.version != CACHE_FORMAT_VERSION || cached.key != key.hash {
            return None;
        }
        // Serde skips the derived prediction caches; rebuild them now so
        // the disk hit hands out a bundle as query-ready as a fresh
        // training, instead of paying lazily inside the first predictions.
        let rebuilt = cached.models.prime_derived();
        self.flat_rebuilds
            .fetch_add(rebuilt as u64, Ordering::Relaxed);
        Some(cached.models)
    }

    /// Best-effort persistence: an unwritable cache directory degrades the
    /// store to in-memory memoization rather than failing the pipeline.
    /// Returns whether the entry actually reached disk.
    fn persist(&self, key: &ModelKey, models: &MetricModels) -> bool {
        let Some(path) = self.entry_path(key) else { return false };
        let Some(dir) = path.parent() else { return false };
        if fs::create_dir_all(dir).is_err() {
            return false;
        }
        let cached = CachedModels {
            version: CACHE_FORMAT_VERSION,
            key: key.hash.clone(),
            models: models.clone(),
        };
        let Ok(json) = serde_json::to_string(&cached) else { return false };
        // Atomic-ish: write a process-unique temp file, then rename over
        // the final name so concurrent readers never see a torn file.
        let tmp = dir.join(format!(".tmp-{}-{}", std::process::id(), key.hash));
        if fs::write(&tmp, json).is_err() {
            return false;
        }
        if fs::rename(&tmp, &path).is_err() {
            let _ = fs::remove_file(&tmp);
            return false;
        }
        true
    }

    /// Freshen an entry's recency exactly the way a memory hit does.
    #[cfg(test)]
    fn touch(&self, hash: &str) -> bool {
        let shard = self.mem[self.shard_of(hash)].read();
        match shard.get(hash) {
            Some(e) => {
                e.last_used
                    .store(self.tick.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    #[cfg(test)]
    fn contains(&self, hash: &str) -> bool {
        self.mem[self.shard_of(hash)].read().contains_key(hash)
    }

    /// Entries actually present across all stripes (cross-checks the
    /// `mem_len` counter in tests).
    #[cfg(test)]
    fn mem_entries(&self) -> usize {
        self.mem.iter().map(|l| l.read().len()).sum()
    }
}

/// The workspace-level default cache directory, `experiments/cache/`.
pub fn default_cache_dir() -> PathBuf {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop(); // crates/
    dir.pop(); // workspace root
    dir.push("experiments");
    dir.push("cache");
    dir
}

#[cfg(test)]
mod tests {
    use super::*;
    use synergy_kernel::{generate_microbench, MicroBenchConfig};
    use synergy_ml::Algorithm;

    fn tiny_suite() -> Vec<MicroBenchmark> {
        let cfg = MicroBenchConfig {
            intensities: [1, 8, 32, 128],
            mixed_kernels: 2,
            work_items: 1 << 16,
        };
        generate_microbench(42, &cfg)[..6].to_vec()
    }

    fn test_dir(name: &str) -> PathBuf {
        default_cache_dir().join(format!("test-{}-{}", name, std::process::id()))
    }

    #[test]
    fn key_is_deterministic_and_input_sensitive() {
        let spec = DeviceSpec::v100();
        let suite = tiny_suite();
        let sel = ModelSelection::uniform(Algorithm::Linear);
        let k1 = ModelKey::for_training(&spec, &suite, sel, 8, 0);
        let k2 = ModelKey::for_training(&spec, &suite, sel, 8, 0);
        assert_eq!(k1, k2);
        // Every key ingredient must perturb the hash.
        let others = [
            ModelKey::for_training(&DeviceSpec::mi100(), &suite, sel, 8, 0),
            ModelKey::for_training(&spec, &suite[..5], sel, 8, 0),
            ModelKey::for_training(&spec, &suite, ModelSelection::paper_best(), 8, 0),
            ModelKey::for_training(&spec, &suite, sel, 9, 0),
            ModelKey::for_training(&spec, &suite, sel, 8, 1),
        ];
        for (i, k) in others.iter().enumerate() {
            assert_ne!(&k1, k, "ingredient {i} did not change the key");
        }
    }

    #[test]
    fn memory_memoization_shares_one_training() {
        let store = ModelStore::in_memory();
        let spec = DeviceSpec::v100();
        let suite = tiny_suite();
        let sel = ModelSelection::uniform(Algorithm::Linear);
        let a = store.get_or_train(&spec, &suite, sel, 32, 0);
        let b = store.get_or_train(&spec, &suite, sel, 32, 0);
        assert!(Arc::ptr_eq(&a, &b), "second call must hit the memo");
        let s = store.stats();
        assert_eq!((s.misses, s.memory_hits, s.disk_hits), (1, 1, 0));
    }

    #[test]
    fn disk_round_trip_is_value_identical() {
        let dir = test_dir("roundtrip");
        let spec = DeviceSpec::v100();
        let suite = tiny_suite();
        let sel = ModelSelection::uniform(Algorithm::Linear);

        let store = ModelStore::with_dir(&dir);
        let trained = store.get_or_train(&spec, &suite, sel, 32, 7);
        assert_eq!(store.stats().misses, 1);

        // A fresh store over the same directory must load, not retrain,
        // and the loaded bundle must equal the trained one as a value.
        let fresh = ModelStore::with_dir(&dir);
        let loaded = fresh.get_or_train(&spec, &suite, sel, 32, 7);
        let s = fresh.stats();
        assert_eq!((s.misses, s.disk_hits), (0, 1));
        assert_eq!(*trained, *loaded);

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_hit_rebuilds_derived_caches_and_counts() {
        let dir = test_dir("rebuilds");
        let spec = DeviceSpec::v100();
        let suite = tiny_suite();
        // paper_best carries two random forests — the models whose flat
        // prediction layout does not survive serialization.
        let sel = ModelSelection::paper_best();

        let store = ModelStore::with_dir(&dir);
        let trained = store.get_or_train(&spec, &suite, sel, 32, 7);
        let _ = store.get_or_train(&spec, &suite, sel, 32, 7);
        assert_eq!(
            store.stats().flat_rebuilds,
            0,
            "misses and memory hits serve fit-primed bundles"
        );

        // A fresh store over the same directory loads from disk (under
        // the current CACHE_FORMAT_VERSION, proving the optimized
        // trainers changed nothing on disk) and rebuilds both forests.
        let fresh = ModelStore::with_dir(&dir);
        let loaded = fresh.get_or_train(&spec, &suite, sel, 32, 7);
        let s = fresh.stats();
        assert_eq!((s.misses, s.disk_hits), (0, 1));
        assert_eq!(s.flat_rebuilds, 2, "both forests rebuild exactly once");
        assert_eq!(*trained, *loaded, "round trip is value-identical");
        assert_eq!(
            loaded.prime_derived(),
            0,
            "the served bundle is already primed"
        );

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_forces_retraining() {
        let dir = test_dir("evict");
        let spec = DeviceSpec::v100();
        let suite = tiny_suite();
        let sel = ModelSelection::uniform(Algorithm::Linear);
        let key = ModelKey::for_training(&spec, &suite, sel, 32, 0);

        let store = ModelStore::with_dir(&dir);
        let _ = store.get_or_train(&spec, &suite, sel, 32, 0);
        store.evict(&key);
        let _ = store.get_or_train(&spec, &suite, sel, 32, 0);
        assert_eq!(store.stats().misses, 2, "evicted entry must retrain");

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_cache_file_is_counted_and_overwritten() {
        let dir = test_dir("corrupt");
        let spec = DeviceSpec::v100();
        let suite = tiny_suite();
        let sel = ModelSelection::uniform(Algorithm::Linear);
        let key = ModelKey::for_training(&spec, &suite, sel, 32, 0);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("models-{}.json", key.hash));
        fs::write(&path, "{not json").unwrap();

        let store = ModelStore::with_dir(&dir);
        let _ = store.get_or_train(&spec, &suite, sel, 32, 0);
        let s = store.stats();
        assert_eq!((s.misses, s.disk_hits), (1, 0), "corrupt file must not be served");
        assert_eq!(s.corrupt_files, 1, "the bad file must be counted");
        assert_eq!(s.persists, 1, "the retrain must overwrite the bad file");
        assert_ne!(
            fs::read_to_string(&path).unwrap(),
            "{not json",
            "the persisted entry must replace the corrupt bytes"
        );

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_cache_file_is_a_miss_not_an_error() {
        let dir = test_dir("truncated");
        let spec = DeviceSpec::v100();
        let suite = tiny_suite();
        let sel = ModelSelection::uniform(Algorithm::Linear);
        let key = ModelKey::for_training(&spec, &suite, sel, 32, 5);

        // Produce a valid file, then truncate it mid-document.
        let store = ModelStore::with_dir(&dir);
        let trained = store.get_or_train(&spec, &suite, sel, 32, 5);
        let path = dir.join(format!("models-{}.json", key.hash));
        let full = fs::read_to_string(&path).unwrap();
        fs::write(&path, &full[..full.len() / 2]).unwrap();

        let fresh = ModelStore::with_dir(&dir);
        let retrained = fresh.get_or_train(&spec, &suite, sel, 32, 5);
        let s = fresh.stats();
        assert_eq!((s.misses, s.disk_hits), (1, 0));
        assert_eq!(*trained, *retrained, "retraining must reproduce the bundle");

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_bound_evicts_oldest_and_counts() {
        use crate::compile::train_device_models;

        let store = ModelStore::in_memory().with_memory_capacity(2);
        assert_eq!(store.memory_capacity(), 2);
        let spec = DeviceSpec::v100();
        let suite = tiny_suite();
        let sel = ModelSelection::uniform(Algorithm::Linear);
        let models = Arc::new(train_device_models(&spec, &suite, sel, 32, 0));

        store.remember("a", &models);
        store.remember("b", &models);
        // Freshen "a" the way a memory hit does.
        assert!(store.touch("a"));
        // Past the bound: "b" is now the least recently used.
        store.remember("c", &models);
        assert!(store.contains("a"), "recently-used entry must survive");
        assert!(store.contains("c"));
        assert!(!store.contains("b"), "LRU entry must be evicted");
        assert_eq!(store.mem_entries(), 2);
        assert_eq!(store.stats().evictions, 1);

        // Re-inserting an existing key neither grows nor evicts.
        store.remember("c", &models);
        assert_eq!(store.mem_entries(), 2);
        assert_eq!(store.stats().evictions, 1);

        // The striped-length counter tracks the real entry count.
        store.evict(&ModelKey {
            hash: "c".to_string(),
        });
        assert_eq!(store.mem_entries(), 1);
        store.clear();
        assert_eq!(store.mem_entries(), 0);
    }

    #[test]
    fn concurrent_hits_take_only_read_locks_and_share_one_bundle() {
        let store = Arc::new(ModelStore::in_memory());
        let spec = DeviceSpec::v100();
        let suite = tiny_suite();
        let sel = ModelSelection::uniform(Algorithm::Linear);
        let first = store.get_or_train(&spec, &suite, sel, 32, 0);

        let threads: Vec<_> = (0..8)
            .map(|_| {
                let store = Arc::clone(&store);
                let spec = spec.clone();
                let suite = suite.clone();
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        let _ = store.get_or_train(&spec, &suite, sel, 32, 0);
                    }
                    store.get_or_train(&spec, &suite, sel, 32, 0)
                })
            })
            .collect();
        for t in threads {
            let m = t.join().unwrap();
            assert!(Arc::ptr_eq(&first, &m), "all hits must share one bundle");
        }
        let s = store.stats();
        assert_eq!(s.misses, 1, "exactly one training");
        assert_eq!(s.memory_hits, 8 * 51, "every other lookup is a memory hit");
    }

    #[test]
    fn capacity_floor_is_one() {
        let store = ModelStore::in_memory().with_memory_capacity(0);
        assert_eq!(store.memory_capacity(), 1);
        let spec = DeviceSpec::v100();
        let suite = tiny_suite();
        let sel = ModelSelection::uniform(Algorithm::Linear);
        let _ = store.get_or_train(&spec, &suite, sel, 32, 0);
        let _ = store.get_or_train(&spec, &suite, sel, 32, 0);
        assert_eq!(store.stats().memory_hits, 1, "a single slot still memoizes");
    }

    #[test]
    fn persist_counter_and_cache_trace_follow_the_lookup_path() {
        let dir = test_dir("traced");
        let spec = DeviceSpec::v100();
        let suite = tiny_suite();
        let sel = ModelSelection::uniform(Algorithm::Linear);
        let rec = Recorder::enabled();

        // Miss → train → persist, then a memory hit.
        let store = ModelStore::with_dir(&dir);
        let _ = store.get_or_train_traced(&spec, &suite, sel, 32, 3, &rec);
        let _ = store.get_or_train_traced(&spec, &suite, sel, 32, 3, &rec);
        let s = store.stats();
        assert_eq!(
            (s.misses, s.persists, s.memory_hits, s.disk_hits),
            (1, 1, 1, 0)
        );

        // And a disk hit from a fresh store over the same directory.
        let fresh = ModelStore::with_dir(&dir);
        let _ = fresh.get_or_train_traced(&spec, &suite, sel, 32, 3, &rec);
        assert_eq!(fresh.stats().disk_hits, 1);

        let ops: Vec<CacheOp> = rec
            .drain()
            .into_iter()
            .filter_map(|e| match e.kind {
                EventKind::ModelCache { op, .. } => Some(op),
                _ => None,
            })
            .collect();
        assert_eq!(
            ops,
            vec![
                CacheOp::Miss,
                CacheOp::Persist,
                CacheOp::MemoryHit,
                CacheOp::DiskHit
            ]
        );

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn in_memory_store_never_persists() {
        let store = ModelStore::in_memory();
        let spec = DeviceSpec::v100();
        let suite = tiny_suite();
        let sel = ModelSelection::uniform(Algorithm::Linear);
        let _ = store.get_or_train(&spec, &suite, sel, 32, 0);
        assert_eq!(store.stats().persists, 0);
    }

    #[test]
    fn clear_removes_only_cache_files() {
        let dir = test_dir("clear");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("keep.txt"), "unrelated").unwrap();
        let spec = DeviceSpec::v100();
        let suite = tiny_suite();
        let sel = ModelSelection::uniform(Algorithm::Linear);
        let store = ModelStore::with_dir(&dir);
        let _ = store.get_or_train(&spec, &suite, sel, 32, 0);
        store.clear();
        let names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["keep.txt".to_string()]);
        let _ = fs::remove_dir_all(&dir);
    }
}
