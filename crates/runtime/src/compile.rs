//! The "compile step": feature extraction → model inference → frequency
//! search, producing a [`TargetRegistry`] the runtime consults at kernel
//! submission (the left half of the paper's Figure 3).
//!
//! Also hosts the training-side helpers of Figure 6: sweeping the
//! micro-benchmark suite over a device's frequency table to build the
//! training set, and fitting the four single-target metric models.
//!
//! ## Parallel sweep engine
//!
//! The sweeps and the per-kernel compilation fan out over Rayon: the work
//! items are independent (micro-benchmark × frequency-configuration, or
//! kernel × target), each is computed exactly as on the serial path, and
//! results are collected in input order — so parallel output is
//! element-for-element identical to the serial reference implementations
//! ([`sweep_samples_serial`], [`build_training_set_serial`],
//! [`measured_sweep_serial`]), which stay exported for verification.
//!
//! ## Batched prediction
//!
//! Predicted sweeps run through the batched inference engine: the clock
//! grid is collected once per compile ([`clock_grid`]), each kernel's
//! input matrix is built in one pass, and the four metric models consume
//! it through their `predict_batch` fast paths
//! ([`predict_sweep_over_grid`]) — Rayon fans out per grid *chunk*, not
//! per configuration, and nothing allocates per configuration. The
//! per-configuration path stays exported as
//! [`predict_sweep_from_info_serial`], and the batched output is asserted
//! bitwise identical to it.

use crate::registry::TargetRegistry;
use rayon::prelude::*;
use std::time::Instant;
use synergy_analyze::{LintRegistry, Report};
use synergy_kernel::{extract, KernelIr, KernelStaticInfo, MicroBenchmark, NUM_FEATURES};
use synergy_metrics::{EnergyTarget, IndexedSweep, MetricPoint};
use synergy_ml::{MetricModels, ModelSelection, SweepSample};
use synergy_sim::{evaluate, ClockConfig, DeviceSpec, Workload};
use synergy_telemetry::{EventKind, Phase, Recorder};

/// Record one compile-pipeline phase: wall-time it around `f` and emit a
/// [`EventKind::PhaseEnd`] (at virtual time 0 — pipeline phases run on the
/// host, not on any device timeline).
fn timed_phase<T>(
    recorder: &Recorder,
    phase: Phase,
    detail: &str,
    items: impl FnOnce(&T) -> u64,
    f: impl FnOnce() -> T,
) -> T {
    let t0 = Instant::now();
    let out = f();
    recorder.record_with(0, || EventKind::PhaseEnd {
        phase,
        wall_dur_ns: t0.elapsed().as_nanos() as u64,
        items: items(&out),
        detail: detail.to_string(),
    });
    out
}

/// Shared per-kernel context for one sweep: the workload and the
/// default-clock normalizers, computed once, sampled at many clocks.
struct SweepContext<'a> {
    spec: &'a DeviceSpec,
    info: &'a KernelStaticInfo,
    wl: Workload,
    t_base: f64,
    e_base: f64,
}

impl<'a> SweepContext<'a> {
    fn new(spec: &'a DeviceSpec, info: &'a KernelStaticInfo, work_items: u64) -> Self {
        let wl = Workload::from_static(info, work_items);
        let base = evaluate(spec, &wl, spec.baseline_clocks());
        let t_base = base.duration_s().max(f64::MIN_POSITIVE);
        let e_base = base.energy_j(spec.overhead_power_w).max(f64::MIN_POSITIVE);
        SweepContext { spec, info, wl, t_base, e_base }
    }

    fn sample(&self, clocks: ClockConfig) -> SweepSample {
        let timing = evaluate(self.spec, &self.wl, clocks);
        SweepSample {
            features: self.info.features.as_slice().to_vec(),
            core_mhz: clocks.core_mhz as f64,
            mem_mhz: clocks.mem_mhz as f64,
            time_s: timing.duration_s() / self.t_base,
            energy_j: timing.energy_j(self.spec.overhead_power_w) / self.e_base,
        }
    }
}

/// Every `stride`-th supported clock configuration, in table order.
fn strided_configs(spec: &DeviceSpec, stride: usize) -> Vec<ClockConfig> {
    spec.freq_table
        .configs()
        .step_by(stride.max(1))
        .collect()
}

/// Sweep one workload over every `stride`-th supported clock configuration
/// (mem × core) of the device, producing training samples. Configurations
/// are evaluated in parallel; output order is the table order.
///
/// Targets are **normalized to the kernel's default-clock values**
/// (`t(f)/t(f_default)`, `e(f)/e(f_default)`). Absolute time and energy
/// span orders of magnitude across kernels, which would drown the
/// frequency effect the models must learn; every energy-target selection
/// is invariant to this per-kernel rescaling (argmin and the ES/PL
/// budgets all commute with a positive constant factor).
pub fn sweep_samples(spec: &DeviceSpec, ir: &KernelIr, work_items: u64, stride: usize) -> Vec<SweepSample> {
    let info = extract(ir);
    sweep_samples_from_info(spec, &info, work_items, stride)
}

/// [`sweep_samples`] with a pre-extracted [`KernelStaticInfo`], so callers
/// sweeping one kernel for several devices or strides extract only once.
pub fn sweep_samples_from_info(
    spec: &DeviceSpec,
    info: &KernelStaticInfo,
    work_items: u64,
    stride: usize,
) -> Vec<SweepSample> {
    let ctx = SweepContext::new(spec, info, work_items);
    strided_configs(spec, stride)
        .par_iter()
        .map(|&clocks| ctx.sample(clocks))
        .collect()
}

/// Serial reference implementation of [`sweep_samples`]; kept for the
/// parallel-equivalence guarantee (tests assert bitwise-identical output).
pub fn sweep_samples_serial(
    spec: &DeviceSpec,
    ir: &KernelIr,
    work_items: u64,
    stride: usize,
) -> Vec<SweepSample> {
    let info = extract(ir);
    let ctx = SweepContext::new(spec, &info, work_items);
    strided_configs(spec, stride)
        .iter()
        .map(|&clocks| ctx.sample(clocks))
        .collect()
}

/// Build the full training set from a micro-benchmark suite (Figure 6,
/// steps ①–②): every micro-benchmark is "executed" at every `stride`-th
/// frequency configuration and its per-item time and energy recorded.
/// The (micro-benchmark × configuration) grid is evaluated in parallel;
/// sample order matches the serial path exactly.
pub fn build_training_set(
    spec: &DeviceSpec,
    suite: &[MicroBenchmark],
    stride: usize,
) -> Vec<SweepSample> {
    let per_bench: Vec<Vec<SweepSample>> = suite
        .par_iter()
        .map(|mb| sweep_samples(spec, &mb.ir, mb.work_items, stride))
        .collect();
    per_bench.into_iter().flatten().collect()
}

/// Serial reference implementation of [`build_training_set`]; kept for the
/// parallel-equivalence guarantee (tests assert bitwise-identical output).
pub fn build_training_set_serial(
    spec: &DeviceSpec,
    suite: &[MicroBenchmark],
    stride: usize,
) -> Vec<SweepSample> {
    suite
        .iter()
        .flat_map(|mb| sweep_samples_serial(spec, &mb.ir, mb.work_items, stride))
        .collect()
}

/// Train the four metric models for a device from a micro-benchmark suite
/// (Figure 6, step ③).
pub fn train_device_models(
    spec: &DeviceSpec,
    suite: &[MicroBenchmark],
    selection: ModelSelection,
    stride: usize,
    seed: u64,
) -> MetricModels {
    train_device_models_traced(spec, suite, selection, stride, seed, &Recorder::disabled())
}

/// [`train_device_models`] with a telemetry recorder: the sweep and the
/// model fit are wall-timed and recorded as `sweep` and `train`
/// [`EventKind::PhaseEnd`] events tagged with the device name.
pub fn train_device_models_traced(
    spec: &DeviceSpec,
    suite: &[MicroBenchmark],
    selection: ModelSelection,
    stride: usize,
    seed: u64,
    recorder: &Recorder,
) -> MetricModels {
    let samples = timed_phase(
        recorder,
        Phase::Sweep,
        &spec.name,
        |s: &Vec<SweepSample>| s.len() as u64,
        || build_training_set(spec, suite, stride),
    );
    let n_samples = samples.len() as u64;
    timed_phase(
        recorder,
        Phase::Train,
        &spec.name,
        |_| n_samples,
        || {
            MetricModels::train(
                selection,
                &samples,
                spec.freq_table.max_core() as f64,
                seed,
            )
        },
    )
}

/// Predict the full per-frequency metric sweep for one kernel
/// (Figure 6, steps ④–⑤). Times/energies are in the models' normalized
/// scale (relative to the kernel's default-clock values); every target
/// selection is invariant to that normalization.
pub fn predict_sweep(
    spec: &DeviceSpec,
    models: &MetricModels,
    ir: &KernelIr,
) -> Vec<MetricPoint> {
    let info = extract(ir);
    predict_sweep_from_info(spec, models, &info)
}

/// [`predict_sweep`] with a pre-extracted [`KernelStaticInfo`] — the
/// accuracy study predicts the same kernel once per algorithm, and only
/// needs to extract features once. The supported clock grid is collected
/// once and fed through the batched engine
/// ([`predict_sweep_over_grid`]); output order is the table order.
pub fn predict_sweep_from_info(
    spec: &DeviceSpec,
    models: &MetricModels,
    info: &KernelStaticInfo,
) -> Vec<MetricPoint> {
    let grid = clock_grid(spec);
    predict_sweep_over_grid(models, info, &grid)
}

/// Serial per-configuration reference implementation of
/// [`predict_sweep_from_info`]: one `input_row` allocation and four
/// `predict_row` dispatches per configuration. Kept exported for the
/// batched-equivalence guarantee — tests assert the batched grid path is
/// bitwise identical to this.
pub fn predict_sweep_from_info_serial(
    spec: &DeviceSpec,
    models: &MetricModels,
    info: &KernelStaticInfo,
) -> Vec<MetricPoint> {
    spec.freq_table
        .configs()
        .map(|clocks| {
            let p = models.predict(
                info.features.as_slice(),
                clocks.core_mhz as f64,
                clocks.mem_mhz as f64,
            );
            MetricPoint::new(clocks, p.time_s, p.energy_j)
        })
        .collect()
}

/// The device's full supported clock grid in table order — collect it
/// once per compile or study and share it across kernels instead of
/// re-collecting per predicted sweep.
pub fn clock_grid(spec: &DeviceSpec) -> Vec<ClockConfig> {
    spec.freq_table.configs().collect()
}

/// Grid rows handed to one batched model dispatch. Large enough to
/// amortize the four model dispatches, small enough that a 196-config
/// grid still fans out across workers.
const PREDICT_CHUNK: usize = 64;

/// Predict the metric sweep for one kernel over a pre-collected clock
/// grid, batched: the grid is split into chunks, each chunk builds its
/// slice of the input matrix once and runs the four models' batched fast
/// paths over it. Rayon parallelism is per **chunk**, not per
/// configuration, and no allocations happen per configuration.
///
/// Output is bitwise identical to [`predict_sweep_from_info_serial`] —
/// element `i` of the result is element `i` of the serial reference.
pub fn predict_sweep_over_grid(
    models: &MetricModels,
    info: &KernelStaticInfo,
    grid: &[ClockConfig],
) -> Vec<MetricPoint> {
    let features = info.features.as_slice();
    let pairs: Vec<(f64, f64)> = grid
        .iter()
        .map(|c| (c.core_mhz as f64, c.mem_mhz as f64))
        .collect();
    let per_chunk: Vec<Vec<MetricPoint>> = pairs
        .par_chunks(PREDICT_CHUNK)
        .zip(grid.par_chunks(PREDICT_CHUNK))
        .map(|(chunk_pairs, chunk_clocks)| {
            models
                .predict_sweep_batch(features, chunk_pairs)
                .into_iter()
                .zip(chunk_clocks)
                .map(|(p, &clocks)| MetricPoint::new(clocks, p.time_s, p.energy_j))
                .collect()
        })
        .collect();
    per_chunk.into_iter().flatten().collect()
}

/// The compile step aborted: at least one deny-level diagnostic was found
/// while linting the kernels, their predicted sweeps or the model bundle.
///
/// The full [`Report`] (including any warn-level findings collected before
/// the abort) is carried along so callers can render or serialize it.
#[derive(Debug, Clone)]
pub struct CompileError {
    /// Everything the lint passes found, deny-level findings included.
    pub report: Report,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "compile aborted by {} deny-level diagnostic(s):\n{}",
            self.report.deny_count(),
            self.report.render()
        )
    }
}

impl std::error::Error for CompileError {}

/// The compile step proper (Figure 6, step ⑥): for every kernel of an
/// application and every requested target, search the predicted sweep and
/// record the chosen frequency in the registry. Kernels compile in
/// parallel; each kernel's sweep is indexed once and searched for every
/// target (instead of re-scanning the sweep per target).
///
/// Every input is linted with the built-in [`LintRegistry`] first: the
/// model bundle once, then each kernel's IR and predicted sweep. A
/// deny-level finding aborts with a [`CompileError`] carrying the full
/// report. Warn-level findings do not block (run `synergy lint` or
/// [`compile_application_with_lints`] with stricter levels to surface
/// them).
pub fn compile_application(
    spec: &DeviceSpec,
    models: &MetricModels,
    kernels: &[KernelIr],
    targets: &[EnergyTarget],
) -> Result<TargetRegistry, CompileError> {
    compile_application_with_lints(spec, models, kernels, targets, &LintRegistry::with_builtin())
}

/// [`compile_application`] with a caller-provided lint registry, so levels
/// can be tightened (warn → deny), relaxed (deny → allow) or extended with
/// project-specific passes.
pub fn compile_application_with_lints(
    spec: &DeviceSpec,
    models: &MetricModels,
    kernels: &[KernelIr],
    targets: &[EnergyTarget],
    lints: &LintRegistry,
) -> Result<TargetRegistry, CompileError> {
    compile_application_traced(spec, models, kernels, targets, lints, &Recorder::disabled())
}

/// Per-kernel selection outcome: kernel name, its lint report, and the
/// chosen clocks per energy target.
type KernelDecision = (String, Report, Vec<(EnergyTarget, ClockConfig)>);

/// [`compile_application_with_lints`] with a telemetry recorder: feature
/// extraction and the predict-and-search pass are wall-timed and recorded
/// as `extract` and `select` [`EventKind::PhaseEnd`] events.
pub fn compile_application_traced(
    spec: &DeviceSpec,
    models: &MetricModels,
    kernels: &[KernelIr],
    targets: &[EnergyTarget],
    lints: &LintRegistry,
    recorder: &Recorder,
) -> Result<TargetRegistry, CompileError> {
    let baseline = spec.baseline_clocks();
    let grid = clock_grid(spec);
    let mut report = lints.check_models(models, spec, NUM_FEATURES);
    let infos = timed_phase(
        recorder,
        Phase::Extract,
        &spec.name,
        |i: &Vec<KernelStaticInfo>| i.len() as u64,
        || kernels.par_iter().map(extract).collect(),
    );
    let decisions: Vec<KernelDecision> = timed_phase(
        recorder,
        Phase::Select,
        &spec.name,
        |_| (kernels.len() * targets.len()) as u64,
        || {
            kernels
                .par_iter()
                .zip(infos.par_iter())
                .map(|(ir, info)| {
                    let mut rep = lints.check_kernel(ir);
                    let points = predict_sweep_over_grid(models, info, &grid);
                    rep.merge(lints.check_sweep(&points, baseline, targets));
                    let sweep = IndexedSweep::new(points);
                    let per_target: Vec<(EnergyTarget, ClockConfig)> = targets
                        .iter()
                        .filter_map(|&target| {
                            sweep.search(target, baseline).map(|p| (target, p.clocks))
                        })
                        .collect();
                    (ir.name.clone(), rep, per_target)
                })
                .collect()
        },
    );
    let mut registry = TargetRegistry::new();
    for (name, rep, per_target) in decisions {
        report.merge(rep.prefixed(&name));
        for (target, clocks) in per_target {
            registry.insert(&name, target, clocks);
        }
    }
    if report.has_deny() {
        return Err(CompileError { report });
    }
    Ok(registry)
}

/// Measure (on the simulator) the true metric sweep for a kernel — the
/// ground truth the accuracy study compares predictions against.
/// Configurations are evaluated in parallel; output order is the table
/// order.
pub fn measured_sweep(spec: &DeviceSpec, ir: &KernelIr, work_items: u64) -> Vec<MetricPoint> {
    let info = extract(ir);
    measured_sweep_from_info(spec, &info, work_items)
}

/// [`measured_sweep`] with a pre-extracted [`KernelStaticInfo`].
pub fn measured_sweep_from_info(
    spec: &DeviceSpec,
    info: &KernelStaticInfo,
    work_items: u64,
) -> Vec<MetricPoint> {
    let wl = Workload::from_static(info, work_items);
    let configs: Vec<ClockConfig> = spec.freq_table.configs().collect();
    configs
        .par_iter()
        .map(|&clocks| {
            let t = evaluate(spec, &wl, clocks);
            MetricPoint::new(clocks, t.duration_s(), t.energy_j(spec.overhead_power_w))
        })
        .collect()
}

/// Measure one contiguous slice `[offset, offset + limit)` of the clock
/// grid — the unit of checkpointable sweep work the fleet coordinator
/// hands out. Each configuration is evaluated independently, so the
/// concatenation of range results in offset order is bitwise identical
/// to one full [`measured_sweep`] over the same kernel.
pub fn measured_sweep_range(
    spec: &DeviceSpec,
    ir: &KernelIr,
    work_items: u64,
    offset: usize,
    limit: usize,
) -> Vec<MetricPoint> {
    let info = extract(ir);
    let wl = Workload::from_static(&info, work_items);
    let configs: Vec<ClockConfig> = spec.freq_table.configs().collect();
    let end = offset.saturating_add(limit).min(configs.len());
    let slice = &configs[offset.min(configs.len())..end];
    slice
        .par_iter()
        .map(|&clocks| {
            let t = evaluate(spec, &wl, clocks);
            MetricPoint::new(clocks, t.duration_s(), t.energy_j(spec.overhead_power_w))
        })
        .collect()
}

/// Serial reference implementation of [`measured_sweep`]; kept for the
/// parallel-equivalence guarantee (tests assert bitwise-identical output).
pub fn measured_sweep_serial(
    spec: &DeviceSpec,
    ir: &KernelIr,
    work_items: u64,
) -> Vec<MetricPoint> {
    let info = extract(ir);
    let wl = Workload::from_static(&info, work_items);
    spec.freq_table
        .configs()
        .map(|clocks| {
            let t = evaluate(spec, &wl, clocks);
            MetricPoint::new(clocks, t.duration_s(), t.energy_j(spec.overhead_power_w))
        })
        .collect()
}

/// Default clock configuration used as the ES/PL baseline on `spec`.
pub fn baseline_clocks(spec: &DeviceSpec) -> ClockConfig {
    spec.baseline_clocks()
}

#[cfg(test)]
mod tests {
    use super::*;
    use synergy_kernel::{generate_microbench, Inst, IrBuilder, MicroBenchConfig};
    use synergy_ml::Algorithm;

    fn small_suite() -> Vec<MicroBenchmark> {
        let cfg = MicroBenchConfig {
            intensities: [1, 16, 64, 256],
            mixed_kernels: 8,
            work_items: 1 << 18,
        };
        generate_microbench(42, &cfg)
    }

    fn test_kernel() -> KernelIr {
        IrBuilder::new()
            .ops(Inst::GlobalLoad, 2)
            .loop_n(48, |b| b.ops(Inst::FloatMul, 1).ops(Inst::FloatAdd, 1))
            .ops(Inst::GlobalStore, 1)
            .build("compute_heavy")
    }

    #[test]
    fn training_set_covers_sweep() {
        let spec = DeviceSpec::v100();
        let suite = small_suite();
        let set = build_training_set(&spec, &suite[..4], 16);
        // 196 clocks / 16 stride = 13 per benchmark.
        assert_eq!(set.len(), 4 * 13);
        assert!(set.iter().all(|s| s.time_s > 0.0 && s.energy_j > 0.0));
    }

    #[test]
    fn linear_time_model_predicts_measured_sweep() {
        let spec = DeviceSpec::v100();
        let suite = small_suite();
        let models = train_device_models(
            &spec,
            &suite,
            ModelSelection::uniform(Algorithm::Linear),
            8,
            0,
        );
        let ir = test_kernel();
        let predicted = predict_sweep(&spec, &models, &ir);
        let measured = measured_sweep(&spec, &ir, 1 << 18);
        assert_eq!(predicted.len(), measured.len());
        // Compare *shapes*: the predicted time ratio between min and max
        // frequency should match the measured ratio within 25%.
        let ratio = |s: &[MetricPoint]| s[0].time_s / s[s.len() - 1].time_s;
        let rp = ratio(&predicted);
        let rm = ratio(&measured);
        assert!(
            (rp / rm - 1.0).abs() < 0.25,
            "time ratio predicted {rp:.2} vs measured {rm:.2}"
        );
    }

    #[test]
    fn compile_fills_registry_for_all_targets() {
        let spec = DeviceSpec::v100();
        let suite = small_suite();
        let models = train_device_models(
            &spec,
            &suite,
            ModelSelection::paper_best(),
            16,
            1,
        );
        let kernels = vec![test_kernel()];
        let registry = compile_application(
            &spec,
            &models,
            &kernels,
            &EnergyTarget::PAPER_SET,
        )
        .expect("clean inputs compile");
        assert_eq!(registry.len(), EnergyTarget::PAPER_SET.len());
        for t in EnergyTarget::PAPER_SET {
            let c = registry.lookup("compute_heavy", t).unwrap();
            assert!(spec.freq_table.supports(c), "{t}: {c:?}");
        }
    }

    #[test]
    fn registry_orders_extremes_sensibly() {
        // MAX_PERF should pick a clock at least as high as MIN_ENERGY for a
        // compute-bound kernel.
        let spec = DeviceSpec::v100();
        let suite = small_suite();
        let models =
            train_device_models(&spec, &suite, ModelSelection::paper_best(), 16, 2);
        let registry = compile_application(
            &spec,
            &models,
            &[test_kernel()],
            &[EnergyTarget::MaxPerf, EnergyTarget::MinEnergy],
        )
        .expect("clean inputs compile");
        let fast = registry
            .lookup("compute_heavy", EnergyTarget::MaxPerf)
            .unwrap();
        let thrifty = registry
            .lookup("compute_heavy", EnergyTarget::MinEnergy)
            .unwrap();
        assert!(fast.core_mhz >= thrifty.core_mhz);
    }

    #[test]
    fn traced_pipeline_emits_all_four_phases() {
        let spec = DeviceSpec::v100();
        let suite = small_suite();
        let rec = Recorder::enabled();
        let models = train_device_models_traced(
            &spec,
            &suite[..4],
            ModelSelection::uniform(Algorithm::Linear),
            16,
            0,
            &rec,
        );
        let registry = compile_application_traced(
            &spec,
            &models,
            &[test_kernel()],
            &[EnergyTarget::MinEnergy],
            &LintRegistry::with_builtin(),
            &rec,
        )
        .expect("clean inputs compile");
        assert_eq!(registry.len(), 1);

        let phases: Vec<(Phase, u64, String)> = rec
            .drain()
            .into_iter()
            .filter_map(|e| match e.kind {
                EventKind::PhaseEnd { phase, items, detail, .. } => {
                    Some((phase, items, detail))
                }
                _ => None,
            })
            .collect();
        let order: Vec<Phase> = phases.iter().map(|p| p.0).collect();
        assert_eq!(
            order,
            vec![Phase::Sweep, Phase::Train, Phase::Extract, Phase::Select]
        );
        // 196 clocks / 16 stride = 13 samples per micro-benchmark.
        assert_eq!(phases[0].1, 4 * 13);
        assert_eq!(phases[1].1, 4 * 13);
        assert_eq!(phases[2].1, 1, "one kernel extracted");
        assert_eq!(phases[3].1, 1, "one kernel x one target selected");
        assert!(phases.iter().all(|p| p.2 == spec.name));

        // The untraced entry points are the traced ones with a disabled
        // recorder — value-identical output.
        let direct = train_device_models(
            &spec,
            &suite[..4],
            ModelSelection::uniform(Algorithm::Linear),
            16,
            0,
        );
        assert_eq!(models, direct);
    }

    #[test]
    fn parallel_sweep_identical_to_serial() {
        let spec = DeviceSpec::v100();
        let suite = small_suite();
        for stride in [1usize, 3, 8, 17] {
            let par = build_training_set(&spec, &suite[..6], stride);
            let ser = build_training_set_serial(&spec, &suite[..6], stride);
            assert_eq!(par, ser, "stride {stride}: parallel and serial diverge");
        }
        let ir = test_kernel();
        assert_eq!(
            measured_sweep(&spec, &ir, 1 << 18),
            measured_sweep_serial(&spec, &ir, 1 << 18)
        );
        assert_eq!(
            sweep_samples(&spec, &ir, 1 << 18, 5),
            sweep_samples_serial(&spec, &ir, 1 << 18, 5)
        );
    }

    #[test]
    fn from_info_variants_match_extracting_ones() {
        let spec = DeviceSpec::mi100();
        let ir = test_kernel();
        let info = extract(&ir);
        assert_eq!(
            sweep_samples(&spec, &ir, 1 << 16, 4),
            sweep_samples_from_info(&spec, &info, 1 << 16, 4)
        );
        assert_eq!(
            measured_sweep(&spec, &ir, 1 << 16),
            measured_sweep_from_info(&spec, &info, 1 << 16)
        );
        let suite = small_suite();
        let models =
            train_device_models(&spec, &suite[..6], ModelSelection::uniform(Algorithm::Linear), 16, 0);
        assert_eq!(
            predict_sweep(&spec, &models, &ir),
            predict_sweep_from_info(&spec, &models, &info)
        );
    }

    #[test]
    fn batched_sweep_identical_to_serial_reference() {
        // The batched grid path (flat input matrix + per-algorithm
        // predict_batch + per-chunk fan-out) must reproduce the serial
        // per-configuration reference bit for bit, for every algorithm
        // family in the default selection and for uneven tail chunks.
        for spec in [DeviceSpec::v100(), DeviceSpec::titan_x()] {
            let suite = small_suite();
            for selection in [
                ModelSelection::paper_best(),
                ModelSelection::uniform(Algorithm::Lasso),
                ModelSelection::uniform(Algorithm::SvrRbf),
            ] {
                let models = train_device_models(&spec, &suite[..4], selection, 16, 3);
                let info = extract(&test_kernel());
                let batched = predict_sweep_from_info(&spec, &models, &info);
                let serial = predict_sweep_from_info_serial(&spec, &models, &info);
                assert_eq!(batched.len(), serial.len());
                for (b, s) in batched.iter().zip(&serial) {
                    assert_eq!(b.clocks, s.clocks);
                    assert_eq!(b.time_s.to_bits(), s.time_s.to_bits());
                    assert_eq!(b.energy_j.to_bits(), s.energy_j.to_bits());
                }
            }
        }
    }

    #[test]
    fn grid_hoisting_matches_per_call_collection() {
        let spec = DeviceSpec::v100();
        let grid = clock_grid(&spec);
        assert_eq!(grid.len(), 196);
        let suite = small_suite();
        let models =
            train_device_models(&spec, &suite[..4], ModelSelection::paper_best(), 16, 0);
        let info = extract(&test_kernel());
        assert_eq!(
            predict_sweep_over_grid(&models, &info, &grid),
            predict_sweep_from_info(&spec, &models, &info)
        );
    }

    #[test]
    fn measured_sweep_baseline_is_supported() {
        let spec = DeviceSpec::mi100();
        let sweep = measured_sweep(&spec, &test_kernel(), 1 << 16);
        assert_eq!(sweep.len(), 16);
        assert!(spec.freq_table.supports(baseline_clocks(&spec)));
    }

    #[test]
    fn titan_x_search_covers_two_dimensions() {
        // On a board with four memory clocks the sweep is 2-D and the
        // search may trade memory frequency too.
        let spec = DeviceSpec::titan_x();
        // A strongly compute-bound kernel: plenty of FMAs per byte, so a
        // lower memory clock costs no time but sheds memory power.
        let heavy = IrBuilder::new()
            .ops(Inst::GlobalLoad, 2)
            .loop_n(512, |b| b.ops(Inst::FloatMul, 1).ops(Inst::FloatAdd, 1))
            .ops(Inst::GlobalStore, 1)
            .build("fma_heavy");
        let sweep = measured_sweep(&spec, &heavy, 1 << 20);
        assert_eq!(sweep.len(), 4 * 90);
        let mems: std::collections::BTreeSet<u32> =
            sweep.iter().map(|p| p.clocks.mem_mhz).collect();
        assert_eq!(mems.len(), 4);
        let base = spec.baseline_clocks();
        // A compute-bound kernel's minimum-energy point does not need the
        // top memory clock: memory power can be shed for free.
        let min_e = synergy_metrics::search_optimal(
            synergy_metrics::EnergyTarget::MinEnergy,
            &sweep,
            base,
        )
        .unwrap();
        assert!(
            min_e.clocks.mem_mhz < spec.freq_table.top_mem(),
            "compute-bound min-energy at {:?} should drop the memory clock",
            min_e.clocks
        );
        // While MAX_PERF keeps the fastest core clock.
        let fast = synergy_metrics::search_optimal(
            synergy_metrics::EnergyTarget::MaxPerf,
            &sweep,
            base,
        )
        .unwrap();
        assert_eq!(fast.clocks.core_mhz, spec.freq_table.max_core());
    }
}
