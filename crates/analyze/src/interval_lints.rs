//! The interval lint family (`IR101`–`IR104`): static roofline and
//! robustness judgements over the envelopes the abstract interpreter
//! ([`crate::absint`]) produces.
//!
//! Unlike the structural `IR0xx` family these lints need a *device*: the
//! subject is a kernel × [`synergy_sim::DeviceSpec`] pair
//! ([`crate::lint::EnvelopeSubject`]), and every judgement compares the
//! kernel's `[lo, hi]` arithmetic-intensity envelope against the board's
//! roofline balance point and frequency table. All four lints are pure
//! functions of the IR and the device catalogue — no sweeps, no trained
//! models, no randomness — so their findings are byte-identical across
//! machines, which is what lets `synergy analyze` gate CI on them.

use crate::absint::{interpret, KernelEnvelope};
use crate::diag::{Level, SpanPath};
use crate::lint::{EnvelopeSubject, Lint, Sink, Subject};
use synergy_kernel::{extract, FeatureClass};
use synergy_sim::DeviceSpec;

/// The path used for envelope-level findings.
fn envelope_path() -> SpanPath {
    SpanPath::root().seg("envelope")
}

/// Relative envelope width above which `IR104` calls the static estimate
/// unbounded: `lo` contributes less than 10% of `hi`.
const WIDTH_RATIO: f64 = 0.9;

/// Absolute op-count width below which `IR104` stays quiet regardless of
/// the ratio (a [0, 3] envelope is wide relatively but harmless).
const WIDTH_MIN_OPS: f64 = 16.0;

/// Format an intensity bound for messages (`inf` for compute-only).
fn fmt_opb(v: f64) -> String {
    if v.is_infinite() {
        "inf".to_string()
    } else {
        format!("{v:.3}")
    }
}

/// The static sweet-spot core clock for arithmetic intensity `opb` on
/// `spec`, in MHz snapped to the frequency table: the clock where the
/// roofline's compute time equals its memory time at the top memory
/// clock (`f* = opb · BW / lanes`). Intensities above the board's range
/// snap to the maximum core clock, zero snaps to the minimum.
fn sweet_spot_core(spec: &DeviceSpec, opb: f64) -> u32 {
    let table = &spec.freq_table;
    if opb.is_infinite() {
        return table.max_core();
    }
    let bw = spec.mem_bandwidth_at(table.top_mem());
    let f_mhz = opb * bw / spec.total_lanes() as f64 / 1e6;
    let clamped = f_mhz.clamp(table.min_core() as f64, table.max_core() as f64);
    table.nearest_core(clamped.round() as u32)
}

fn interpret_subject(s: &EnvelopeSubject<'_>) -> KernelEnvelope {
    interpret(s.kernel, &s.config)
}

/// IR101: the memory-/compute-bound classification differs between the
/// two ends of the arithmetic-intensity envelope at baseline clocks —
/// the boundedness label the tuner acts on is not robust to the branch
/// and trip-count uncertainty the IR already admits.
struct UnstableClassification;

impl Lint for UnstableClassification {
    fn code(&self) -> &'static str {
        "IR101"
    }
    fn summary(&self) -> &'static str {
        "roofline classification unstable across the intensity envelope"
    }
    fn default_level(&self) -> Level {
        Level::Warn
    }
    fn check(&self, subject: &Subject<'_>, sink: &mut Sink<'_>) {
        let Subject::Envelope(s) = subject else { return };
        let env = interpret_subject(s);
        let (lo, hi) = env.ops_per_byte();
        if lo == hi {
            return;
        }
        let balance = s.spec.balance_point(s.spec.baseline_clocks());
        if lo < balance && hi > balance {
            let blame = env
                .compute_ops()
                .hi_origin()
                .map(|p| format!(" (dominant compute contributor: {p})"))
                .unwrap_or_default();
            sink.emit_with(
                &envelope_path(),
                format!(
                    "intensity envelope [{}, {}] ops/B straddles the {} balance point \
                     {:.3} ops/B: memory-bound at the low end, compute-bound at the \
                     high end{blame}",
                    fmt_opb(lo),
                    fmt_opb(hi),
                    s.spec.name,
                    balance
                ),
                "tighten the widest trip estimate or split the divergent branch \
                 into separate kernels",
            );
        }
    }
}

/// IR102: the point estimate the rest of the stack runs on escapes the
/// envelope that is supposed to bound it. The two walks share the IR and
/// the memory model, so this can only mean an extraction (or
/// interpretation) bug — deny level.
struct ExpectedEscapesEnvelope;

impl Lint for ExpectedEscapesEnvelope {
    fn code(&self) -> &'static str {
        "IR102"
    }
    fn summary(&self) -> &'static str {
        "expected-value extraction escapes its interval envelope"
    }
    fn default_level(&self) -> Level {
        Level::Deny
    }
    fn check(&self, subject: &Subject<'_>, sink: &mut Sink<'_>) {
        let Subject::Envelope(s) = subject else { return };
        let info = extract(s.kernel);
        if !info.features.is_valid() {
            // Broken inputs (NaN probabilities and the like) are the
            // structural IR lints' business; containment is only defined
            // over valid extractions.
            return;
        }
        let env = interpret_subject(s);
        for violation in env.containment_violations(&info) {
            sink.emit_with(
                &envelope_path(),
                violation,
                "file a bug: extract.rs and absint.rs disagree about this IR",
            );
        }
    }
}

/// IR103: the statically-preferred core frequency differs between the
/// two ends of the intensity envelope by more than one table step — the
/// frequency decision the tuner is about to pin is fragile under the
/// IR's own uncertainty.
struct FragileFrequencyChoice;

impl Lint for FragileFrequencyChoice {
    fn code(&self) -> &'static str {
        "IR103"
    }
    fn summary(&self) -> &'static str {
        "sweet-spot frequency flips within the intensity envelope"
    }
    fn default_level(&self) -> Level {
        Level::Warn
    }
    fn check(&self, subject: &Subject<'_>, sink: &mut Sink<'_>) {
        let Subject::Envelope(s) = subject else { return };
        let env = interpret_subject(s);
        let (lo, hi) = env.ops_per_byte();
        if lo == hi {
            return;
        }
        let f_lo = sweet_spot_core(s.spec, lo);
        let f_hi = sweet_spot_core(s.spec, hi);
        if f_lo == f_hi {
            return;
        }
        // One table step of disagreement is quantization noise, not
        // fragility.
        let cores = &s.spec.freq_table.core_mhz;
        let steps = match (
            cores.iter().position(|&c| c == f_lo),
            cores.iter().position(|&c| c == f_hi),
        ) {
            (Some(a), Some(b)) => a.abs_diff(b),
            _ => usize::MAX,
        };
        if steps <= 1 {
            return;
        }
        sink.emit_with(
            &envelope_path(),
            format!(
                "static sweet-spot core clock on {} spans {f_lo}-{f_hi} MHz \
                 ({steps} table steps) across the intensity envelope \
                 [{}, {}] ops/B",
                s.spec.name,
                fmt_opb(lo),
                fmt_opb(hi)
            ),
            "narrow the envelope (tighter trip estimates, restructured \
             branches) or verify the choice with a measured sweep before \
             pinning a frequency",
        );
    }
}

/// IR104: an envelope so wide the static analysis is effectively
/// unbounded — the lower bound contributes less than 10% of the upper
/// bound for the total compute-ops or DRAM-bytes count. Points at the
/// dominating contributor so the offending loop or branch can be found.
struct UnboundedEnvelope;

impl Lint for UnboundedEnvelope {
    fn code(&self) -> &'static str {
        "IR104"
    }
    fn summary(&self) -> &'static str {
        "interval envelope too wide to bound the kernel statically"
    }
    fn default_level(&self) -> Level {
        Level::Warn
    }
    fn check(&self, subject: &Subject<'_>, sink: &mut Sink<'_>) {
        let Subject::Envelope(s) = subject else { return };
        let env = interpret_subject(s);
        for (what, iv) in [
            ("compute ops", env.compute_ops()),
            ("DRAM bytes", env.global_bytes_per_item.clone()),
        ] {
            if iv.width() < WIDTH_MIN_OPS || iv.hi <= 0.0 {
                continue;
            }
            if iv.width() / iv.hi > WIDTH_RATIO {
                let blame = iv
                    .hi_origin()
                    .map(|p| format!(" (dominant contributor: {p})"))
                    .unwrap_or_default();
                sink.emit_with(
                    &envelope_path(),
                    format!(
                        "{what} envelope [{:.1}, {:.1}] spans more than a 10x \
                         range — the static estimate is effectively \
                         unbounded{blame}",
                        iv.lo, iv.hi
                    ),
                    "replace estimated trip counts with constants where the \
                     kernel shape is actually fixed, or balance the branch arms",
                );
            }
        }
        // A genuinely degenerate case worth its own message: the
        // GlobalAccess envelope reaches zero while its top end carries
        // real traffic — the kernel flips between pure-compute and
        // memory-moving behaviour.
        let ga = env.class(FeatureClass::GlobalAccess);
        if ga.lo == 0.0 && ga.hi >= 1.0 {
            let blame = ga
                .hi_origin()
                .map(|p| format!(" (dominant contributor: {p})"))
                .unwrap_or_default();
            sink.emit(
                &envelope_path(),
                format!(
                    "global accesses span [0, {:.1}]: some execution paths \
                     touch no global memory at all{blame}",
                    ga.hi
                ),
            );
        }
    }
}

/// The built-in interval lint family, in code order.
pub fn builtin() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(UnstableClassification),
        Box::new(ExpectedEscapesEnvelope),
        Box::new(FragileFrequencyChoice),
        Box::new(UnboundedEnvelope),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::absint::AbsIntConfig;
    use crate::lint::LintRegistry;
    use synergy_kernel::{Inst, IrBuilder, KernelIr};

    fn check(k: &KernelIr, spec: &DeviceSpec) -> crate::diag::Report {
        LintRegistry::with_builtin().check_kernel_on_device(k, spec, AbsIntConfig::default())
    }

    /// A kernel pinned deep in memory-bound territory on every device:
    /// streams global words with almost no compute.
    fn streaming_kernel() -> KernelIr {
        IrBuilder::new()
            .ops(Inst::GlobalLoad, 8)
            .ops(Inst::FloatAdd, 2)
            .ops(Inst::GlobalStore, 4)
            .build("stream")
    }

    #[test]
    fn stable_kernels_are_clean() {
        let rep = check(&streaming_kernel(), &DeviceSpec::v100());
        assert!(
            !rep.has_code("IR101") && !rep.has_code("IR102") && !rep.has_code("IR103"),
            "{}",
            rep.render()
        );
    }

    #[test]
    fn ir101_fires_when_envelope_straddles_balance() {
        // V100 baseline balance is ~8.1 ops/B. One global load (4 B) with
        // an estimated loop of compute: [16, 48] FloatMul over 4 bytes =
        // [4, 12] ops/B straddles it.
        let k = IrBuilder::new()
            .ops(Inst::GlobalLoad, 1)
            .loop_est(32.0, |b| b.ops(Inst::FloatMul, 1))
            .build("straddle");
        let rep = check(&k, &DeviceSpec::v100());
        assert!(rep.has_code("IR101"), "{}", rep.render());
        let d = rep
            .diagnostics
            .iter()
            .find(|d| d.code == "IR101")
            .unwrap();
        assert!(d.message.contains("balance point"), "{}", d.message);
        assert!(
            d.message.contains("loop.body[0]"),
            "provenance missing: {}",
            d.message
        );
        // The same kernel with a constant trip is exact: no envelope, no
        // instability.
        let k = IrBuilder::new()
            .ops(Inst::GlobalLoad, 1)
            .loop_n(32, |b| b.ops(Inst::FloatMul, 1))
            .build("exact");
        assert!(!check(&k, &DeviceSpec::v100()).has_code("IR101"));
    }

    #[test]
    fn ir102_is_silent_on_every_healthy_kernel() {
        for spec in [DeviceSpec::v100(), DeviceSpec::mi100()] {
            for bench in synergy_kernel::microbench::generate_default(7) {
                let rep = check(&bench.ir, &spec);
                assert!(
                    !rep.has_code("IR102"),
                    "{} on {}: {}",
                    bench.ir.name,
                    spec.name,
                    rep.render()
                );
            }
        }
    }

    #[test]
    fn ir102_skips_invalid_extractions() {
        // A NaN probability breaks extract (IR003's deny business); the
        // containment lint must not pile on.
        let k = KernelIr::new(
            "nan",
            vec![synergy_kernel::Stmt::Branch {
                prob: f64::NAN,
                then: vec![synergy_kernel::Stmt::op(Inst::IntAdd)],
                els: vec![],
            }],
        );
        // The structural family (on the plain kernel subject) denies it...
        assert!(LintRegistry::with_builtin().check_kernel(&k).has_code("IR003"));
        // ...and the envelope family stays out of the way.
        let rep = check(&k, &DeviceSpec::v100());
        assert!(!rep.has_code("IR102"), "{}", rep.render());
    }

    #[test]
    fn ir103_fires_when_frequency_hint_flips() {
        // Wide intensity envelope in the tunable band: the sweet-spot
        // clock at 4 ops/B vs 12 ops/B differs by many V100 table steps.
        let k = IrBuilder::new()
            .ops(Inst::GlobalLoad, 1)
            .loop_est(32.0, |b| b.ops(Inst::FloatMul, 1))
            .build("flip");
        let rep = check(&k, &DeviceSpec::v100());
        assert!(rep.has_code("IR103"), "{}", rep.render());
        let d = rep
            .diagnostics
            .iter()
            .find(|d| d.code == "IR103")
            .unwrap();
        assert!(d.message.contains("MHz"), "{}", d.message);
    }

    #[test]
    fn ir103_quiet_when_both_ends_saturate() {
        // Compute-only: both envelope ends are inf -> lo == hi == inf.
        let k = IrBuilder::new()
            .loop_est(100.0, |b| b.ops(Inst::FloatMul, 8))
            .build("sat");
        assert!(!check(&k, &DeviceSpec::v100()).has_code("IR103"));
    }

    #[test]
    fn ir104_fires_on_effectively_unbounded_envelopes() {
        // A branch whose then-arm does 100x the work of its else-arm:
        // compute ops span [0-ish, huge].
        let k = IrBuilder::new()
            .branch(
                0.5,
                |b| b.loop_n(100, |b| b.ops(Inst::FloatMul, 4)),
                |b| b,
            )
            .build("wide");
        let rep = check(&k, &DeviceSpec::v100());
        assert!(rep.has_code("IR104"), "{}", rep.render());
        let d = rep
            .diagnostics
            .iter()
            .find(|d| d.code == "IR104")
            .unwrap();
        assert!(
            d.message.contains("branch.then[0]"),
            "provenance missing: {}",
            d.message
        );
        // Balanced arms doing comparable work *in the same class* stay
        // quiet (the domain is per-class, so mixing classes across arms
        // would rightly hull each class down to zero).
        let k = IrBuilder::new()
            .branch(
                0.5,
                |b| b.loop_n(100, |b| b.ops(Inst::FloatMul, 4)),
                |b| b.loop_n(90, |b| b.ops(Inst::FloatMul, 4)),
            )
            .build("balanced");
        assert!(!check(&k, &DeviceSpec::v100()).has_code("IR104"));
    }

    #[test]
    fn sweet_spot_snaps_to_the_table() {
        let spec = DeviceSpec::v100();
        assert_eq!(
            sweet_spot_core(&spec, f64::INFINITY),
            spec.freq_table.max_core()
        );
        assert_eq!(sweet_spot_core(&spec, 0.0), spec.freq_table.min_core());
        // The balance intensity at max clocks maps back to ~max core.
        let balance_at_max = spec.balance_point(synergy_sim::ClockConfig::new(
            spec.freq_table.top_mem(),
            spec.freq_table.max_core(),
        ));
        let f = sweet_spot_core(&spec, balance_at_max);
        assert_eq!(f, spec.freq_table.max_core());
    }
}
