//! `synergy-analyze`: cross-stack lint & diagnostics for the SYnergy
//! pipeline.
//!
//! The SYnergy workflow chains three fragile artifact kinds: kernel IR
//! trees whose extracted features drive everything downstream, frequency
//! sweeps whose Pareto structure defines the energy targets, and trained
//! metric-model bundles that are cached across runs. A defect in any of
//! them flows silently into a pinned per-kernel frequency. This crate is
//! the shared diagnostics framework that audits all three before that
//! happens:
//!
//! - [`ir_lints`] (`IR001`–`IR011`) walk [`synergy_kernel::KernelIr`]
//!   trees: structural defects (zero-count ops, bad trip counts and branch
//!   probabilities, empty loops), suspicious shapes (degenerate branches,
//!   zero-/runaway-trip loops, dead local stores, pure-memory kernels),
//!   memory-model inconsistencies, and an independent re-derivation of the
//!   Table-1 feature vector cross-checking `extract`.
//! - [`sweep_lints`] (`SW001`–`SW006`) audit frequency sweeps and the
//!   target selections made on them: non-physical points, duplicate or
//!   out-of-order configurations, empty Pareto fronts, off-front `ES_x` /
//!   `PL_x` selections, and missing baseline points.
//! - [`model_lints`] (`ML001`–`ML006`) audit trained
//!   [`synergy_ml::MetricModels`] bundles and the on-disk `ModelStore`
//!   cache: absurd regressor weights, stale or mis-keyed cache files,
//!   feature-dimensionality mismatches, out-of-range device clocks and
//!   collapsed predictions.
//! - [`interval_lints`] (`IR101`–`IR104`) run the [`absint`] abstract
//!   interpreter to bound every kernel feature in a `[lo, hi]` interval
//!   under branch and trip-count uncertainty, then judge the envelope
//!   against a device's roofline: unstable memory-/compute-bound
//!   classification, point estimates escaping their envelope (an
//!   extraction bug), fragile frequency choices and effectively
//!   unbounded envelopes.
//!
//! Findings are [`Diagnostic`]s with stable codes, tree-addressed spans
//! (e.g. `body[2].loop.body[0]`) and optional fix suggestions, collected
//! into [`Report`]s. The [`LintRegistry`] owns the pass set and per-lint
//! [`Level`] overrides (`allow`/`warn`/`deny`); deny-level findings abort
//! `synergy_rt::compile_application`, and the `synergy lint` CLI command
//! renders reports for humans or as JSON.
//!
//! On top of the per-subject passes, [`aggregate`] runs the whole
//! registry over every suite benchmark × catalogue device, folds the
//! findings into a [`aggregate::SuiteReport`], diffs it against a
//! ratcheting [`aggregate::Baseline`], and [`sarif`] renders the result
//! as a SARIF 2.1.0 log for code-scanning UIs — the machinery behind
//! `synergy analyze` and the tier-1 lint gate.

#![warn(missing_docs)]

pub mod absint;
pub mod aggregate;
pub mod diag;
pub mod interval_lints;
pub mod ir_lints;
pub mod json;
pub mod lint;
pub mod model_lints;
pub mod sarif;
pub mod sweep_lints;

pub use absint::{interpret, AbsIntConfig, Interval, KernelEnvelope};
pub use aggregate::{Baseline, RatchetOutcome, SuiteReport};
pub use diag::{Diagnostic, Level, Report, SpanPath};
pub use lint::{
    expected_row_len, CacheSubject, EnvelopeSubject, Lint, LintRegistry, ModelSubject, Sink,
    Subject, SweepSubject,
};
