//! The IR lint family (`IR001`–`IR011`): structural defects, degenerate
//! control flow, dead memory traffic and a feature-extraction cross-check
//! over [`KernelIr`] trees.
//!
//! `IR001`–`IR005` cover the hard structural defect classes at deny level
//! (the `try_*` builders on `synergy_kernel::IrBuilder` reject the same
//! inputs at construction time); the rest are softer diagnostics over
//! suspicious-but-legal shapes.

use crate::diag::{Level, SpanPath};
use crate::lint::{Lint, Sink, Subject};
use synergy_kernel::{extract, FeatureClass, FeatureVector, Inst, KernelIr, Stmt, TripCount};

/// Probability below which a branch side is considered unreachable.
const DEGENERATE_PROB: f64 = 1e-6;

/// Expected trip count above which a loop is considered runaway (more
/// iterations per work-item than any real kernel body executes).
const RUNAWAY_TRIPS: f64 = 1e9;

/// Walk every statement of a body, calling `f` with its tree-addressed
/// path: `body[i]` at the top level, `…loop.body[j]` inside loops and
/// `…branch.then[k]` / `…branch.else[k]` inside branches.
fn visit(stmts: &[Stmt], base: &SpanPath, seg: &str, f: &mut dyn FnMut(&SpanPath, &Stmt)) {
    for (i, stmt) in stmts.iter().enumerate() {
        let path = base.clone().index(seg, i);
        f(&path, stmt);
        match stmt {
            Stmt::Op(..) => {}
            Stmt::Loop { body, .. } => {
                visit(body, &path.clone().seg("loop"), "body", f);
            }
            Stmt::Branch { then, els, .. } => {
                let bp = path.clone().seg("branch");
                visit(then, &bp, "then", f);
                visit(els, &bp, "else", f);
            }
        }
    }
}

/// Walk a whole kernel (entry point for the statement visitors).
fn visit_kernel(kernel: &KernelIr, f: &mut dyn FnMut(&SpanPath, &Stmt)) {
    visit(&kernel.body, &SpanPath::root(), "body", f);
}

/// The path used for kernel-level (non-statement) findings.
fn kernel_path() -> SpanPath {
    SpanPath::root().seg("kernel")
}

/// Re-derive the Table-1 feature vector with an iterative worklist,
/// independently of the recursive accumulation in `extract.rs`: each op
/// contributes `scale · count` to its class, where `scale` is the product
/// of enclosing trip counts and branch probabilities.
fn rederive_features(kernel: &KernelIr) -> FeatureVector {
    let mut acc = FeatureVector::ZERO;
    let mut work: Vec<(&[Stmt], f64)> = vec![(&kernel.body, 1.0)];
    while let Some((stmts, scale)) = work.pop() {
        for stmt in stmts {
            match stmt {
                Stmt::Op(inst, n) => acc[inst.feature_class()] += scale * *n as f64,
                Stmt::Loop { trip, body } => {
                    work.push((body, scale * trip.expected().max(0.0)));
                }
                Stmt::Branch { prob, then, els } => {
                    let p = prob.clamp(0.0, 1.0);
                    work.push((then, scale * p));
                    work.push((els, scale * (1.0 - p)));
                }
            }
        }
    }
    acc
}

fn roughly_equal(a: f64, b: f64) -> bool {
    // Relative tolerance: the two walks sum in different orders, so exact
    // equality is not guaranteed for deep trees. NaN never compares equal.
    (a - b).abs() <= 1e-6 * a.abs().max(b.abs()).max(1.0)
}

/// IR001: an op with repeat count zero is a dead statement.
struct ZeroCountOp;

impl Lint for ZeroCountOp {
    fn code(&self) -> &'static str {
        "IR001"
    }
    fn summary(&self) -> &'static str {
        "op with a zero repeat count (dead statement)"
    }
    fn default_level(&self) -> Level {
        Level::Deny
    }
    fn check(&self, subject: &Subject<'_>, sink: &mut Sink<'_>) {
        let Subject::Kernel(k) = subject else { return };
        visit_kernel(k, &mut |path, stmt| {
            if let Stmt::Op(inst, 0) = stmt {
                sink.emit_with(
                    path,
                    format!("`{inst:?}` has repeat count 0 and contributes nothing"),
                    "remove the statement or give it a positive count",
                );
            }
        });
    }
}

/// IR002: a non-finite or negative estimated trip count.
struct BadTripCount;

impl Lint for BadTripCount {
    fn code(&self) -> &'static str {
        "IR002"
    }
    fn summary(&self) -> &'static str {
        "loop trip count not finite or negative"
    }
    fn default_level(&self) -> Level {
        Level::Deny
    }
    fn check(&self, subject: &Subject<'_>, sink: &mut Sink<'_>) {
        let Subject::Kernel(k) = subject else { return };
        visit_kernel(k, &mut |path, stmt| {
            if let Stmt::Loop {
                trip: TripCount::Estimated(e),
                ..
            } = stmt
            {
                if !e.is_finite() || *e < 0.0 {
                    sink.emit_with(
                        path,
                        format!("estimated trip count {e} is not a finite non-negative number"),
                        "use a finite estimate >= 0 (profile data or a heuristic)",
                    );
                }
            }
        });
    }
}

/// IR003: a branch probability outside `[0, 1]` or not finite.
struct BadBranchProbability;

impl Lint for BadBranchProbability {
    fn code(&self) -> &'static str {
        "IR003"
    }
    fn summary(&self) -> &'static str {
        "branch probability outside [0, 1] or not finite"
    }
    fn default_level(&self) -> Level {
        Level::Deny
    }
    fn check(&self, subject: &Subject<'_>, sink: &mut Sink<'_>) {
        let Subject::Kernel(k) = subject else { return };
        visit_kernel(k, &mut |path, stmt| {
            if let Stmt::Branch { prob, .. } = stmt {
                if !prob.is_finite() || !(0.0..=1.0).contains(prob) {
                    sink.emit_with(
                        path,
                        format!("branch probability {prob} is not in [0, 1]"),
                        "clamp the probability into [0, 1]",
                    );
                }
            }
        });
    }
}

/// IR004: an empty loop body burns trips doing nothing.
struct EmptyLoopBody;

impl Lint for EmptyLoopBody {
    fn code(&self) -> &'static str {
        "IR004"
    }
    fn summary(&self) -> &'static str {
        "loop with an empty body"
    }
    fn default_level(&self) -> Level {
        Level::Deny
    }
    fn check(&self, subject: &Subject<'_>, sink: &mut Sink<'_>) {
        let Subject::Kernel(k) = subject else { return };
        visit_kernel(k, &mut |path, stmt| {
            if let Stmt::Loop { body, .. } = stmt {
                if body.is_empty() {
                    sink.emit_with(
                        path,
                        "loop body is empty; the loop burns trips doing nothing",
                        "remove the loop or give it a body",
                    );
                }
            }
        });
    }
}

/// IR005: coalescing or DRAM fraction outside their valid ranges.
struct BadMemoryFractions;

impl Lint for BadMemoryFractions {
    fn code(&self) -> &'static str {
        "IR005"
    }
    fn summary(&self) -> &'static str {
        "coalescing or dram_fraction outside [0, 1] or not finite"
    }
    fn default_level(&self) -> Level {
        Level::Deny
    }
    fn check(&self, subject: &Subject<'_>, sink: &mut Sink<'_>) {
        let Subject::Kernel(k) = subject else { return };
        if !(0.0..=1.0).contains(&k.coalescing)
            || !(0.0..=1.0).contains(&k.dram_fraction)
            || !k.coalescing.is_finite()
            || !k.dram_fraction.is_finite()
        {
            sink.emit_with(
                &kernel_path(),
                format!(
                    "memory fractions out of range: coalescing = {}, dram_fraction = {}",
                    k.coalescing, k.dram_fraction
                ),
                "use the with_coalescing / with_dram_fraction builders, which clamp",
            );
        }
    }
}

/// IR006: a branch whose probability makes one side effectively
/// unreachable — degenerate control flow that should be a straight line.
struct DegenerateBranch;

impl Lint for DegenerateBranch {
    fn code(&self) -> &'static str {
        "IR006"
    }
    fn summary(&self) -> &'static str {
        "branch with p ~ 0 or p ~ 1 (one side unreachable)"
    }
    fn default_level(&self) -> Level {
        Level::Warn
    }
    fn check(&self, subject: &Subject<'_>, sink: &mut Sink<'_>) {
        let Subject::Kernel(k) = subject else { return };
        visit_kernel(k, &mut |path, stmt| {
            let Stmt::Branch { prob, then, els } = stmt else {
                return;
            };
            // Out-of-range probabilities are IR003's business.
            if !prob.is_finite() || !(0.0..=1.0).contains(prob) {
                return;
            }
            if *prob <= DEGENERATE_PROB && !then.is_empty() {
                sink.emit_with(
                    path,
                    format!("then-side is effectively unreachable (p = {prob})"),
                    "drop the branch and keep only the else statements",
                );
            } else if *prob >= 1.0 - DEGENERATE_PROB && !els.is_empty() {
                sink.emit_with(
                    path,
                    format!("else-side is effectively unreachable (p = {prob})"),
                    "drop the branch and keep only the then statements",
                );
            }
        });
    }
}

/// IR007: a loop with zero expected trips (dead) or an implausibly large
/// trip count (runaway estimate that will swamp the feature vector).
struct SuspiciousTripCount;

impl Lint for SuspiciousTripCount {
    fn code(&self) -> &'static str {
        "IR007"
    }
    fn summary(&self) -> &'static str {
        "loop with zero or runaway expected trip count"
    }
    fn default_level(&self) -> Level {
        Level::Warn
    }
    fn check(&self, subject: &Subject<'_>, sink: &mut Sink<'_>) {
        let Subject::Kernel(k) = subject else { return };
        visit_kernel(k, &mut |path, stmt| {
            let Stmt::Loop { trip, .. } = stmt else {
                return;
            };
            let e = trip.expected();
            // Broken counts are IR002's business.
            if !e.is_finite() || e < 0.0 {
                return;
            }
            if e == 0.0 {
                sink.emit_with(
                    path,
                    "loop never executes (expected trip count 0)",
                    "remove the loop or give it a positive trip count",
                );
            } else if e > RUNAWAY_TRIPS {
                sink.emit_with(
                    path,
                    format!("expected trip count {e:.3e} exceeds {RUNAWAY_TRIPS:.0e} per work-item"),
                    "check the trip estimate; per-item loops this long indicate a bad profile",
                );
            }
        });
    }
}

/// IR008: local (shared-memory) stores in a kernel that never loads from
/// local memory — the stored values are dead.
struct DeadLocalStore;

impl Lint for DeadLocalStore {
    fn code(&self) -> &'static str {
        "IR008"
    }
    fn summary(&self) -> &'static str {
        "local stores without any local load (dead shared-memory traffic)"
    }
    fn default_level(&self) -> Level {
        Level::Warn
    }
    fn check(&self, subject: &Subject<'_>, sink: &mut Sink<'_>) {
        let Subject::Kernel(k) = subject else { return };
        let mut has_load = false;
        visit_kernel(k, &mut |_, stmt| {
            if let Stmt::Op(Inst::LocalLoad, n) = stmt {
                has_load |= *n > 0;
            }
        });
        if has_load {
            return;
        }
        visit_kernel(k, &mut |path, stmt| {
            if let Stmt::Op(Inst::LocalStore, n) = stmt {
                if *n > 0 {
                    sink.emit_with(
                        path,
                        "value stored to local memory is never loaded back",
                        "remove the store or add the consuming local loads",
                    );
                }
            }
        });
    }
}

/// IR009: the kernel's declared memory model disagrees with its extracted
/// global traffic — coalescing/DRAM fractions on a kernel with no global
/// accesses, or global accesses that extract to zero bytes.
struct MemoryModelMismatch;

impl Lint for MemoryModelMismatch {
    fn code(&self) -> &'static str {
        "IR009"
    }
    fn summary(&self) -> &'static str {
        "coalescing/dram_fraction inconsistent with extracted global traffic"
    }
    fn default_level(&self) -> Level {
        Level::Warn
    }
    fn check(&self, subject: &Subject<'_>, sink: &mut Sink<'_>) {
        let Subject::Kernel(k) = subject else { return };
        let info = extract(k);
        let accesses = info.features[FeatureClass::GlobalAccess];
        if accesses == 0.0 && (k.coalescing < 1.0 || k.dram_fraction < 1.0) {
            sink.emit_with(
                &kernel_path(),
                format!(
                    "coalescing = {} / dram_fraction = {} declared, but the kernel \
                     performs no global accesses",
                    k.coalescing, k.dram_fraction
                ),
                "drop the memory-model overrides on a compute-only kernel",
            );
        }
        if accesses > 0.0 && info.global_bytes_per_item == 0.0 {
            sink.emit_with(
                &kernel_path(),
                format!(
                    "{accesses} global accesses per work-item extract to zero DRAM bytes"
                ),
                "check element_width, coalescing and dram_fraction; traffic cannot be zero",
            );
        }
    }
}

/// IR010: the extraction pass and an independent re-derivation disagree on
/// the feature vector, or extraction produced an invalid vector. Either
/// way the downstream models would be fed garbage.
struct FeatureBudget;

impl Lint for FeatureBudget {
    fn code(&self) -> &'static str {
        "IR010"
    }
    fn summary(&self) -> &'static str {
        "feature vector invalid or diverging from an independent re-derivation"
    }
    fn default_level(&self) -> Level {
        Level::Deny
    }
    fn check(&self, subject: &Subject<'_>, sink: &mut Sink<'_>) {
        let Subject::Kernel(k) = subject else { return };
        let info = extract(k);
        if !info.features.is_valid() {
            sink.emit_with(
                &kernel_path(),
                format!(
                    "extracted feature vector has non-finite or negative entries: {}",
                    info.features
                ),
                "fix the trip counts / probabilities the extraction multiplied",
            );
            return;
        }
        let independent = rederive_features(k);
        for (class, got) in info.features.iter() {
            let expect = independent[class];
            if !roughly_equal(got, expect) {
                sink.emit(
                    &kernel_path(),
                    format!(
                        "feature `{class}` diverges: extract = {got}, re-derivation = {expect}"
                    ),
                );
            }
        }
    }
}

/// IR011: a kernel that moves global memory but performs zero compute.
/// Its ops-per-byte intensity is 0 and any compute-frequency model input
/// is pure noise — usually a sign the body was stubbed out.
struct PureMemoryKernel;

impl Lint for PureMemoryKernel {
    fn code(&self) -> &'static str {
        "IR011"
    }
    fn summary(&self) -> &'static str {
        "pure-memory kernel: global traffic with zero compute ops"
    }
    fn default_level(&self) -> Level {
        Level::Warn
    }
    fn check(&self, subject: &Subject<'_>, sink: &mut Sink<'_>) {
        let Subject::Kernel(k) = subject else { return };
        let info = extract(k);
        if !info.features.is_valid() {
            return;
        }
        if info.features.compute_ops() == 0.0 && info.features[FeatureClass::GlobalAccess] > 0.0 {
            sink.emit_with(
                &kernel_path(),
                "kernel moves global memory but performs no compute (ops_per_byte = 0)",
                "expected for a pure copy; otherwise the compute body is missing",
            );
        }
    }
}

/// All IR-family lints in code order.
pub fn builtin() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(ZeroCountOp),
        Box::new(BadTripCount),
        Box::new(BadBranchProbability),
        Box::new(EmptyLoopBody),
        Box::new(BadMemoryFractions),
        Box::new(DegenerateBranch),
        Box::new(SuspiciousTripCount),
        Box::new(DeadLocalStore),
        Box::new(MemoryModelMismatch),
        Box::new(FeatureBudget),
        Box::new(PureMemoryKernel),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::LintRegistry;
    use synergy_kernel::IrBuilder;

    fn registry() -> LintRegistry {
        let mut r = LintRegistry::empty();
        for l in builtin() {
            r.register(l);
        }
        r
    }

    #[test]
    fn healthy_kernel_is_clean() {
        let k = IrBuilder::new()
            .ops(Inst::GlobalLoad, 2)
            .loop_n(8, |b| b.ops(Inst::FloatMul, 1).ops(Inst::FloatAdd, 1))
            .ops(Inst::GlobalStore, 1)
            .build("healthy");
        let rep = registry().check_kernel(&k);
        assert!(rep.is_clean(), "unexpected findings:\n{}", rep.render());
    }

    #[test]
    fn nested_findings_carry_tree_paths() {
        let k = IrBuilder::new()
            .ops(Inst::IntAdd, 1)
            .loop_n(4, |b| b.ops(Inst::FloatAdd, 1).ops(Inst::IntMul, 0))
            .build("nested");
        let rep = registry().check_kernel(&k);
        assert_eq!(rep.codes(), vec!["IR001"]);
        assert_eq!(rep.diagnostics[0].path, "body[1].loop.body[1]");
    }

    #[test]
    fn rederivation_matches_extract_on_weighted_trees() {
        let k = IrBuilder::new()
            .loop_est(3.5, |b| {
                b.ops(Inst::GlobalLoad, 2).branch(
                    0.25,
                    |b| b.ops(Inst::SpecialFn, 4),
                    |b| b.ops(Inst::IntBitwise, 8),
                )
            })
            .ops(Inst::GlobalStore, 1)
            .build("weighted");
        let ours = rederive_features(&k);
        let theirs = extract(&k).features;
        for (class, a) in theirs.iter() {
            assert!(roughly_equal(a, ours[class]), "{class}: {a} vs {}", ours[class]);
        }
        assert!(registry().check_kernel(&k).is_clean());
    }
}
