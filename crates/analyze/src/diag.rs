//! Diagnostics: levels, tree-addressed spans, findings and reports.
//!
//! A [`Diagnostic`] is one finding of one lint: a stable code, a severity,
//! a tree-addressed path into the analyzed subject (e.g.
//! `body[2].loop.body[0]` for a statement of a kernel IR), a message, and
//! an optional suggestion. A [`Report`] is an ordered collection of
//! diagnostics with human (`render`) and machine (`to_json`) output.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::fmt::Write as _;

/// A lint level, doubling as the severity of an emitted diagnostic.
///
/// Ordered `Allow < Warn < Deny`: an allow-level lint does not run at all,
/// a warn-level finding is advisory, and a deny-level finding aborts the
/// compile step.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(rename_all = "lowercase")]
pub enum Level {
    /// The lint is disabled; no diagnostics are produced.
    Allow,
    /// Advisory finding: reported, never fatal.
    Warn,
    /// Fatal finding: aborts compilation when surfaced through
    /// `compile_application`.
    Deny,
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Level::Allow => "allow",
            Level::Warn => "warn",
            Level::Deny => "deny",
        })
    }
}

impl std::str::FromStr for Level {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "allow" => Ok(Level::Allow),
            "warn" => Ok(Level::Warn),
            "deny" => Ok(Level::Deny),
            other => Err(format!("unknown lint level `{other}`")),
        }
    }
}

/// A tree-addressed span: a dotted path of segments pointing into the
/// analyzed subject.
///
/// For kernel IR the convention is `body[i]` for the i-th statement of a
/// body, `loop.body[j]` below a loop, and `branch.then[k]` /
/// `branch.else[k]` below a branch; e.g. `body[2].loop.body[0]` is the
/// first statement inside the loop that is the third top-level statement.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanPath {
    segs: Vec<String>,
}

impl SpanPath {
    /// The empty path (renders as `<root>`).
    pub fn root() -> SpanPath {
        SpanPath::default()
    }

    /// Append a plain segment (builder style).
    pub fn seg(mut self, name: impl Into<String>) -> SpanPath {
        self.segs.push(name.into());
        self
    }

    /// Append an indexed segment `name[i]` (builder style).
    pub fn index(self, name: &str, i: usize) -> SpanPath {
        self.seg(format!("{name}[{i}]"))
    }

    /// Render as a dotted path string.
    pub fn render(&self) -> String {
        if self.segs.is_empty() {
            "<root>".to_string()
        } else {
            self.segs.join(".")
        }
    }
}

impl fmt::Display for SpanPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// One finding of one lint.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Stable lint code, e.g. `IR001`.
    pub code: String,
    /// Severity (the lint's effective level when it fired).
    pub severity: Level,
    /// Tree-addressed location, e.g. `body[2].loop.body[0]`.
    pub path: String,
    /// What is wrong.
    pub message: String,
    /// How to fix it, when the lint knows.
    pub suggestion: Option<String>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let word = match self.severity {
            Level::Deny => "error",
            Level::Warn => "warning",
            Level::Allow => "allowed",
        };
        write!(f, "{word}[{}] {}: {}", self.code, self.path, self.message)?;
        if let Some(s) = &self.suggestion {
            write!(f, "\n  help: {s}")?;
        }
        Ok(())
    }
}

/// An ordered collection of diagnostics.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Report {
    /// The findings, in emission order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Report {
        Report::default()
    }

    /// True when nothing at warn level or above was found.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// True when at least one deny-level diagnostic is present.
    pub fn has_deny(&self) -> bool {
        self.diagnostics.iter().any(|d| d.severity == Level::Deny)
    }

    /// Number of deny-level diagnostics.
    pub fn deny_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Level::Deny)
            .count()
    }

    /// Number of warn-level diagnostics.
    pub fn warn_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Level::Warn)
            .count()
    }

    /// The codes present, in emission order with duplicates retained.
    pub fn codes(&self) -> Vec<&str> {
        self.diagnostics.iter().map(|d| d.code.as_str()).collect()
    }

    /// True when a diagnostic with `code` is present.
    pub fn has_code(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Append all diagnostics of `other`.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Prefix every diagnostic path with `prefix.` — used to scope
    /// per-kernel findings by kernel name in a whole-application report.
    pub fn prefixed(mut self, prefix: &str) -> Report {
        for d in &mut self.diagnostics {
            d.path = format!("{prefix}.{}", d.path);
        }
        self
    }

    /// Render for humans: one block per diagnostic plus a summary line.
    /// Returns the empty string for a clean report.
    pub fn render(&self) -> String {
        if self.diagnostics.is_empty() {
            return String::new();
        }
        let mut out = String::new();
        for d in &self.diagnostics {
            let _ = writeln!(out, "{d}");
        }
        let (e, w) = (self.deny_count(), self.warn_count());
        let _ = writeln!(
            out,
            "{e} error{}, {w} warning{}",
            if e == 1 { "" } else { "s" },
            if w == 1 { "" } else { "s" }
        );
        out
    }

    /// Serialize the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Record every diagnostic into a telemetry recorder as one
    /// [`synergy_telemetry::EventKind::Annotation`] each, so lint findings
    /// land on the trace's `annotations` track next to the run they
    /// describe.
    pub fn annotate(&self, recorder: &synergy_telemetry::Recorder) {
        for d in &self.diagnostics {
            recorder.record_with(0, || synergy_telemetry::EventKind::Annotation {
                code: d.code.clone(),
                level: d.severity.to_string(),
                message: format!("{}: {}", d.path, d.message),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_path_renders_dotted_indices() {
        let p = SpanPath::root().index("body", 2).seg("loop").index("body", 0);
        assert_eq!(p.render(), "body[2].loop.body[0]");
        assert_eq!(SpanPath::root().render(), "<root>");
        assert_eq!(
            SpanPath::root().index("body", 1).seg("branch").index("else", 3).render(),
            "body[1].branch.else[3]"
        );
    }

    #[test]
    fn level_order_and_parse() {
        assert!(Level::Allow < Level::Warn && Level::Warn < Level::Deny);
        assert_eq!("deny".parse::<Level>().unwrap(), Level::Deny);
        assert_eq!(" Warn ".parse::<Level>().unwrap(), Level::Warn);
        assert!("fatal".parse::<Level>().is_err());
        assert_eq!(Level::Warn.to_string(), "warn");
    }

    fn diag(code: &str, severity: Level) -> Diagnostic {
        Diagnostic {
            code: code.into(),
            severity,
            path: "body[0]".into(),
            message: "something".into(),
            suggestion: Some("fix it".into()),
        }
    }

    #[test]
    fn report_counts_and_render() {
        let mut r = Report::new();
        assert!(r.is_clean());
        assert_eq!(r.render(), "");
        r.diagnostics.push(diag("IR001", Level::Deny));
        r.diagnostics.push(diag("IR007", Level::Warn));
        assert!(!r.is_clean());
        assert!(r.has_deny());
        assert_eq!((r.deny_count(), r.warn_count()), (1, 1));
        let text = r.render();
        assert!(text.contains("error[IR001] body[0]: something"));
        assert!(text.contains("help: fix it"));
        assert!(text.contains("1 error, 1 warning"));
    }

    #[test]
    fn report_merge_prefix_and_json() {
        let mut r = Report::new();
        r.diagnostics.push(diag("SW001", Level::Deny));
        let r = r.prefixed("vec_add");
        assert_eq!(r.diagnostics[0].path, "vec_add.body[0]");
        let mut all = Report::new();
        all.merge(r.clone());
        all.merge(r);
        assert_eq!(all.deny_count(), 2);
        assert!(all.has_code("SW001"));
        let json = all.to_json();
        let back: Report = serde_json::from_str(&json).unwrap();
        assert_eq!(back, all);
        assert!(json.contains("\"severity\": \"deny\""));
    }

    #[test]
    fn annotate_puts_findings_on_the_trace() {
        use synergy_telemetry::{EventKind, Recorder};
        let mut r = Report::new();
        r.diagnostics.push(diag("IR001", Level::Deny));
        r.diagnostics.push(diag("SW002", Level::Warn));
        let rec = Recorder::enabled();
        r.annotate(&rec);
        let notes: Vec<(String, String, String)> = rec
            .drain()
            .into_iter()
            .filter_map(|e| match e.kind {
                EventKind::Annotation { code, level, message } => Some((code, level, message)),
                _ => None,
            })
            .collect();
        assert_eq!(notes.len(), 2);
        assert_eq!(notes[0].0, "IR001");
        assert_eq!(notes[0].1, "deny");
        assert!(notes[0].2.contains("body[0]") && notes[0].2.contains("something"));
        assert_eq!(notes[1].1, "warn");

        // A disabled recorder stays empty (and costs nothing).
        let off = Recorder::disabled();
        r.annotate(&off);
        assert!(off.is_empty());
    }
}
