//! Interval abstract interpretation over kernel IR.
//!
//! The extraction pass in `synergy_kernel::extract` collapses every source
//! of static uncertainty into a point estimate: branches are weighted by
//! their probability, estimated trip counts are taken at face value. This
//! module re-runs the same walk over an *interval domain* instead — each
//! [`FeatureClass`] count, the global load/store split and the DRAM bytes
//! per work-item become `[lo, hi]` envelopes:
//!
//! - a **branch** contributes the hull of its two arms (min of the lows,
//!   max of the highs) — the count any actual execution path can produce,
//!   not the average over paths;
//! - a **constant** trip count stays exact (`lo == hi`), while an
//!   **estimated** trip widens by the configurable relative
//!   [`AbsIntConfig::trip_uncertainty`] (`[e·(1−u), e·(1+u)]`, floored at
//!   zero);
//! - every bound carries the [`SpanPath`] provenance of its *dominating
//!   contributor* — the single `Op` whose (scaled) contribution to that
//!   bound is largest — so a blown-up envelope points at the statement
//!   responsible.
//!
//! The defining invariant, asserted suite-wide and property-tested in
//! `tests/analyze.rs`: for every kernel, the envelope **contains** the
//! point estimate (`lo ≤ expected ≤ hi` per quantity). The `IR102` lint
//! treats a violation as an extraction bug.

use crate::diag::SpanPath;
use synergy_kernel::extract::{effective_bytes_per_access, KernelStaticInfo};
use synergy_kernel::{FeatureClass, Inst, KernelIr, Stmt, NUM_FEATURES};

/// Tuning knobs of the abstract interpreter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AbsIntConfig {
    /// Relative widening applied to `TripCount::Estimated` loops: an
    /// estimate `e` runs as the interval `[e·(1−u), e·(1+u)]` (floored at
    /// zero). `Const` trip counts are never widened.
    pub trip_uncertainty: f64,
}

impl Default for AbsIntConfig {
    fn default() -> Self {
        // Heuristic trip estimates in real compilers are rarely better
        // than "right order of magnitude"; ±50% is a conservative default.
        AbsIntConfig {
            trip_uncertainty: 0.5,
        }
    }
}

/// A `[lo, hi]` envelope with per-bound provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Interval {
    /// Lower bound (always `>= 0` for count envelopes).
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    lo_origin: Option<String>,
    hi_origin: Option<String>,
    // Largest single (scaled) op contribution folded into each bound so
    // far — the tie-breaker deciding which origin dominates a sum.
    lo_top: f64,
    hi_top: f64,
}

impl Interval {
    /// The `[0, 0]` envelope with no provenance.
    pub fn zero() -> Interval {
        Interval {
            lo: 0.0,
            hi: 0.0,
            lo_origin: None,
            hi_origin: None,
            lo_top: 0.0,
            hi_top: 0.0,
        }
    }

    fn point(v: f64, path: &SpanPath) -> Interval {
        let origin = Some(path.render());
        Interval {
            lo: v,
            hi: v,
            lo_origin: origin.clone(),
            hi_origin: origin,
            lo_top: v,
            hi_top: v,
        }
    }

    fn add_assign(&mut self, other: &Interval) {
        self.lo += other.lo;
        self.hi += other.hi;
        if other.lo_top > self.lo_top {
            self.lo_top = other.lo_top;
            self.lo_origin = other.lo_origin.clone();
        }
        if other.hi_top > self.hi_top {
            self.hi_top = other.hi_top;
            self.hi_origin = other.hi_origin.clone();
        }
    }

    /// Scale the bounds by a (non-negative) factor interval: `lo` by
    /// `s_lo`, `hi` by `s_hi`. Sound because count envelopes never go
    /// negative.
    fn scaled(&self, s_lo: f64, s_hi: f64) -> Interval {
        Interval {
            lo: self.lo * s_lo,
            hi: self.hi * s_hi,
            lo_origin: self.lo_origin.clone(),
            hi_origin: self.hi_origin.clone(),
            lo_top: self.lo_top * s_lo,
            hi_top: self.hi_top * s_hi,
        }
    }

    /// The join of two control-flow alternatives: `[min lo, max hi]`,
    /// each bound inheriting the provenance of the arm that produced it.
    fn hull(&self, other: &Interval) -> Interval {
        let (lo, lo_origin, lo_top) = if other.lo < self.lo {
            (other.lo, other.lo_origin.clone(), other.lo_top)
        } else {
            (self.lo, self.lo_origin.clone(), self.lo_top)
        };
        let (hi, hi_origin, hi_top) = if other.hi > self.hi {
            (other.hi, other.hi_origin.clone(), other.hi_top)
        } else {
            (self.hi, self.hi_origin.clone(), self.hi_top)
        };
        Interval {
            lo,
            hi,
            lo_origin,
            hi_origin,
            lo_top,
            hi_top,
        }
    }

    /// Envelope width `hi − lo`.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Whether `v` lies inside the envelope, with a small relative slack
    /// absorbing the float-rounding difference between the weighted-sum
    /// walk (extract) and the hull walk (this module).
    pub fn contains(&self, v: f64) -> bool {
        let slack = 1e-9 * self.hi.abs().max(v.abs()).max(1.0);
        v >= self.lo - slack && v <= self.hi + slack
    }

    /// Provenance of the lower bound: the rendered [`SpanPath`] of its
    /// dominating contributor (`None` when the bound is an empty sum).
    pub fn lo_origin(&self) -> Option<&str> {
        self.lo_origin.as_deref()
    }

    /// Provenance of the upper bound.
    pub fn hi_origin(&self) -> Option<&str> {
        self.hi_origin.as_deref()
    }
}

/// One walk state: the interval analogue of the extraction pass's
/// accumulated counts.
#[derive(Debug, Clone)]
struct State {
    classes: Vec<Interval>,
    loads: Interval,
    stores: Interval,
}

impl State {
    fn zero() -> State {
        State {
            classes: vec![Interval::zero(); NUM_FEATURES],
            loads: Interval::zero(),
            stores: Interval::zero(),
        }
    }

    fn add_op(&mut self, inst: Inst, count: f64, path: &SpanPath) {
        let p = Interval::point(count, path);
        self.classes[inst.feature_class() as usize].add_assign(&p);
        match inst {
            Inst::GlobalLoad => self.loads.add_assign(&p),
            Inst::GlobalStore => self.stores.add_assign(&p),
            _ => {}
        }
    }

    fn add_assign(&mut self, other: &State) {
        for (mine, theirs) in self.classes.iter_mut().zip(&other.classes) {
            mine.add_assign(theirs);
        }
        self.loads.add_assign(&other.loads);
        self.stores.add_assign(&other.stores);
    }

    fn scaled(&self, s_lo: f64, s_hi: f64) -> State {
        State {
            classes: self.classes.iter().map(|i| i.scaled(s_lo, s_hi)).collect(),
            loads: self.loads.scaled(s_lo, s_hi),
            stores: self.stores.scaled(s_lo, s_hi),
        }
    }

    fn hull(&self, other: &State) -> State {
        State {
            classes: self
                .classes
                .iter()
                .zip(&other.classes)
                .map(|(a, b)| a.hull(b))
                .collect(),
            loads: self.loads.hull(&other.loads),
            stores: self.stores.hull(&other.stores),
        }
    }
}

/// The interval result of abstract-interpreting one kernel.
#[derive(Debug, Clone)]
pub struct KernelEnvelope {
    /// Kernel name (model key, same as the point estimate's).
    pub name: String,
    /// Per-feature-class count envelopes, in Table-1 order.
    pub classes: Vec<Interval>,
    /// Global loads per work-item.
    pub global_loads: Interval,
    /// Global stores per work-item.
    pub global_stores: Interval,
    /// DRAM bytes per work-item (access envelope × the same effective
    /// bytes-per-access model the extraction pass charges).
    pub global_bytes_per_item: Interval,
}

impl KernelEnvelope {
    /// The envelope of one feature class.
    pub fn class(&self, c: FeatureClass) -> &Interval {
        &self.classes[c as usize]
    }

    /// The compute-ops envelope (sum of all non-memory class envelopes,
    /// mirroring `FeatureVector::compute_ops`).
    pub fn compute_ops(&self) -> Interval {
        let mut acc = Interval::zero();
        for &c in FeatureClass::ALL.iter().filter(|c| !c.is_memory()) {
            acc.add_assign(&self.classes[c as usize]);
        }
        acc
    }

    /// The arithmetic-intensity envelope in compute ops per DRAM byte,
    /// `[lo, hi]` with the same degenerate-case conventions as
    /// `KernelStaticInfo::ops_per_byte`: a byte bound of zero yields
    /// `0.0` when the paired ops bound is also zero (nothing happening is
    /// not infinite intensity) and `INFINITY` otherwise.
    pub fn ops_per_byte(&self) -> (f64, f64) {
        let ops = self.compute_ops();
        let bytes = &self.global_bytes_per_item;
        let hi = if bytes.lo == 0.0 {
            if ops.hi == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            ops.hi / bytes.lo
        };
        let lo = if bytes.hi == 0.0 {
            if ops.lo == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            ops.lo / bytes.hi
        };
        (lo, hi)
    }

    /// Check the defining invariant against a point-estimate extraction:
    /// every expected value must lie inside its envelope. Returns one
    /// human-readable violation per escaped quantity (empty = contained).
    pub fn containment_violations(&self, info: &KernelStaticInfo) -> Vec<String> {
        let mut out = Vec::new();
        for &c in FeatureClass::ALL.iter() {
            let iv = self.class(c);
            let v = info.features[c];
            if !iv.contains(v) {
                out.push(format!(
                    "feature {} expected {v} escapes envelope [{}, {}]",
                    c.name(),
                    iv.lo,
                    iv.hi
                ));
            }
        }
        for (what, iv, v) in [
            ("global_loads", &self.global_loads, info.global_loads),
            ("global_stores", &self.global_stores, info.global_stores),
            (
                "global_bytes_per_item",
                &self.global_bytes_per_item,
                info.global_bytes_per_item,
            ),
        ] {
            if !iv.contains(v) {
                out.push(format!(
                    "{what} expected {v} escapes envelope [{}, {}]",
                    iv.lo, iv.hi
                ));
            }
        }
        let (opb_lo, opb_hi) = self.ops_per_byte();
        let opb = info.ops_per_byte();
        let contained = if opb.is_infinite() {
            opb_hi.is_infinite()
        } else {
            let slack = 1e-9 * opb.abs().max(1.0);
            opb >= opb_lo - slack && (opb_hi.is_infinite() || opb <= opb_hi + slack)
        };
        if !contained {
            out.push(format!(
                "ops_per_byte expected {opb} escapes envelope [{opb_lo}, {opb_hi}]"
            ));
        }
        out
    }
}

fn walk(stmts: &[Stmt], parent: &SpanPath, name: &str, u: f64) -> State {
    let mut acc = State::zero();
    for (i, stmt) in stmts.iter().enumerate() {
        let path = parent.clone().index(name, i);
        match stmt {
            Stmt::Op(inst, count) => acc.add_op(*inst, *count as f64, &path),
            Stmt::Loop { trip, body } => {
                let inner = walk(body, &path.seg("loop"), "body", u);
                let (t_lo, t_hi) = trip.bounds(u);
                acc.add_assign(&inner.scaled(t_lo, t_hi));
            }
            Stmt::Branch { then, els, .. } => {
                // Hull, not probability weighting: any single execution
                // takes one arm, so the reachable counts are the union of
                // the arms, and the expectation (a convex combination)
                // always lies inside the hull.
                let branch = path.seg("branch");
                let a = walk(then, &branch, "then", u);
                let b = walk(els, &branch, "else", u);
                acc.add_assign(&a.hull(&b));
            }
        }
    }
    acc
}

/// Abstract-interpret one kernel over the interval domain.
///
/// Pure and total, like [`synergy_kernel::extract`]: an empty body yields
/// all-zero envelopes.
pub fn interpret(kernel: &KernelIr, cfg: &AbsIntConfig) -> KernelEnvelope {
    let state = walk(
        &kernel.body,
        &SpanPath::root(),
        "body",
        cfg.trip_uncertainty,
    );
    let eff_bytes = effective_bytes_per_access(kernel);
    let mut accesses = state.loads.clone();
    accesses.add_assign(&state.stores);
    // Multiply in the same order as extract (`accesses * eff * dram`) so
    // point-matching kernels produce bit-identical byte bounds.
    let bytes = accesses
        .scaled(eff_bytes, eff_bytes)
        .scaled(kernel.dram_fraction, kernel.dram_fraction);
    KernelEnvelope {
        name: kernel.name.clone(),
        classes: state.classes,
        global_loads: state.loads,
        global_stores: state.stores,
        global_bytes_per_item: bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synergy_kernel::{extract, IrBuilder, TripCount};

    fn cfg(u: f64) -> AbsIntConfig {
        AbsIntConfig {
            trip_uncertainty: u,
        }
    }

    #[test]
    fn straight_line_is_exact() {
        let k = IrBuilder::new()
            .ops(Inst::IntAdd, 3)
            .ops(Inst::GlobalLoad, 2)
            .ops(Inst::GlobalStore, 1)
            .build("sl");
        let env = interpret(&k, &AbsIntConfig::default());
        let add = env.class(FeatureClass::IntAdd);
        assert_eq!((add.lo, add.hi), (3.0, 3.0));
        assert_eq!(add.hi_origin(), Some("body[0]"));
        let ga = env.class(FeatureClass::GlobalAccess);
        assert_eq!((ga.lo, ga.hi), (3.0, 3.0));
        // The 2-count load dominates the 1-count store.
        assert_eq!(ga.hi_origin(), Some("body[1]"));
        assert_eq!((env.global_loads.lo, env.global_stores.hi), (2.0, 1.0));
        // Fully coalesced Word4: 3 accesses * 4 bytes, exactly as extract.
        assert_eq!(
            (env.global_bytes_per_item.lo, env.global_bytes_per_item.hi),
            (12.0, 12.0)
        );
        assert!(env.containment_violations(&extract(&k)).is_empty());
    }

    #[test]
    fn branches_hull_instead_of_weighting() {
        let k = IrBuilder::new()
            .branch(
                0.25,
                |b| b.ops(Inst::SpecialFn, 4),
                |b| b.ops(Inst::IntBitwise, 8),
            )
            .build("br");
        let env = interpret(&k, &AbsIntConfig::default());
        // Either arm may or may not run: [0, 4] and [0, 8].
        let sf = env.class(FeatureClass::SpecialFn);
        assert_eq!((sf.lo, sf.hi), (0.0, 4.0));
        assert_eq!(sf.hi_origin(), Some("body[0].branch.then[0]"));
        assert_eq!(sf.lo_origin(), None, "low bound comes from the empty arm");
        let bw = env.class(FeatureClass::IntBitwise);
        assert_eq!((bw.lo, bw.hi), (0.0, 8.0));
        assert_eq!(bw.hi_origin(), Some("body[0].branch.else[0]"));
        // extract's weighted point (1.0 and 6.0) sits inside.
        assert!(env.containment_violations(&extract(&k)).is_empty());
    }

    #[test]
    fn both_arms_present_lifts_the_floor() {
        let k = IrBuilder::new()
            .branch(
                0.5,
                |b| b.ops(Inst::FloatAdd, 2),
                |b| b.ops(Inst::FloatAdd, 10),
            )
            .build("both");
        let env = interpret(&k, &AbsIntConfig::default());
        let fa = env.class(FeatureClass::FloatAdd);
        assert_eq!((fa.lo, fa.hi), (2.0, 10.0));
        assert_eq!(fa.lo_origin(), Some("body[0].branch.then[0]"));
        assert_eq!(fa.hi_origin(), Some("body[0].branch.else[0]"));
    }

    #[test]
    fn const_trips_stay_exact_estimated_widen() {
        let k = IrBuilder::new()
            .loop_n(10, |b| b.ops(Inst::FloatMul, 2))
            .build("const");
        let env = interpret(&k, &cfg(0.5));
        let fm = env.class(FeatureClass::FloatMul);
        assert_eq!((fm.lo, fm.hi), (20.0, 20.0));
        assert_eq!(fm.hi_origin(), Some("body[0].loop.body[0]"));

        let k = IrBuilder::new()
            .loop_est(10.0, |b| b.ops(Inst::FloatMul, 2))
            .build("est");
        let env = interpret(&k, &cfg(0.5));
        let fm = env.class(FeatureClass::FloatMul);
        assert_eq!((fm.lo, fm.hi), (10.0, 30.0));
        // Zero uncertainty collapses to the point estimate.
        let env = interpret(&k, &cfg(0.0));
        let fm = env.class(FeatureClass::FloatMul);
        assert_eq!((fm.lo, fm.hi), (20.0, 20.0));
    }

    #[test]
    fn nested_provenance_points_at_the_hot_op() {
        // A small op at the top, a big op buried in a x100 loop: both
        // bounds must blame the loop body.
        let k = IrBuilder::new()
            .ops(Inst::FloatAdd, 1)
            .loop_n(100, |b| b.ops(Inst::FloatAdd, 5))
            .build("hot");
        let env = interpret(&k, &AbsIntConfig::default());
        let fa = env.class(FeatureClass::FloatAdd);
        assert_eq!((fa.lo, fa.hi), (501.0, 501.0));
        assert_eq!(fa.hi_origin(), Some("body[1].loop.body[0]"));
        assert_eq!(fa.lo_origin(), Some("body[1].loop.body[0]"));
    }

    #[test]
    fn degenerate_trips_match_extracts_clamp() {
        for trip in [TripCount::Estimated(-4.0), TripCount::Estimated(f64::NAN)] {
            let k = synergy_kernel::KernelIr::new(
                "deg",
                vec![Stmt::Loop {
                    trip,
                    body: vec![Stmt::op(Inst::IntAdd)],
                }],
            );
            let env = interpret(&k, &AbsIntConfig::default());
            let ia = env.class(FeatureClass::IntAdd);
            assert_eq!((ia.lo, ia.hi), (0.0, 0.0));
            assert!(env.containment_violations(&extract(&k)).is_empty());
        }
    }

    #[test]
    fn ops_per_byte_envelope_handles_degenerate_cases() {
        let empty = interpret(
            &synergy_kernel::KernelIr::new("e", vec![]),
            &AbsIntConfig::default(),
        );
        assert_eq!(empty.ops_per_byte(), (0.0, 0.0));

        let compute = interpret(
            &IrBuilder::new().ops(Inst::FloatMul, 4).build("c"),
            &AbsIntConfig::default(),
        );
        let (lo, hi) = compute.ops_per_byte();
        assert!(lo.is_infinite() && hi.is_infinite());

        let memory = interpret(
            &IrBuilder::new().ops(Inst::GlobalLoad, 2).build("m"),
            &AbsIntConfig::default(),
        );
        assert_eq!(memory.ops_per_byte(), (0.0, 0.0));

        // A branch between compute-only and memory-only spans the whole
        // axis: lo = 0 (all-memory path), hi = inf (all-compute path).
        let mixed = interpret(
            &IrBuilder::new()
                .branch(
                    0.5,
                    |b| b.ops(Inst::FloatMul, 4),
                    |b| b.ops(Inst::GlobalLoad, 2),
                )
                .build("mix"),
            &AbsIntConfig::default(),
        );
        let (lo, hi) = mixed.ops_per_byte();
        assert_eq!(lo, 0.0);
        assert!(hi.is_infinite());
        for k in [
            IrBuilder::new().ops(Inst::FloatMul, 4).build("c"),
            IrBuilder::new().ops(Inst::GlobalLoad, 2).build("m"),
        ] {
            let env = interpret(&k, &AbsIntConfig::default());
            assert!(env.containment_violations(&extract(&k)).is_empty());
        }
    }

    #[test]
    fn interpretation_is_deterministic() {
        let k = IrBuilder::new()
            .loop_est(7.5, |b| b.ops(Inst::FloatDiv, 1).ops(Inst::GlobalLoad, 2))
            .branch(0.5, |b| b.ops(Inst::SpecialFn, 1), |b| b)
            .build("det");
        let a = interpret(&k, &AbsIntConfig::default());
        let b = interpret(&k, &AbsIntConfig::default());
        for (x, y) in a.classes.iter().zip(&b.classes) {
            assert_eq!(x, y);
        }
    }
}
