//! The `Lint` trait, analysis subjects and the lint registry.
//!
//! A lint is a single named pass over one kind of [`Subject`]. The
//! [`LintRegistry`] owns a set of lints plus per-lint level overrides and
//! runs every applicable lint over a subject, collecting the findings in a
//! [`Report`]. Future pass families (race / divergence analysis, schedule
//! audits) plug in by implementing [`Lint`] and registering.

use crate::absint::{AbsIntConfig, KernelEnvelope};
use crate::diag::{Diagnostic, Level, Report, SpanPath};
use crate::interval_lints;
use crate::ir_lints;
use crate::model_lints;
use crate::sweep_lints;
use std::collections::HashMap;
use std::path::Path;
use synergy_kernel::KernelIr;
use synergy_metrics::{EnergyTarget, MetricPoint};
use synergy_ml::MetricModels;
use synergy_sim::{ClockConfig, DeviceSpec};

/// A measured or predicted frequency sweep, plus the context the target
/// search runs it with.
#[derive(Debug, Clone, Copy)]
pub struct SweepSubject<'a> {
    /// The sweep points, in production order (the frequency table's
    /// ascending (mem, core) enumeration).
    pub points: &'a [MetricPoint],
    /// The default-frequency configuration ES/PL semantics are judged
    /// against.
    pub baseline: ClockConfig,
    /// The energy targets whose selections are audited.
    pub targets: &'a [EnergyTarget],
    /// The interval envelope of the kernel this sweep was measured for,
    /// when the caller has one — unlocks the envelope-aware sweep lints
    /// (`SW007`). `None` keeps the family purely dynamic.
    pub envelope: Option<&'a KernelEnvelope>,
}

/// A trained model bundle plus the device it will be queried for.
#[derive(Debug, Clone, Copy)]
pub struct ModelSubject<'a> {
    /// The trained four-metric bundle.
    pub models: &'a MetricModels,
    /// The device whose frequency table the models will be swept over.
    pub spec: &'a DeviceSpec,
    /// Width of the feature vectors the models should have been trained
    /// on (`NUM_FEATURES` for Table-1 models).
    pub expected_features: usize,
    /// The interval envelope of a kernel the models will be queried
    /// around, when the caller has one — unlocks the envelope-aware
    /// model lints (`ML006`). `None` keeps the family envelope-free.
    pub envelope: Option<&'a KernelEnvelope>,
}

/// A kernel paired with the device it will be tuned on: the subject of
/// the interval (`IR1xx`) lint family, which abstract-interprets the IR
/// and judges the envelope against the device's roofline.
#[derive(Debug, Clone, Copy)]
pub struct EnvelopeSubject<'a> {
    /// The kernel to abstract-interpret.
    pub kernel: &'a KernelIr,
    /// The device whose balance point and frequency table the envelope
    /// is judged against.
    pub spec: &'a DeviceSpec,
    /// Abstract-interpreter tuning (trip-count widening).
    pub config: AbsIntConfig,
}

/// An on-disk `ModelStore` cache directory.
#[derive(Debug, Clone, Copy)]
pub struct CacheSubject<'a> {
    /// The cache directory (missing directory = trivially clean).
    pub dir: &'a Path,
    /// The cache format version current builds write.
    pub expected_version: u32,
    /// The model-input row width current builds train with.
    pub expected_row_len: usize,
}

/// Everything the framework knows how to analyze.
#[derive(Debug, Clone, Copy)]
pub enum Subject<'a> {
    /// A kernel IR tree (the IR lint family).
    Kernel(&'a KernelIr),
    /// A frequency sweep with its search context (the sweep lint family).
    Sweep(SweepSubject<'a>),
    /// A trained model bundle (the model lint family).
    Models(ModelSubject<'a>),
    /// A persisted model cache directory (the model lint family).
    ModelCache(CacheSubject<'a>),
    /// A kernel × device pair (the interval lint family).
    Envelope(EnvelopeSubject<'a>),
}

/// The model-input row width for `features`-wide feature vectors.
///
/// This re-derives the basis-expansion width independently of
/// `synergy_ml::input_row` (each fraction raw and clock-divided, plus
/// clock, inverse clock, memory ratio and log magnitude) so the model
/// lints cross-check rather than echo the training code.
pub fn expected_row_len(features: usize) -> usize {
    2 * features + 4
}

/// Where a running lint deposits its findings. Carries the lint's code and
/// effective level so call sites only provide location and message.
pub struct Sink<'a> {
    code: &'static str,
    level: Level,
    out: &'a mut Vec<Diagnostic>,
}

impl Sink<'_> {
    /// Emit a finding at `path`.
    pub fn emit(&mut self, path: &SpanPath, message: impl Into<String>) {
        self.push(path, message.into(), None);
    }

    /// Emit a finding with a fix suggestion.
    pub fn emit_with(
        &mut self,
        path: &SpanPath,
        message: impl Into<String>,
        suggestion: impl Into<String>,
    ) {
        self.push(path, message.into(), Some(suggestion.into()));
    }

    fn push(&mut self, path: &SpanPath, message: String, suggestion: Option<String>) {
        self.out.push(Diagnostic {
            code: self.code.to_string(),
            severity: self.level,
            path: path.render(),
            message,
            suggestion,
        });
    }
}

/// One analysis pass: a stable code, a default level, and a check over a
/// subject. A lint that does not apply to a subject kind simply returns
/// without emitting.
pub trait Lint: Send + Sync {
    /// Stable diagnostic code (`IR001`, `SW004`, `ML002`, ...).
    fn code(&self) -> &'static str;

    /// One-line description for the catalog.
    fn summary(&self) -> &'static str;

    /// The level the lint runs at unless overridden.
    fn default_level(&self) -> Level;

    /// Inspect `subject`, emitting findings into `sink`.
    fn check(&self, subject: &Subject<'_>, sink: &mut Sink<'_>);
}

/// A set of lints with per-lint level overrides.
pub struct LintRegistry {
    lints: Vec<Box<dyn Lint>>,
    levels: HashMap<String, Level>,
}

impl LintRegistry {
    /// A registry with no lints (build your own pass set).
    pub fn empty() -> LintRegistry {
        LintRegistry {
            lints: Vec::new(),
            levels: HashMap::new(),
        }
    }

    /// The full built-in catalog: IR, sweep and model lint families.
    pub fn with_builtin() -> LintRegistry {
        let mut r = LintRegistry::empty();
        for l in ir_lints::builtin() {
            r.register(l);
        }
        for l in sweep_lints::builtin() {
            r.register(l);
        }
        for l in model_lints::builtin() {
            r.register(l);
        }
        for l in interval_lints::builtin() {
            r.register(l);
        }
        r
    }

    /// Add a lint. Later registrations with an existing code replace the
    /// earlier lint (overrides keep working — they key on the code).
    pub fn register(&mut self, lint: Box<dyn Lint>) {
        self.lints.retain(|l| l.code() != lint.code());
        self.lints.push(lint);
    }

    /// Override the level of the lint with `code` (unknown codes are
    /// remembered so a later registration picks the override up).
    pub fn set_level(&mut self, code: impl Into<String>, level: Level) -> &mut Self {
        self.levels.insert(code.into(), level);
        self
    }

    /// The level `code` runs at (override, else its default; `None` for a
    /// code not in the registry).
    pub fn level_of(&self, code: &str) -> Option<Level> {
        let lint = self.lints.iter().find(|l| l.code() == code)?;
        Some(
            self.levels
                .get(code)
                .copied()
                .unwrap_or_else(|| lint.default_level()),
        )
    }

    /// `(code, summary, effective level)` for every registered lint, in
    /// registration order.
    pub fn catalog(&self) -> Vec<(&'static str, &'static str, Level)> {
        self.lints
            .iter()
            .map(|l| {
                let level = self
                    .levels
                    .get(l.code())
                    .copied()
                    .unwrap_or_else(|| l.default_level());
                (l.code(), l.summary(), level)
            })
            .collect()
    }

    /// Run every non-allowed lint over `subject`.
    pub fn check(&self, subject: &Subject<'_>) -> Report {
        let mut out = Vec::new();
        for lint in &self.lints {
            let level = self
                .levels
                .get(lint.code())
                .copied()
                .unwrap_or_else(|| lint.default_level());
            if level == Level::Allow {
                continue;
            }
            let mut sink = Sink {
                code: lint.code(),
                level,
                out: &mut out,
            };
            lint.check(subject, &mut sink);
        }
        Report { diagnostics: out }
    }

    /// Run the registry over a kernel IR.
    pub fn check_kernel(&self, kernel: &KernelIr) -> Report {
        self.check(&Subject::Kernel(kernel))
    }

    /// Run the registry over a kernel × device pair: abstract-interprets
    /// the kernel and runs the interval (`IR1xx`) lint family against
    /// the device's roofline and frequency table.
    pub fn check_kernel_on_device(
        &self,
        kernel: &KernelIr,
        spec: &DeviceSpec,
        config: AbsIntConfig,
    ) -> Report {
        self.check(&Subject::Envelope(EnvelopeSubject {
            kernel,
            spec,
            config,
        }))
    }

    /// Run the registry over a frequency sweep.
    pub fn check_sweep(
        &self,
        points: &[MetricPoint],
        baseline: ClockConfig,
        targets: &[EnergyTarget],
    ) -> Report {
        self.check(&Subject::Sweep(SweepSubject {
            points,
            baseline,
            targets,
            envelope: None,
        }))
    }

    /// Run the registry over a frequency sweep with the measured
    /// kernel's interval envelope attached, enabling the envelope-aware
    /// sweep lints (`SW007`) on top of the plain family.
    pub fn check_sweep_enveloped(
        &self,
        points: &[MetricPoint],
        baseline: ClockConfig,
        targets: &[EnergyTarget],
        envelope: &KernelEnvelope,
    ) -> Report {
        self.check(&Subject::Sweep(SweepSubject {
            points,
            baseline,
            targets,
            envelope: Some(envelope),
        }))
    }

    /// Run the registry over a trained model bundle.
    pub fn check_models(
        &self,
        models: &MetricModels,
        spec: &DeviceSpec,
        expected_features: usize,
    ) -> Report {
        self.check(&Subject::Models(ModelSubject {
            models,
            spec,
            expected_features,
            envelope: None,
        }))
    }

    /// Run the registry over a trained model bundle with a kernel
    /// envelope attached, enabling the envelope-aware model lints
    /// (`ML006`) on top of the plain family.
    pub fn check_models_enveloped(
        &self,
        models: &MetricModels,
        spec: &DeviceSpec,
        expected_features: usize,
        envelope: &KernelEnvelope,
    ) -> Report {
        self.check(&Subject::Models(ModelSubject {
            models,
            spec,
            expected_features,
            envelope: Some(envelope),
        }))
    }

    /// Run the registry over a persisted model cache directory.
    pub fn check_model_cache(
        &self,
        dir: &Path,
        expected_version: u32,
        expected_row_len: usize,
    ) -> Report {
        self.check(&Subject::ModelCache(CacheSubject {
            dir,
            expected_version,
            expected_row_len,
        }))
    }
}

impl Default for LintRegistry {
    fn default() -> Self {
        LintRegistry::with_builtin()
    }
}

impl std::fmt::Debug for LintRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LintRegistry")
            .field("codes", &self.lints.iter().map(|l| l.code()).collect::<Vec<_>>())
            .field("overrides", &self.levels)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct AlwaysFires;

    impl Lint for AlwaysFires {
        fn code(&self) -> &'static str {
            "XX001"
        }
        fn summary(&self) -> &'static str {
            "fires on every kernel"
        }
        fn default_level(&self) -> Level {
            Level::Warn
        }
        fn check(&self, subject: &Subject<'_>, sink: &mut Sink<'_>) {
            if let Subject::Kernel(_) = subject {
                sink.emit(&SpanPath::root().seg("kernel"), "hello");
            }
        }
    }

    #[test]
    fn registry_runs_and_overrides_levels() {
        let mut r = LintRegistry::empty();
        r.register(Box::new(AlwaysFires));
        let k = KernelIr::new("k", vec![]);
        let rep = r.check_kernel(&k);
        assert_eq!(rep.diagnostics.len(), 1);
        assert_eq!(rep.diagnostics[0].severity, Level::Warn);
        assert_eq!(rep.diagnostics[0].path, "kernel");
        assert_eq!(r.level_of("XX001"), Some(Level::Warn));

        r.set_level("XX001", Level::Deny);
        assert!(r.check_kernel(&k).has_deny());
        assert_eq!(r.level_of("XX001"), Some(Level::Deny));

        r.set_level("XX001", Level::Allow);
        assert!(r.check_kernel(&k).is_clean());
        assert_eq!(r.level_of("YY999"), None);
    }

    #[test]
    fn builtin_catalog_spans_three_families() {
        let r = LintRegistry::with_builtin();
        let catalog = r.catalog();
        assert!(catalog.len() >= 10, "need at least 10 lint codes");
        let codes: Vec<&str> = catalog.iter().map(|(c, _, _)| *c).collect();
        assert!(codes.iter().any(|c| c.starts_with("IR")));
        assert!(codes.iter().any(|c| c.starts_with("SW")));
        assert!(codes.iter().any(|c| c.starts_with("ML")));
        let mut unique = codes.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), codes.len(), "codes are unique");
    }

    #[test]
    fn re_registering_a_code_replaces_the_lint() {
        let mut r = LintRegistry::empty();
        r.register(Box::new(AlwaysFires));
        r.register(Box::new(AlwaysFires));
        assert_eq!(r.catalog().len(), 1);
    }

    #[test]
    fn expected_row_len_matches_ml_basis() {
        // 10 Table-1 features: raw + clock-divided fractions, clock,
        // inverse clock, memory ratio, log magnitude.
        assert_eq!(expected_row_len(10), 24);
        let row = synergy_ml::input_row(&[1.0; 10], 1000.0, 877.0, 1530.0);
        assert_eq!(row.len(), expected_row_len(10));
    }
}
