//! A small, self-contained JSON value type with a recursive-descent parser
//! and a writer.
//!
//! The wire protocol cannot afford any lossiness: request ids are `u64`,
//! feature vectors are `f64`, and both must survive an encode → decode
//! round trip bit-identically. Integers are therefore kept in a dedicated
//! [`Json::Int`] variant (`i128`, wide enough for every `u64`) instead of
//! being collapsed into floating point, and floats are printed with
//! Rust's shortest-round-trip `{}` formatting.
//!
//! The parser is hardened for untrusted network input: it enforces a
//! nesting-depth limit, rejects trailing garbage, and never panics on
//! malformed bytes — every failure is a typed [`JsonError`].

use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting depth the parser will follow before giving up.
///
/// Protocol messages are at most a handful of levels deep; anything
/// deeper is garbage or an attack, and recursing into it risks stack
/// exhaustion.
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number that was written without a fraction or exponent.
    Int(i128),
    /// A number with a fraction or exponent.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Insertion order is preserved so encodes are
    /// deterministic.
    Obj(Vec<(String, Json)>),
}

/// Why a parse or a typed lookup failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonError {
    /// Malformed syntax at a byte offset.
    Syntax {
        /// Byte offset of the offending input.
        at: usize,
        /// What went wrong.
        what: &'static str,
    },
    /// The value nests deeper than [`MAX_DEPTH`].
    TooDeep,
    /// A typed accessor found a missing or wrongly-typed field.
    Schema {
        /// Dotted path of the field.
        field: String,
        /// What was expected there.
        expected: &'static str,
    },
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::Syntax { at, what } => write!(f, "json syntax error at byte {at}: {what}"),
            JsonError::TooDeep => write!(f, "json nests deeper than {MAX_DEPTH} levels"),
            JsonError::Schema { field, expected } => {
                write!(f, "json field `{field}`: expected {expected}")
            }
        }
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parse a complete JSON document. Trailing non-whitespace is an
    /// error.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let bytes = input.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(JsonError::Syntax {
                at: p.pos,
                what: "trailing characters after document",
            });
        }
        Ok(v)
    }

    /// Serialize to a compact string.
    pub fn encode(&self) -> String {
        let mut out = String::with_capacity(64);
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => {
                out.push_str(&i.to_string());
            }
            Json::Num(n) => {
                if n.is_finite() {
                    let s = format!("{n}");
                    // `{}` prints integral floats without a fraction
                    // ("3"), which would round-trip as Int; pin the type.
                    let needs_dot = !s.contains(['.', 'e', 'E']);
                    out.push_str(&s);
                    if needs_dot {
                        out.push_str(".0");
                    }
                } else {
                    // JSON has no Inf/NaN; null is the least-bad encoding.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Look up a field of an object; `None` for non-objects or missing
    /// keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Typed field access: `u64`.
    pub fn u64_field(&self, key: &str) -> Result<u64, JsonError> {
        match self.get(key) {
            Some(Json::Int(i)) if *i >= 0 && *i <= u64::MAX as i128 => Ok(*i as u64),
            _ => Err(schema(key, "a u64")),
        }
    }

    /// Typed field access: `u32`.
    pub fn u32_field(&self, key: &str) -> Result<u32, JsonError> {
        match self.get(key) {
            Some(Json::Int(i)) if *i >= 0 && *i <= u32::MAX as i128 => Ok(*i as u32),
            _ => Err(schema(key, "a u32")),
        }
    }

    /// Typed field access: `f64` (accepts integer-written numbers).
    pub fn f64_field(&self, key: &str) -> Result<f64, JsonError> {
        match self.get(key) {
            Some(Json::Num(n)) => Ok(*n),
            Some(Json::Int(i)) => Ok(*i as f64),
            _ => Err(schema(key, "a number")),
        }
    }

    /// Typed field access: string slice.
    pub fn str_field(&self, key: &str) -> Result<&str, JsonError> {
        match self.get(key) {
            Some(Json::Str(s)) => Ok(s),
            _ => Err(schema(key, "a string")),
        }
    }

    /// Typed field access: bool.
    pub fn bool_field(&self, key: &str) -> Result<bool, JsonError> {
        match self.get(key) {
            Some(Json::Bool(b)) => Ok(*b),
            _ => Err(schema(key, "a bool")),
        }
    }

    /// Typed field access: array slice.
    pub fn arr_field(&self, key: &str) -> Result<&[Json], JsonError> {
        match self.get(key) {
            Some(Json::Arr(items)) => Ok(items),
            _ => Err(schema(key, "an array")),
        }
    }

    /// The value as `f64` if it is any kind of number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            Json::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Build an object from key/value pairs (helper for encoders).
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Sort object keys recursively — canonical form for hashing.
    pub fn canonicalize(&mut self) {
        match self {
            Json::Arr(items) => items.iter_mut().for_each(Json::canonicalize),
            Json::Obj(fields) => {
                fields.iter_mut().for_each(|(_, v)| v.canonicalize());
                let mut sorted: BTreeMap<String, Json> = BTreeMap::new();
                for (k, v) in fields.drain(..) {
                    sorted.insert(k, v);
                }
                fields.extend(sorted);
            }
            _ => {}
        }
    }
}

fn schema(field: &str, expected: &'static str) -> JsonError {
    JsonError::Schema {
        field: field.to_string(),
        expected,
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn err(&self, what: &'static str) -> JsonError {
        JsonError::Syntax { at: self.pos, what }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8, what: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(JsonError::TooDeep);
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, word: &'static str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("bad literal"))
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u', "expected low surrogate")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("bad low surrogate"));
                                }
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("bad surrogate pair"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("bad codepoint"))?
                            };
                            out.push(c);
                            // hex4 leaves pos after the 4 digits; the
                            // outer loop's +1 below must not run.
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("control byte in string")),
                Some(_) => {
                    // Advance by one full UTF-8 char; the input is a
                    // &str so boundaries are valid.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("bad utf-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut cp: u32 = 0;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a' + 10) as u32,
                b'A'..=b'F' => (b - b'A' + 10) as u32,
                _ => return Err(self.err("bad hex digit")),
            };
            cp = cp * 16 + d;
            self.pos += 1;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_digits = self.digits()?;
        if int_digits == 0 {
            return Err(self.err("expected digits"));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if self.digits()? == 0 {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if self.digits()? == 0 {
                return Err(self.err("expected exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number bytes"))?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| self.err("unparseable float"))
        } else {
            match text.parse::<i128>() {
                Ok(i) => Ok(Json::Int(i)),
                // Out of i128 range: fall back to float semantics.
                Err(_) => text
                    .parse::<f64>()
                    .map(Json::Num)
                    .map_err(|_| self.err("unparseable number")),
            }
        }
    }

    fn digits(&mut self) -> Result<usize, JsonError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        Ok(self.pos - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-7", "18446744073709551615"] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.encode(), text, "{text}");
        }
    }

    #[test]
    fn u64_max_survives() {
        let v = Json::parse(&u64::MAX.to_string()).unwrap();
        assert_eq!(v, Json::Int(u64::MAX as i128));
        let back = Json::parse(&v.encode()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_round_trip_bit_identically() {
        for f in [0.1, -2.5e-8, 1234.5678, 1e300, f64::MIN_POSITIVE, 3.0] {
            let v = Json::Num(f);
            let back = Json::parse(&v.encode()).unwrap();
            match back {
                Json::Num(g) => assert_eq!(g.to_bits(), f.to_bits(), "{f}"),
                other => panic!("float {f} decoded as {other:?}"),
            }
        }
    }

    #[test]
    fn strings_with_escapes_round_trip() {
        let s = "quote \" backslash \\ newline \n tab \t unicode \u{1F600} nul-ish \u{0001}";
        let v = Json::Str(s.to_string());
        let back = Json::parse(&v.encode()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = Json::parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v, Json::Str("\u{1F600}".to_string()));
        assert!(Json::parse("\"\\ud83d\"").is_err());
        assert!(Json::parse("\"\\ud83dx\"").is_err());
    }

    #[test]
    fn nested_structures_round_trip() {
        let text = r#"{"a":[1,2.5,{"b":null,"c":[true,false]}],"d":"x"}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.encode(), text);
    }

    #[test]
    fn garbage_is_rejected_not_panicked() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "tru", "1e", "\"\\q\"", "01x", "{}{}", "nan",
            "[1 2]", "\u{0007}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn depth_limit_enforced() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert_eq!(Json::parse(&deep), Err(JsonError::TooDeep));
        let ok = "[".repeat(8) + &"]".repeat(8);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn typed_accessors_enforce_schema() {
        let v = Json::parse(r#"{"id":7,"name":"x","fs":[1.5,2],"flag":true}"#).unwrap();
        assert_eq!(v.u64_field("id").unwrap(), 7);
        assert_eq!(v.str_field("name").unwrap(), "x");
        assert_eq!(v.arr_field("fs").unwrap().len(), 2);
        assert!(v.bool_field("flag").unwrap());
        assert!(v.u64_field("name").is_err());
        assert!(v.f64_field("missing").is_err());
        assert_eq!(v.f64_field("id").unwrap(), 7.0);
    }

    #[test]
    fn canonicalize_sorts_keys_recursively() {
        let mut v = Json::parse(r#"{"b":1,"a":{"z":2,"y":3}}"#).unwrap();
        v.canonicalize();
        assert_eq!(v.encode(), r#"{"a":{"y":3,"z":2},"b":1}"#);
    }

    #[test]
    fn integral_floats_stay_floats() {
        let v = Json::Num(3.0);
        assert_eq!(v.encode(), "3.0");
        assert_eq!(Json::parse("3.0").unwrap(), Json::Num(3.0));
    }
}
