//! SARIF 2.1.0 export for `synergy analyze`.
//!
//! [SARIF] (Static Analysis Results Interchange Format) is the schema
//! code-scanning UIs ingest. One `synergy analyze` invocation maps to one
//! SARIF *run*: the tool driver advertises every registered lint as a
//! `reportingDescriptor` (so viewers can render names and default
//! severities even for codes with zero findings), and each
//! [`crate::diag::Diagnostic`] becomes a `result` whose logical location
//! is the `bench/device: span.path` triple — our subjects are IR trees
//! and model bundles, not source files, so locations are logical rather
//! than physical.
//!
//! Level mapping: `Deny` → `error`, `Warn` → `warning`, `Allow` → `note`
//! (an allow-level lint normally emits nothing, but overrides can demote
//! a lint while keeping its findings visible).
//!
//! Encoding goes through the deterministic in-crate [`crate::json`]
//! codec: field order is fixed, so golden-file tests can compare bytes.
//!
//! [SARIF]: https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html

use crate::aggregate::SuiteReport;
use crate::diag::Level;
use crate::json::Json;

/// The schema URI embedded in every log.
pub const SARIF_SCHEMA: &str =
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json";

/// The SARIF `level` string for a diagnostic severity.
pub fn sarif_level(level: Level) -> &'static str {
    match level {
        Level::Deny => "error",
        Level::Warn => "warning",
        Level::Allow => "note",
    }
}

/// Build a SARIF 2.1.0 log for a suite report.
///
/// `catalog` is the registry's rule table (code, summary, default level)
/// in registration order — [`crate::lint::LintRegistry::catalog`].
pub fn to_sarif(report: &SuiteReport, catalog: &[(&'static str, &'static str, Level)]) -> Json {
    let rules = catalog
        .iter()
        .map(|(code, summary, level)| {
            Json::obj(vec![
                ("id", Json::Str(code.to_string())),
                (
                    "shortDescription",
                    Json::obj(vec![("text", Json::Str(summary.to_string()))]),
                ),
                (
                    "defaultConfiguration",
                    Json::obj(vec![("level", Json::Str(sarif_level(*level).to_string()))]),
                ),
            ])
        })
        .collect();

    let results = report
        .findings()
        .map(|(run, d)| {
            let mut message = d.message.clone();
            if let Some(s) = &d.suggestion {
                message.push_str("\nhelp: ");
                message.push_str(s);
            }
            Json::obj(vec![
                ("ruleId", Json::Str(d.code.clone())),
                ("level", Json::Str(sarif_level(d.severity).to_string())),
                ("message", Json::obj(vec![("text", Json::Str(message))])),
                (
                    "locations",
                    Json::Arr(vec![Json::obj(vec![(
                        "logicalLocations",
                        Json::Arr(vec![Json::obj(vec![
                            (
                                "fullyQualifiedName",
                                Json::Str(format!(
                                    "{}/{}: {}",
                                    run.bench, run.device, d.path
                                )),
                            ),
                            ("kind", Json::Str("member".to_string())),
                        ])]),
                    )])]),
                ),
            ])
        })
        .collect();

    let driver = Json::obj(vec![
        ("name", Json::Str("synergy-analyze".to_string())),
        (
            "informationUri",
            Json::Str("https://example.org/synergy-rs".to_string()),
        ),
        ("rules", Json::Arr(rules)),
    ]);

    Json::obj(vec![
        ("$schema", Json::Str(SARIF_SCHEMA.to_string())),
        ("version", Json::Str("2.1.0".to_string())),
        (
            "runs",
            Json::Arr(vec![Json::obj(vec![
                ("tool", Json::obj(vec![("driver", driver)])),
                ("results", Json::Arr(results)),
            ])]),
        ),
    ])
}

/// Encode a suite report as a SARIF log string (trailing newline
/// included, byte-deterministic).
pub fn encode_sarif(
    report: &SuiteReport,
    catalog: &[(&'static str, &'static str, Level)],
) -> String {
    let mut text = to_sarif(report, catalog).encode();
    text.push('\n');
    text
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Diagnostic, Report};
    use crate::lint::LintRegistry;

    fn suite_with_levels() -> SuiteReport {
        let mut suite = SuiteReport::new();
        let mut rep = Report::new();
        rep.diagnostics.push(Diagnostic {
            code: "IR102".to_string(),
            severity: Level::Deny,
            path: "envelope".to_string(),
            message: "expected value escapes".to_string(),
            suggestion: Some("file a bug".to_string()),
        });
        rep.diagnostics.push(Diagnostic {
            code: "IR101".to_string(),
            severity: Level::Warn,
            path: "body[2].loop.body[0]".to_string(),
            message: "classification unstable".to_string(),
            suggestion: None,
        });
        rep.diagnostics.push(Diagnostic {
            code: "IR008".to_string(),
            severity: Level::Allow,
            path: "body[0]".to_string(),
            message: "demoted finding".to_string(),
            suggestion: None,
        });
        suite.push("vec_add", "v100", rep);
        suite
    }

    #[test]
    fn levels_map_to_sarif_vocabulary() {
        assert_eq!(sarif_level(Level::Deny), "error");
        assert_eq!(sarif_level(Level::Warn), "warning");
        assert_eq!(sarif_level(Level::Allow), "note");
    }

    #[test]
    fn log_structure_is_valid_sarif() {
        let registry = LintRegistry::with_builtin();
        let log = to_sarif(&suite_with_levels(), &registry.catalog());
        assert_eq!(log.str_field("version").unwrap(), "2.1.0");
        assert!(log.str_field("$schema").unwrap().contains("sarif-schema-2.1.0"));
        let runs = log.arr_field("runs").unwrap();
        assert_eq!(runs.len(), 1);
        let results = runs[0].arr_field("results").unwrap();
        assert_eq!(results.len(), 3);
        // Every registered lint appears as a rule, findings or not.
        let rules = runs[0]
            .get("tool")
            .and_then(|t| t.get("driver"))
            .unwrap()
            .arr_field("rules")
            .unwrap();
        assert_eq!(rules.len(), registry.catalog().len());
        // Results carry the logical bench/device/path identity.
        let fqn = results[0].arr_field("locations").unwrap()[0]
            .arr_field("logicalLocations")
            .unwrap()[0]
            .str_field("fullyQualifiedName")
            .unwrap()
            .to_string();
        assert_eq!(fqn, "vec_add/v100: envelope");
        // Suggestion folded into the message.
        let msg = results[0].get("message").unwrap().str_field("text").unwrap();
        assert!(msg.contains("help: file a bug"));
    }

    #[test]
    fn encoding_is_deterministic_and_round_trips() {
        let registry = LintRegistry::with_builtin();
        let suite = suite_with_levels();
        let a = encode_sarif(&suite, &registry.catalog());
        let b = encode_sarif(&suite, &registry.catalog());
        assert_eq!(a, b);
        let parsed = Json::parse(&a).unwrap();
        assert_eq!(parsed.encode() + "\n", a);
    }
}
