//! The model lint family (`ML001`–`ML006`): audits over trained
//! [`MetricModels`] bundles and the persisted `ModelStore` cache files.
//!
//! Trained models are cached and reused across runs (PR 1), which makes
//! silent staleness possible: a bundle trained against an older feature
//! dimensionality or cache format would deserialize fine and then predict
//! garbage. These lints catch that before any frequency is pinned. When
//! the caller attaches a kernel's interval envelope, `ML006` additionally
//! probes the model at the envelope's corners for clock monotonicity.

use crate::diag::{Level, SpanPath};
use crate::lint::{expected_row_len, Lint, Sink, Subject};
use synergy_ml::MetricModels;

/// Coefficient magnitude beyond which a linear-family weight is absurd:
/// inputs are O(1) shape fractions and normalized clocks, targets are
/// O(1) normalized metrics, so honest weights are small.
const ABSURD_WEIGHT: f64 = 1e8;

/// Prediction floor tolerance: `MetricModels::predict` floors at 1e-12,
/// so a metric at (or within 10^3 of) the floor means the model output
/// collapsed or went negative/NaN.
const COLLAPSED_PREDICTION: f64 = 1e-9;

/// Path for findings about one of the four regressors.
fn model_path(name: &str) -> SpanPath {
    SpanPath::root().seg("models").seg(name)
}

/// True when any linear-family regressor's coefficient width disagrees
/// with the expected input-row width (the tree/kernel models carry no
/// flat coefficient view and are skipped).
fn has_dimension_mismatch(models: &MetricModels, expected: usize) -> bool {
    models.regressors().iter().any(|(_, reg)| {
        reg.coefficients()
            .is_some_and(|(w, _)| w.len() != expected)
    })
}

/// ML001: NaN, infinite or absurdly large regressor weights in a
/// linear-family model — the fit diverged or was fed broken targets.
struct AbsurdWeights;

impl Lint for AbsurdWeights {
    fn code(&self) -> &'static str {
        "ML001"
    }
    fn summary(&self) -> &'static str {
        "non-finite or absurdly large regressor weights"
    }
    fn default_level(&self) -> Level {
        Level::Deny
    }
    fn check(&self, subject: &Subject<'_>, sink: &mut Sink<'_>) {
        let Subject::Models(m) = subject else { return };
        for (name, reg) in m.models.regressors() {
            let Some((weights, intercept)) = reg.coefficients() else {
                continue;
            };
            let bad = |v: f64| !v.is_finite() || v.abs() > ABSURD_WEIGHT;
            if weights.iter().any(|&w| bad(w)) || bad(intercept) {
                sink.emit_with(
                    &model_path(name),
                    format!(
                        "{} model has non-finite or > {ABSURD_WEIGHT:.0e} coefficients",
                        reg.algorithm()
                    ),
                    "retrain; the fit diverged or the training targets were broken",
                );
            }
        }
    }
}

/// ML002: persisted cache bundles that current builds would mis-serve or
/// silently retrain around — corrupt JSON, a stale format version, a key
/// that disagrees with the filename, or linear weights of the wrong
/// dimensionality.
struct StaleCacheBundle;

impl Lint for StaleCacheBundle {
    fn code(&self) -> &'static str {
        "ML002"
    }
    fn summary(&self) -> &'static str {
        "cached model bundle corrupt, stale or mis-keyed"
    }
    fn default_level(&self) -> Level {
        Level::Warn
    }
    fn check(&self, subject: &Subject<'_>, sink: &mut Sink<'_>) {
        let Subject::ModelCache(c) = subject else { return };
        let Ok(entries) = std::fs::read_dir(c.dir) else {
            return; // no cache directory = nothing stale
        };
        let mut names: Vec<String> = entries
            .flatten()
            .filter(|e| e.path().is_file())
            .filter_map(|e| e.file_name().to_str().map(String::from))
            .filter(|n| n.starts_with("models-") && n.ends_with(".json"))
            .collect();
        names.sort_unstable();
        for name in names {
            let path = SpanPath::root().seg("cache").seg(&name);
            let key = &name["models-".len()..name.len() - ".json".len()];
            let Ok(text) = std::fs::read_to_string(c.dir.join(&name)) else {
                sink.emit(&path, "cache file is unreadable");
                continue;
            };
            let Ok(v) = serde_json::from_str::<serde_json::Value>(&text) else {
                sink.emit_with(
                    &path,
                    "cache file is not valid JSON",
                    "delete it; the store will retrain and rewrite",
                );
                continue;
            };
            match v.get("version").and_then(|x| x.as_u64()) {
                Some(ver) if ver == c.expected_version as u64 => {}
                Some(ver) => sink.emit_with(
                    &path,
                    format!(
                        "cache format version {ver} does not match the current {}",
                        c.expected_version
                    ),
                    "delete the file; it will never be served again",
                ),
                None => sink.emit(&path, "cache file has no version field"),
            }
            if v.get("key").and_then(|x| x.as_str()) != Some(key) {
                sink.emit_with(
                    &path,
                    "embedded key does not match the filename hash",
                    "the file was renamed or tampered with; delete it",
                );
            }
            for metric in ["time", "energy", "edp", "ed2p"] {
                for family in ["Linear", "Lasso"] {
                    let ptr = format!("/models/{metric}/{family}/weights");
                    if let Some(w) = v.pointer(&ptr).and_then(|x| x.as_array()) {
                        if w.len() != c.expected_row_len {
                            sink.emit_with(
                                &path,
                                format!(
                                    "{metric} model was trained on {}-wide rows; \
                                     current builds use {}",
                                    w.len(),
                                    c.expected_row_len
                                ),
                                "delete the file; the feature basis changed",
                            );
                        }
                    }
                }
            }
        }
    }
}

/// ML003: a linear-family model whose coefficient count disagrees with
/// the input-row width the current feature basis produces. Predictions
/// would panic or silently mix up features.
struct DimensionMismatch;

impl Lint for DimensionMismatch {
    fn code(&self) -> &'static str {
        "ML003"
    }
    fn summary(&self) -> &'static str {
        "regressor dimensionality disagrees with the current feature basis"
    }
    fn default_level(&self) -> Level {
        Level::Deny
    }
    fn check(&self, subject: &Subject<'_>, sink: &mut Sink<'_>) {
        let Subject::Models(m) = subject else { return };
        let expected = expected_row_len(m.expected_features);
        for (name, reg) in m.models.regressors() {
            let Some((weights, _)) = reg.coefficients() else {
                continue;
            };
            if weights.len() != expected {
                sink.emit_with(
                    &model_path(name),
                    format!(
                        "model expects {}-wide input rows, but {} features expand to {}",
                        weights.len(),
                        m.expected_features,
                        expected
                    ),
                    "retrain against the current feature extraction",
                );
            }
        }
    }
}

/// ML004: the device's frequency table reaches above the clock normalizer
/// the models were trained with — every query at the top clocks is an
/// extrapolation outside the training frequency range.
struct OutsideTrainingRange;

impl Lint for OutsideTrainingRange {
    fn code(&self) -> &'static str {
        "ML004"
    }
    fn summary(&self) -> &'static str {
        "device clocks exceed the models' training frequency range"
    }
    fn default_level(&self) -> Level {
        Level::Warn
    }
    fn check(&self, subject: &Subject<'_>, sink: &mut Sink<'_>) {
        let Subject::Models(m) = subject else { return };
        let device_max = m.spec.freq_table.max_core() as f64;
        let trained_max = m.models.f_max_mhz();
        if device_max > trained_max {
            sink.emit_with(
                &model_path("f_max"),
                format!(
                    "{} sweeps up to {device_max} MHz but the models were \
                     normalized to f_max = {trained_max} MHz",
                    m.spec.name
                ),
                "retrain with the device's own frequency table",
            );
        }
    }
}

/// ML005: probing the models at the corners of the device's frequency
/// table yields collapsed (floored) or non-finite metrics — the bundle
/// predicts nothing meaningful on this device.
struct DegeneratePredictions;

impl Lint for DegeneratePredictions {
    fn code(&self) -> &'static str {
        "ML005"
    }
    fn summary(&self) -> &'static str {
        "predictions collapse at the device's frequency-table corners"
    }
    fn default_level(&self) -> Level {
        Level::Warn
    }
    fn check(&self, subject: &Subject<'_>, sink: &mut Sink<'_>) {
        let Subject::Models(m) = subject else { return };
        // A wrong-width model would panic inside predict; ML003 already
        // denies that case.
        if has_dimension_mismatch(m.models, expected_row_len(m.expected_features)) {
            return;
        }
        let probe = vec![1.0; m.expected_features];
        let table = &m.spec.freq_table;
        let mems = [table.mem_mhz[0], table.top_mem()];
        let cores = [table.min_core(), table.max_core()];
        for &mem in &mems {
            for &core in &cores {
                let p = m.models.predict(&probe, core as f64, mem as f64);
                let metrics = [
                    ("time", p.time_s),
                    ("energy", p.energy_j),
                    ("edp", p.edp),
                    ("ed2p", p.ed2p),
                ];
                for (name, v) in metrics {
                    if !v.is_finite() || v < COLLAPSED_PREDICTION {
                        sink.emit_with(
                            &model_path(name),
                            format!(
                                "predicted {name} = {v} at {mem} MHz / {core} MHz \
                                 (collapsed to the positive floor or non-finite)"
                            ),
                            "the model learned nothing at this corner; retrain or widen the sweep",
                        );
                    }
                }
            }
        }
    }
}

/// ML006: the model loses clock monotonicity inside the kernel's
/// interval envelope. Only runs when the caller attaches a
/// [`crate::absint::KernelEnvelope`] to the subject.
///
/// Physics gives one inequality for free: at a fixed memory clock, a
/// higher core clock never makes a kernel *slower*. ML005 probes an
/// all-ones feature vector; this lint probes the two corners of the
/// actual kernel's envelope (every per-class count at its lower/upper
/// bound), so a model that is sane on generic inputs but inverted in the
/// region this kernel will actually query is still caught.
struct EnvelopeMonotonicity;

/// Relative slack before a time inversion counts as a finding: regression
/// noise near-flat kernels is not an inverted model.
const MONOTONE_TOL: f64 = 0.05;

impl Lint for EnvelopeMonotonicity {
    fn code(&self) -> &'static str {
        "ML006"
    }
    fn summary(&self) -> &'static str {
        "model predicts slower execution at a higher core clock inside the kernel envelope"
    }
    fn default_level(&self) -> Level {
        Level::Warn
    }
    fn check(&self, subject: &Subject<'_>, sink: &mut Sink<'_>) {
        let Subject::Models(m) = subject else { return };
        let Some(env) = m.envelope else { return };
        // A wrong-width model would panic inside predict (ML003 denies it),
        // and an envelope of the wrong width is not this bundle's kernel.
        if has_dimension_mismatch(m.models, expected_row_len(m.expected_features))
            || env.classes.len() != m.expected_features
        {
            return;
        }
        let table = &m.spec.freq_table;
        let mem = table.top_mem() as f64;
        let corners: [(&str, Vec<f64>); 2] = [
            ("lo", env.classes.iter().map(|iv| iv.lo).collect()),
            ("hi", env.classes.iter().map(|iv| iv.hi).collect()),
        ];
        for (corner, features) in &corners {
            let t_slow = m
                .models
                .predict(features, table.min_core() as f64, mem)
                .time_s;
            let t_fast = m
                .models
                .predict(features, table.max_core() as f64, mem)
                .time_s;
            if !t_slow.is_finite() || !t_fast.is_finite() {
                continue; // ML005's business.
            }
            if t_fast > t_slow * (1.0 + MONOTONE_TOL) {
                sink.emit_with(
                    &model_path("time"),
                    format!(
                        "at the {corner} corner of kernel `{}`'s envelope, predicted \
                         time rises from {t_slow:.4} at {} MHz to {t_fast:.4} at {} MHz",
                        env.name,
                        table.min_core(),
                        table.max_core()
                    ),
                    "a higher core clock must never predict slower execution; \
                     retrain or widen the training sweep around this kernel",
                );
            }
        }
    }
}

/// All model-family lints in code order.
pub fn builtin() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(AbsurdWeights),
        Box::new(StaleCacheBundle),
        Box::new(DimensionMismatch),
        Box::new(OutsideTrainingRange),
        Box::new(DegeneratePredictions),
        Box::new(EnvelopeMonotonicity),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::LintRegistry;
    use synergy_kernel::NUM_FEATURES;
    use synergy_ml::{Algorithm, ModelSelection, SweepSample};
    use synergy_sim::DeviceSpec;

    fn registry() -> LintRegistry {
        let mut r = LintRegistry::empty();
        for l in builtin() {
            r.register(l);
        }
        r
    }

    /// A small physically-shaped training set over NUM_FEATURES-wide
    /// feature vectors and the V100 clock range.
    fn samples() -> Vec<SweepSample> {
        let mut out = Vec::new();
        for k in [1.0f64, 4.0, 16.0] {
            for step in 0..16 {
                let core = 135.0 + step as f64 * 93.0;
                let fhat = core / 1530.0;
                let mut features = vec![0.0; NUM_FEATURES];
                features[0] = k;
                features[8] = 2.0;
                let time = (0.2 * k + 0.3) / fhat + 0.05;
                let power = 40.0 + 200.0 * fhat * fhat * fhat;
                out.push(SweepSample {
                    features,
                    core_mhz: core,
                    mem_mhz: 877.0,
                    time_s: time,
                    energy_j: power * time,
                });
            }
        }
        out
    }

    #[test]
    fn healthy_models_are_clean() {
        let models = MetricModels::train(
            ModelSelection::uniform(Algorithm::Linear),
            &samples(),
            1530.0,
            0,
        );
        let rep = registry().check_models(&models, &DeviceSpec::v100(), NUM_FEATURES);
        assert!(rep.is_clean(), "unexpected findings:\n{}", rep.render());
    }

    #[test]
    fn narrow_models_deny_dimensions_without_panicking() {
        // Trained on 2-wide features: ML003 must fire and ML005 must skip
        // its probing (which would panic on the row-length mismatch).
        let narrow: Vec<SweepSample> = samples()
            .into_iter()
            .map(|mut s| {
                s.features.truncate(2);
                s
            })
            .collect();
        let models = MetricModels::train(
            ModelSelection::uniform(Algorithm::Linear),
            &narrow,
            1530.0,
            0,
        );
        let rep = registry().check_models(&models, &DeviceSpec::v100(), NUM_FEATURES);
        assert!(rep.has_code("ML003"));
        assert!(rep.has_deny());
        assert!(!rep.has_code("ML005"));
    }

    #[test]
    fn ml006_flags_clock_inverted_models_via_the_envelope() {
        use crate::absint::{interpret, AbsIntConfig};
        use synergy_kernel::{Inst, IrBuilder};

        let kernel = IrBuilder::new()
            .ops(Inst::IntAdd, 2)
            .ops(Inst::GlobalLoad, 2)
            .loop_est(8.0, |b| b.ops(Inst::IntAdd, 1))
            .build("inv");
        let env = interpret(&kernel, &AbsIntConfig::default());

        // A training set whose time *rises* with the core clock: the fitted
        // model inverts the physical 1/f law.
        let inverted: Vec<SweepSample> = samples()
            .into_iter()
            .map(|mut s| {
                let fhat = s.core_mhz / 1530.0;
                s.time_s = 0.1 + 0.5 * fhat;
                s.energy_j = s.time_s * 100.0;
                s
            })
            .collect();
        let models = MetricModels::train(
            ModelSelection::uniform(Algorithm::Linear),
            &inverted,
            1530.0,
            0,
        );
        let rep = registry().check_models_enveloped(
            &models,
            &DeviceSpec::v100(),
            NUM_FEATURES,
            &env,
        );
        assert!(rep.has_code("ML006"), "{}", rep.render());

        // A physically-shaped bundle probed on the same envelope is quiet,
        // and without an envelope the lint never runs.
        let models = MetricModels::train(
            ModelSelection::uniform(Algorithm::Linear),
            &samples(),
            1530.0,
            0,
        );
        let rep = registry().check_models_enveloped(
            &models,
            &DeviceSpec::v100(),
            NUM_FEATURES,
            &env,
        );
        assert!(!rep.has_code("ML006"), "{}", rep.render());
    }

    #[test]
    fn missing_cache_dir_is_clean() {
        let rep = registry().check_model_cache(
            std::path::Path::new("/nonexistent/synergy-analyze-cache"),
            1,
            expected_row_len(NUM_FEATURES),
        );
        assert!(rep.is_clean());
    }
}
