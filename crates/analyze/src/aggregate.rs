//! Suite-wide aggregation and the ratcheting lint baseline.
//!
//! `synergy analyze` runs the full [`crate::lint::LintRegistry`] over
//! every benchmark × device pair and needs three things the per-subject
//! [`crate::diag::Report`] does not provide: a stable identity for each
//! run (so findings can be compared across invocations), per-code counts
//! (the ratchet currency), and deterministic serialization (the baseline
//! file is committed to the repository and diffed by CI).
//!
//! The ratchet contract: a [`Baseline`] grandfathers every finding
//! present when it was written. A later run *fails* if any
//! `benchmark/device/code` bucket grows past its baselined count (a new
//! finding) and is *flagged as drift* if a bucket shrinks or disappears
//! (the baseline overstates reality and should be re-written so the
//! improvement is locked in). Counts only ever ratchet downward through
//! explicit `--write-baseline` runs.
//!
//! Serialization goes through the in-crate [`crate::json`] codec — object
//! keys are emitted in insertion order and the encoder is deterministic,
//! so re-writing an unchanged baseline is a byte-level no-op.

use crate::diag::{Diagnostic, Level, Report};
use crate::json::{Json, JsonError};
use std::collections::BTreeMap;

/// One registry run: the findings for a single benchmark on one device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunRecord {
    /// Suite benchmark name (kernel IR name).
    pub bench: String,
    /// Device key, e.g. `v100`.
    pub device: String,
    /// The findings of the full registry on this pair.
    pub report: Report,
}

/// All runs of one `synergy analyze` invocation, in deterministic
/// (suite × device) order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SuiteReport {
    /// The per-pair runs, in the order they were scheduled.
    pub runs: Vec<RunRecord>,
}

impl SuiteReport {
    /// An empty report.
    pub fn new() -> SuiteReport {
        SuiteReport::default()
    }

    /// Append one run.
    pub fn push(&mut self, bench: impl Into<String>, device: impl Into<String>, report: Report) {
        self.runs.push(RunRecord {
            bench: bench.into(),
            device: device.into(),
            report,
        });
    }

    /// All findings with their run identity, in run order.
    pub fn findings(&self) -> impl Iterator<Item = (&RunRecord, &Diagnostic)> {
        self.runs
            .iter()
            .flat_map(|r| r.report.diagnostics.iter().map(move |d| (r, d)))
    }

    /// Total number of findings.
    pub fn total(&self) -> usize {
        self.runs.iter().map(|r| r.report.diagnostics.len()).sum()
    }

    /// Number of deny-level findings.
    pub fn deny_count(&self) -> usize {
        self.findings()
            .filter(|(_, d)| d.severity == Level::Deny)
            .count()
    }

    /// Findings per lint code, sorted by code.
    pub fn counts_by_code(&self) -> BTreeMap<String, u64> {
        let mut counts = BTreeMap::new();
        for (_, d) in self.findings() {
            *counts.entry(d.code.clone()).or_insert(0) += 1;
        }
        counts
    }

    /// Findings per `bench/device/code` ratchet bucket, sorted by key.
    pub fn counts_by_bucket(&self) -> BTreeMap<String, u64> {
        let mut counts = BTreeMap::new();
        for (run, d) in self.findings() {
            let key = format!("{}/{}/{}", run.bench, run.device, d.code);
            *counts.entry(key).or_insert(0) += 1;
        }
        counts
    }

    /// Deterministic JSON form: run list with full diagnostics plus the
    /// per-code summary.
    pub fn to_json(&self) -> Json {
        let runs = self
            .runs
            .iter()
            .map(|r| {
                Json::obj(vec![
                    ("bench", Json::Str(r.bench.clone())),
                    ("device", Json::Str(r.device.clone())),
                    (
                        "diagnostics",
                        Json::Arr(
                            r.report
                                .diagnostics
                                .iter()
                                .map(|d| {
                                    Json::obj(vec![
                                        ("code", Json::Str(d.code.clone())),
                                        ("level", Json::Str(d.severity.to_string())),
                                        ("path", Json::Str(d.path.clone())),
                                        ("message", Json::Str(d.message.clone())),
                                        (
                                            "suggestion",
                                            match &d.suggestion {
                                                Some(s) => Json::Str(s.clone()),
                                                None => Json::Null,
                                            },
                                        ),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        let summary = self
            .counts_by_code()
            .into_iter()
            .map(|(code, n)| (code, Json::Int(n as i128)))
            .collect();
        Json::Obj(vec![
            ("runs".to_string(), Json::Arr(runs)),
            ("summary".to_string(), Json::Obj(summary)),
            ("total".to_string(), Json::Int(self.total() as i128)),
        ])
    }
}

/// The committed ratchet state: grandfathered finding counts per
/// `bench/device/code` bucket.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Bucket → grandfathered count.
    pub buckets: BTreeMap<String, u64>,
}

/// The result of diffing a fresh [`SuiteReport`] against a [`Baseline`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RatchetOutcome {
    /// Buckets that grew past their grandfathered count — these fail the
    /// gate. Each entry is `(bucket, baselined, observed)`.
    pub regressions: Vec<(String, u64, u64)>,
    /// Buckets that shrank below (or vanished from) the baseline — the
    /// committed baseline is stale; re-write it to lock the improvement
    /// in. Each entry is `(bucket, baselined, observed)`.
    pub improvements: Vec<(String, u64, u64)>,
}

impl RatchetOutcome {
    /// No new findings (improvements may still be pending a re-write).
    pub fn no_regressions(&self) -> bool {
        self.regressions.is_empty()
    }

    /// Baseline exactly matches reality.
    pub fn is_exact(&self) -> bool {
        self.regressions.is_empty() && self.improvements.is_empty()
    }

    /// Human-readable summary lines, regressions first.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (bucket, was, now) in &self.regressions {
            out.push_str(&format!(
                "ratchet: NEW findings in {bucket}: {now} observed, {was} grandfathered\n"
            ));
        }
        for (bucket, was, now) in &self.improvements {
            out.push_str(&format!(
                "ratchet: stale baseline for {bucket}: {now} observed, {was} grandfathered \
                 (re-run with --write-baseline to lock in the improvement)\n"
            ));
        }
        out
    }
}

impl Baseline {
    /// An empty baseline (everything is a new finding).
    pub fn empty() -> Baseline {
        Baseline::default()
    }

    /// Snapshot a report as the new baseline.
    pub fn from_report(report: &SuiteReport) -> Baseline {
        Baseline {
            buckets: report.counts_by_bucket(),
        }
    }

    /// Parse the committed baseline file.
    pub fn from_json_str(text: &str) -> Result<Baseline, JsonError> {
        let json = Json::parse(text)?;
        let Json::Obj(fields) = &json else {
            return Err(JsonError::Schema {
                field: "<root>".to_string(),
                expected: "object",
            });
        };
        let Some(Json::Obj(buckets)) = fields
            .iter()
            .find(|(k, _)| k == "buckets")
            .map(|(_, v)| v)
        else {
            return Err(JsonError::Schema {
                field: "buckets".to_string(),
                expected: "object",
            });
        };
        let mut out = BTreeMap::new();
        for (key, value) in buckets {
            let n = match value {
                Json::Int(n) if *n >= 0 => *n as u64,
                _ => {
                    return Err(JsonError::Schema {
                        field: format!("buckets.{key}"),
                        expected: "non-negative integer count",
                    })
                }
            };
            out.insert(key.clone(), n);
        }
        Ok(Baseline { buckets: out })
    }

    /// Deterministic JSON encoding (sorted buckets, stable field order).
    pub fn encode(&self) -> String {
        let buckets = self
            .buckets
            .iter()
            .map(|(k, v)| (k.clone(), Json::Int(*v as i128)))
            .collect();
        let json = Json::Obj(vec![
            (
                "comment".to_string(),
                Json::Str(
                    "Grandfathered `synergy analyze` findings (bench/device/code -> count). \
                     CI fails on growth; shrinkage asks for --write-baseline."
                        .to_string(),
                ),
            ),
            ("buckets".to_string(), Json::Obj(buckets)),
        ]);
        let mut text = json.encode();
        text.push('\n');
        text
    }

    /// Diff a fresh report against the grandfathered counts.
    pub fn diff(&self, report: &SuiteReport) -> RatchetOutcome {
        let observed = report.counts_by_bucket();
        let mut outcome = RatchetOutcome::default();
        for (bucket, &now) in &observed {
            let was = self.buckets.get(bucket).copied().unwrap_or(0);
            if now > was {
                outcome.regressions.push((bucket.clone(), was, now));
            } else if now < was {
                outcome.improvements.push((bucket.clone(), was, now));
            }
        }
        for (bucket, &was) in &self.buckets {
            if !observed.contains_key(bucket) {
                outcome.improvements.push((bucket.clone(), was, 0));
            }
        }
        outcome.improvements.sort();
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::SpanPath;

    fn finding(code: &str, level: Level, msg: &str) -> Diagnostic {
        Diagnostic {
            code: code.to_string(),
            severity: level,
            path: SpanPath::root().seg("body").render(),
            message: msg.to_string(),
            suggestion: None,
        }
    }

    fn sample_report() -> SuiteReport {
        let mut suite = SuiteReport::new();
        let mut rep = Report::new();
        rep.diagnostics.push(finding("IR006", Level::Warn, "degenerate branch"));
        rep.diagnostics.push(finding("IR006", Level::Warn, "another one"));
        suite.push("vec_add", "v100", rep);
        let mut rep = Report::new();
        rep.diagnostics.push(finding("IR101", Level::Warn, "unstable"));
        suite.push("mat_mul", "mi100", rep);
        suite.push("sobel", "v100", Report::new());
        suite
    }

    #[test]
    fn buckets_count_per_bench_device_code() {
        let suite = sample_report();
        let buckets = suite.counts_by_bucket();
        assert_eq!(buckets.get("vec_add/v100/IR006"), Some(&2));
        assert_eq!(buckets.get("mat_mul/mi100/IR101"), Some(&1));
        assert_eq!(buckets.len(), 2, "clean runs contribute no buckets");
        assert_eq!(suite.total(), 3);
        assert_eq!(suite.deny_count(), 0);
    }

    #[test]
    fn baseline_round_trips_through_json() {
        let baseline = Baseline::from_report(&sample_report());
        let text = baseline.encode();
        let parsed = Baseline::from_json_str(&text).unwrap();
        assert_eq!(parsed, baseline);
        // Deterministic: encoding twice is byte-identical.
        assert_eq!(parsed.encode(), text);
    }

    #[test]
    fn ratchet_passes_when_counts_match() {
        let suite = sample_report();
        let baseline = Baseline::from_report(&suite);
        let outcome = baseline.diff(&suite);
        assert!(outcome.is_exact(), "{}", outcome.render());
    }

    #[test]
    fn ratchet_fails_on_new_findings() {
        let baseline = Baseline::from_report(&sample_report());
        let mut grown = sample_report();
        let mut rep = Report::new();
        rep.diagnostics.push(finding("IR006", Level::Warn, "fresh"));
        grown.push("sobel2", "v100", rep);
        let outcome = baseline.diff(&grown);
        assert!(!outcome.no_regressions());
        assert_eq!(
            outcome.regressions,
            vec![("sobel2/v100/IR006".to_string(), 0, 1)]
        );
        // Growth inside an existing bucket is also a regression.
        let mut more = sample_report();
        more.runs[0]
            .report
            .diagnostics
            .push(finding("IR006", Level::Warn, "third"));
        let outcome = baseline.diff(&more);
        assert_eq!(
            outcome.regressions,
            vec![("vec_add/v100/IR006".to_string(), 2, 3)]
        );
    }

    #[test]
    fn ratchet_flags_stale_baseline_as_improvement() {
        let baseline = Baseline::from_report(&sample_report());
        let mut fixed = sample_report();
        fixed.runs[1].report.diagnostics.clear(); // mat_mul now clean
        let outcome = baseline.diff(&fixed);
        assert!(outcome.no_regressions());
        assert!(!outcome.is_exact());
        assert_eq!(
            outcome.improvements,
            vec![("mat_mul/mi100/IR101".to_string(), 1, 0)]
        );
        assert!(outcome.render().contains("--write-baseline"));
    }

    #[test]
    fn malformed_baselines_are_rejected() {
        assert!(Baseline::from_json_str("[]").is_err());
        assert!(Baseline::from_json_str("{}").is_err());
        assert!(
            Baseline::from_json_str(r#"{"buckets": {"a/b/C001": -2}}"#).is_err(),
            "negative counts must be rejected"
        );
        assert!(Baseline::from_json_str(r#"{"buckets": {}}"#).unwrap().buckets.is_empty());
    }

    #[test]
    fn suite_report_json_is_deterministic_and_complete() {
        let suite = sample_report();
        let a = suite.to_json().encode();
        let b = suite.to_json().encode();
        assert_eq!(a, b);
        assert!(a.contains("\"IR006\":2"));
        assert!(a.contains("\"total\":3"));
        assert!(a.contains("degenerate branch"));
    }
}
