//! The sweep lint family (`SW001`–`SW007`): sanity checks over frequency
//! sweeps (measured or predicted) and the target selections made on them.
//!
//! Degenerate sweeps are the dominant source of bad DVFS decisions: a
//! single non-physical point shifts every argmin, a duplicated or
//! out-of-order configuration breaks the nearest-clock lookup invariants,
//! and a selection that falls off the Pareto front means the target search
//! is leaving either time or energy on the table. When the caller attaches
//! the kernel's static interval envelope, `SW007` additionally cross-checks
//! the measurements against what the envelope proves about the kernel's
//! shape.

use crate::diag::{Level, SpanPath};
use crate::lint::{Lint, Sink, Subject};
use std::collections::HashSet;
use synergy_metrics::{is_pareto_optimal, pareto_front, point_at, search_optimal};

/// The path for whole-sweep findings.
fn sweep_path() -> SpanPath {
    SpanPath::root().seg("sweep")
}

/// SW001: a point with non-finite or non-positive time or energy. Every
/// downstream argmin and Pareto comparison is garbage once one slips in.
struct NonPhysicalPoint;

impl Lint for NonPhysicalPoint {
    fn code(&self) -> &'static str {
        "SW001"
    }
    fn summary(&self) -> &'static str {
        "sweep point with non-finite or non-positive time/energy"
    }
    fn default_level(&self) -> Level {
        Level::Deny
    }
    fn check(&self, subject: &Subject<'_>, sink: &mut Sink<'_>) {
        let Subject::Sweep(s) = subject else { return };
        for (i, p) in s.points.iter().enumerate() {
            if !p.is_physical() {
                sink.emit_with(
                    &SpanPath::root().index("sweep", i),
                    format!(
                        "point at {} is not physical: time = {} s, energy = {} J",
                        p.clocks, p.time_s, p.energy_j
                    ),
                    "time and energy must be finite and strictly positive",
                );
            }
        }
    }
}

/// SW002: two sweep points with the same (mem, core) configuration. The
/// nearest-clock lookup silently keeps the first; the second is dead data
/// or, worse, a conflicting measurement.
struct DuplicateConfig;

impl Lint for DuplicateConfig {
    fn code(&self) -> &'static str {
        "SW002"
    }
    fn summary(&self) -> &'static str {
        "duplicate (mem, core) configuration in a sweep"
    }
    fn default_level(&self) -> Level {
        Level::Warn
    }
    fn check(&self, subject: &Subject<'_>, sink: &mut Sink<'_>) {
        let Subject::Sweep(s) = subject else { return };
        let mut seen = HashSet::new();
        for (i, p) in s.points.iter().enumerate() {
            if !seen.insert((p.clocks.mem_mhz, p.clocks.core_mhz)) {
                sink.emit_with(
                    &SpanPath::root().index("sweep", i),
                    format!("configuration {} appears more than once", p.clocks),
                    "keep one point per configuration; lookups ignore the later duplicates",
                );
            }
        }
    }
}

/// SW003: sweep points out of ascending (mem, core) order. Sweeps are
/// produced by the frequency table's ordered enumeration; a reordering
/// means the sweep was assembled by hand or corrupted in transit.
struct NonMonotonicSweep;

impl Lint for NonMonotonicSweep {
    fn code(&self) -> &'static str {
        "SW003"
    }
    fn summary(&self) -> &'static str {
        "sweep points not in ascending (mem, core) order"
    }
    fn default_level(&self) -> Level {
        Level::Warn
    }
    fn check(&self, subject: &Subject<'_>, sink: &mut Sink<'_>) {
        let Subject::Sweep(s) = subject else { return };
        for (i, w) in s.points.windows(2).enumerate() {
            let (prev, cur) = (w[0].clocks, w[1].clocks);
            // Strictly decreasing pairs only: equality is SW002's business.
            if (cur.mem_mhz, cur.core_mhz) < (prev.mem_mhz, prev.core_mhz) {
                sink.emit_with(
                    &SpanPath::root().index("sweep", i + 1),
                    format!("{cur} follows {prev}, breaking ascending (mem, core) order"),
                    "emit sweeps in frequency-table order",
                );
            }
        }
    }
}

/// SW004: an empty sweep, or one whose Pareto front is empty (possible
/// only when every point has broken coordinates). The energy targets of
/// Section 5 are defined over the front; without one there is nothing to
/// select.
struct EmptyParetoFront;

impl Lint for EmptyParetoFront {
    fn code(&self) -> &'static str {
        "SW004"
    }
    fn summary(&self) -> &'static str {
        "empty sweep or empty Pareto front"
    }
    fn default_level(&self) -> Level {
        Level::Deny
    }
    fn check(&self, subject: &Subject<'_>, sink: &mut Sink<'_>) {
        let Subject::Sweep(s) = subject else { return };
        if s.points.is_empty() {
            sink.emit_with(
                &sweep_path(),
                "sweep contains no points",
                "predict or measure at least one frequency configuration",
            );
        } else if pareto_front(s.points).is_empty() {
            sink.emit(
                &sweep_path(),
                "no point survives Pareto filtering (all coordinates broken)",
            );
        }
    }
}

/// SW005: a target selection that is not Pareto-optimal within the sweep
/// it was selected from — the search is about to pin a frequency that
/// wastes time or energy for free.
struct OffFrontSelection;

impl Lint for OffFrontSelection {
    fn code(&self) -> &'static str {
        "SW005"
    }
    fn summary(&self) -> &'static str {
        "target selection off the sweep's Pareto front"
    }
    fn default_level(&self) -> Level {
        Level::Warn
    }
    fn check(&self, subject: &Subject<'_>, sink: &mut Sink<'_>) {
        let Subject::Sweep(s) = subject else { return };
        if s.points.is_empty() {
            return; // SW004's business.
        }
        for target in s.targets {
            let Some(sel) = search_optimal(*target, s.points, s.baseline) else {
                continue; // no baseline point — SW006's business.
            };
            if !is_pareto_optimal(&sel, s.points) {
                sink.emit_with(
                    &SpanPath::root().seg("targets").seg(target.to_string()),
                    format!(
                        "{target} selects {} (time {} s, energy {} J), which is \
                         dominated within the sweep",
                        sel.clocks, sel.time_s, sel.energy_j
                    ),
                    "another configuration is at least as fast and strictly cheaper (or vice versa)",
                );
            }
        }
    }
}

/// SW006: the sweep has no point sharing the baseline's memory clock, so
/// the ES/PL baseline lookup fails and every constrained target silently
/// returns nothing.
struct MissingBaseline;

impl Lint for MissingBaseline {
    fn code(&self) -> &'static str {
        "SW006"
    }
    fn summary(&self) -> &'static str {
        "no sweep point shares the baseline memory clock"
    }
    fn default_level(&self) -> Level {
        Level::Deny
    }
    fn check(&self, subject: &Subject<'_>, sink: &mut Sink<'_>) {
        let Subject::Sweep(s) = subject else { return };
        if !s.points.is_empty() && point_at(s.points, s.baseline).is_none() {
            sink.emit_with(
                &SpanPath::root().seg("baseline"),
                format!(
                    "baseline {} has no sweep point at its memory clock; \
                     ES/PL targets cannot be evaluated",
                    s.baseline
                ),
                "sweep the baseline memory clock, or fix the baseline configuration",
            );
        }
    }
}

/// SW007: the measured sweep contradicts the kernel's static interval
/// envelope. Only runs when the caller attaches a
/// [`crate::absint::KernelEnvelope`] to the subject. Two contradictions
/// are checked, both robust across the *whole* envelope (no point
/// estimate involved):
///
/// - the envelope says the kernel executes no compute at all (the
///   compute-ops upper bound is zero), yet the measured time scales
///   strongly with the core clock;
/// - the envelope says the kernel moves no DRAM traffic on any path
///   (bytes upper bound zero) while doing real compute, yet the measured
///   time barely reacts to the core clock.
///
/// Either way the sweep was measured for a different kernel than the IR
/// describes (mislabeled data, stale cache) or the IR is wrong.
struct EnvelopeContradiction;

/// Minimum core-clock spread (max/min) before SW007 trusts a scaling
/// judgement.
const MIN_CLOCK_SPREAD: f64 = 1.5;

impl Lint for EnvelopeContradiction {
    fn code(&self) -> &'static str {
        "SW007"
    }
    fn summary(&self) -> &'static str {
        "measured sweep contradicts the kernel's static envelope"
    }
    fn default_level(&self) -> Level {
        Level::Warn
    }
    fn check(&self, subject: &Subject<'_>, sink: &mut Sink<'_>) {
        let Subject::Sweep(s) = subject else { return };
        let Some(env) = s.envelope else { return };
        // Judge core scaling at the baseline memory clock so the memory
        // subsystem is held constant.
        let mut slow = None; // (core_mhz, time_s) at the lowest core clock
        let mut fast = None; // ... at the highest
        for p in s.points {
            if p.clocks.mem_mhz != s.baseline.mem_mhz || !p.is_physical() {
                continue;
            }
            let entry = (p.clocks.core_mhz, p.time_s);
            if slow.is_none_or(|(c, _)| entry.0 < c) {
                slow = Some(entry);
            }
            if fast.is_none_or(|(c, _)| entry.0 > c) {
                fast = Some(entry);
            }
        }
        let (Some((core_lo, t_slow)), Some((core_hi, t_fast))) = (slow, fast) else {
            return;
        };
        if (core_hi as f64) < MIN_CLOCK_SPREAD * core_lo as f64 {
            return; // not enough clock range to judge scaling
        }
        let scaling = t_slow / t_fast; // > 1 when the core clock matters
        let compute = env.compute_ops();
        let bytes = &env.global_bytes_per_item;
        if compute.hi == 0.0 && scaling > 1.5 {
            sink.emit_with(
                &sweep_path(),
                format!(
                    "envelope proves the kernel executes no compute ops on any \
                     path, yet measured time scales {scaling:.2}x across cores \
                     {core_lo}-{core_hi} MHz"
                ),
                "the sweep belongs to a different kernel than this IR (stale \
                 cache or mislabeled measurement), or the IR is missing its \
                 compute",
            );
        } else if bytes.hi == 0.0 && compute.lo > 0.0 && scaling < 1.1 {
            sink.emit_with(
                &sweep_path(),
                format!(
                    "envelope proves the kernel moves no DRAM traffic (pure \
                     compute), yet measured time is flat ({scaling:.2}x) across \
                     cores {core_lo}-{core_hi} MHz"
                ),
                "a pure-compute kernel must speed up with the core clock; the \
                 sweep and the IR describe different kernels",
            );
        }
    }
}

/// All sweep-family lints in code order.
pub fn builtin() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(NonPhysicalPoint),
        Box::new(DuplicateConfig),
        Box::new(NonMonotonicSweep),
        Box::new(EmptyParetoFront),
        Box::new(OffFrontSelection),
        Box::new(MissingBaseline),
        Box::new(EnvelopeContradiction),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::LintRegistry;
    use synergy_metrics::{EnergyTarget, MetricPoint};
    use synergy_sim::ClockConfig;

    fn registry() -> LintRegistry {
        let mut r = LintRegistry::empty();
        for l in builtin() {
            r.register(l);
        }
        r
    }

    fn p(core: u32, t: f64, e: f64) -> MetricPoint {
        MetricPoint::new(ClockConfig::new(877, core), t, e)
    }

    fn healthy() -> Vec<MetricPoint> {
        vec![
            p(400, 4.0, 8.0),
            p(600, 3.0, 6.0),
            p(800, 2.5, 5.0),
            p(1000, 2.2, 5.5),
            p(1312, 1.9, 7.5),
            p(1530, 1.8, 9.0),
        ]
    }

    #[test]
    fn healthy_sweep_is_clean() {
        let rep = registry().check_sweep(
            &healthy(),
            ClockConfig::new(877, 1312),
            &EnergyTarget::PAPER_SET,
        );
        assert!(rep.is_clean(), "unexpected findings:\n{}", rep.render());
    }

    #[test]
    fn broken_sweep_fires_the_family() {
        let mut pts = healthy();
        pts.push(p(1530, f64::NAN, 1.0)); // duplicate AND non-physical
        pts.push(p(500, 3.5, 7.0)); // order violation
        let rep = registry().check_sweep(
            &pts,
            ClockConfig::new(877, 1312),
            &EnergyTarget::PAPER_SET,
        );
        assert!(rep.has_code("SW001"));
        assert!(rep.has_code("SW002"));
        assert!(rep.has_code("SW003"));
        assert_eq!(rep.diagnostics[0].path, "sweep[6]");
    }

    #[test]
    fn empty_sweep_and_missing_baseline_deny() {
        let r = registry();
        let rep = r.check_sweep(&[], ClockConfig::new(877, 1312), &[]);
        assert_eq!(rep.codes(), vec!["SW004"]);
        assert!(rep.has_deny());

        let rep = r.check_sweep(&healthy(), ClockConfig::new(900, 1312), &[]);
        assert_eq!(rep.codes(), vec!["SW006"]);
    }

    #[test]
    fn sw007_flags_core_scaling_for_a_proven_memory_only_kernel() {
        use crate::absint::{interpret, AbsIntConfig};
        use synergy_kernel::{Inst, IrBuilder};

        // The envelope proves zero compute on every path...
        let k = IrBuilder::new()
            .ops(Inst::GlobalLoad, 4)
            .ops(Inst::GlobalStore, 2)
            .build("memcpyish");
        let env = interpret(&k, &AbsIntConfig::default());
        // ...but the "measured" sweep speeds up 2.2x with the core clock.
        let rep = registry().check_sweep_enveloped(
            &healthy(),
            ClockConfig::new(877, 1312),
            &EnergyTarget::PAPER_SET,
            &env,
        );
        assert!(rep.has_code("SW007"), "{}", rep.render());

        // A compute-carrying kernel with the same sweep is consistent.
        let k = IrBuilder::new()
            .ops(Inst::GlobalLoad, 1)
            .loop_n(64, |b| b.ops(Inst::FloatMul, 2))
            .build("compute");
        let env = interpret(&k, &AbsIntConfig::default());
        let rep = registry().check_sweep_enveloped(
            &healthy(),
            ClockConfig::new(877, 1312),
            &EnergyTarget::PAPER_SET,
            &env,
        );
        assert!(!rep.has_code("SW007"), "{}", rep.render());
    }

    #[test]
    fn sw007_flags_flat_time_for_a_proven_pure_compute_kernel() {
        use crate::absint::{interpret, AbsIntConfig};
        use synergy_kernel::{Inst, IrBuilder};

        let k = IrBuilder::new()
            .loop_n(128, |b| b.ops(Inst::FloatMul, 2))
            .build("flops");
        let env = interpret(&k, &AbsIntConfig::default());
        // Time barely moves across a 3.8x core range.
        let flat: Vec<MetricPoint> = [400u32, 800, 1312, 1530]
            .iter()
            .map(|&c| p(c, 2.0 + 0.01 * (1530 - c) as f64 / 1530.0, 5.0))
            .collect();
        let rep = registry().check_sweep_enveloped(
            &flat,
            ClockConfig::new(877, 1312),
            &[],
            &env,
        );
        assert!(rep.has_code("SW007"), "{}", rep.render());

        // Without an envelope the lint stays silent on the same sweep.
        let rep = registry().check_sweep(&flat, ClockConfig::new(877, 1312), &[]);
        assert!(!rep.has_code("SW007"));
    }
}
