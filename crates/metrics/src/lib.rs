//! # synergy-metrics
//!
//! Energy metrics and target selection (Section 5 of the SYnergy paper):
//! metric points over frequency sweeps, Pareto fronts in the
//! (time, energy) plane, the scalar energy targets `MAX_PERF`,
//! `MIN_ENERGY`, `MIN_EDP`, `MIN_ED2P`, `ES_x` and `PL_x`, and the
//! frequency-search / accuracy bookkeeping used by the modeling workflow.

#![warn(missing_docs)]

pub mod indexed;
pub mod pareto;
pub mod point;
pub mod search;
pub mod targets;

pub use indexed::IndexedSweep;
pub use pareto::{is_pareto_optimal, pareto_flags, pareto_front, pareto_indices};
pub use point::MetricPoint;
pub use search::{frequency_ape, objective_value, point_at, search_optimal};
pub use targets::{select, EnergyTarget, ParseTargetError};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use synergy_sim::ClockConfig;

    fn arb_point() -> impl Strategy<Value = MetricPoint> {
        (100u32..2000, 0.001f64..100.0, 0.001f64..1000.0)
            .prop_map(|(c, t, e)| MetricPoint::new(ClockConfig::new(877, c), t, e))
    }

    fn arb_points() -> impl Strategy<Value = Vec<MetricPoint>> {
        prop::collection::vec(arb_point(), 1..40)
    }

    /// A sweep with one point per clock configuration, as frequency sweeps
    /// produce in practice (`point_at` is only well-defined then).
    fn arb_sweep() -> impl Strategy<Value = Vec<MetricPoint>> {
        prop::collection::vec((0.001f64..100.0, 0.001f64..1000.0), 1..40).prop_map(|te| {
            te.into_iter()
                .enumerate()
                .map(|(i, (t, e))| {
                    MetricPoint::new(ClockConfig::new(877, 100 + 10 * i as u32), t, e)
                })
                .collect()
        })
    }

    proptest! {
        /// No point on the front is dominated by any input point.
        #[test]
        fn front_points_undominated(pts in arb_points()) {
            let front = pareto_front(&pts);
            for f in &front {
                prop_assert!(!pts.iter().any(|q| q.dominates(f)));
            }
        }

        /// Every front point's coordinates come from the input.
        #[test]
        fn front_subset_of_input(pts in arb_points()) {
            let front = pareto_front(&pts);
            for f in &front {
                prop_assert!(pts.iter().any(|q|
                    q.time_s == f.time_s && q.energy_j == f.energy_j));
            }
        }

        /// Every input point is dominated by (or equal to) some front point.
        #[test]
        fn front_covers_input(pts in arb_points()) {
            let front = pareto_front(&pts);
            for q in &pts {
                prop_assert!(front.iter().any(|f|
                    f.dominates(q) || (f.time_s == q.time_s && f.energy_j == q.energy_j)));
            }
        }

        /// Selected targets always come from the candidate set.
        #[test]
        fn selection_in_candidates(pts in arb_points(), x in 0u8..=100) {
            let baseline = pts[0];
            for target in [
                EnergyTarget::MaxPerf,
                EnergyTarget::MinEnergy,
                EnergyTarget::MinEdp,
                EnergyTarget::MinEd2p,
                EnergyTarget::EnergySaving(x),
                EnergyTarget::PerfLoss(x),
            ] {
                let sel = select(target, &pts, &baseline).unwrap();
                prop_assert!(pts.contains(&sel), "{target}");
            }
        }

        /// ES selection energy is monotone non-increasing in x, and ES
        /// selections are Pareto-optimal.
        #[test]
        fn es_monotone_and_pareto(pts in arb_points()) {
            let baseline = pts[0];
            let mut prev = f64::INFINITY;
            for x in [0u8, 10, 25, 40, 50, 60, 75, 90, 100] {
                let sel = select(EnergyTarget::EnergySaving(x), &pts, &baseline).unwrap();
                prop_assert!(sel.energy_j <= prev + 1e-12);
                prev = sel.energy_j;
                prop_assert!(is_pareto_optimal(&sel, &pts));
            }
        }

        /// The four argmin targets pick true minima.
        #[test]
        fn argmin_targets_minimize(pts in arb_points()) {
            let baseline = pts[0];
            for target in [
                EnergyTarget::MaxPerf,
                EnergyTarget::MinEnergy,
                EnergyTarget::MinEdp,
                EnergyTarget::MinEd2p,
            ] {
                let sel = select(target, &pts, &baseline).unwrap();
                let v = target.objective(&sel).unwrap();
                for q in &pts {
                    prop_assert!(v <= target.objective(q).unwrap() + 1e-12);
                }
            }
        }

        /// Frequency APE is zero for the true optimum and non-negative
        /// everywhere.
        #[test]
        fn ape_nonnegative(pts in arb_sweep(), pick in 0usize..40) {
            let base = pts[0].clocks;
            let probe = pts[pick % pts.len()].clocks;
            for target in EnergyTarget::PAPER_SET {
                if let Some(ape) = frequency_ape(target, &pts, base, probe) {
                    prop_assert!(ape >= 0.0);
                }
                let opt = search_optimal(target, &pts, base).unwrap();
                let ape0 = frequency_ape(target, &pts, base, opt.clocks).unwrap();
                prop_assert!(ape0.abs() < 1e-12);
            }
        }

        /// The batch Pareto sweep agrees with the per-point scan on every
        /// element, including duplicate coordinates and ties.
        #[test]
        fn pareto_flags_match_per_point_scan(pts in arb_points()) {
            let flags = pareto_flags(&pts);
            for (i, p) in pts.iter().enumerate() {
                prop_assert_eq!(flags[i], is_pareto_optimal(p, &pts), "index {}", i);
            }
        }

        /// The indexed sweep reproduces the linear scan exactly: same
        /// nearest point, same search result, same APE, for any sweep and
        /// any query — including clocks absent from the sweep.
        #[test]
        fn indexed_sweep_matches_linear_scan(
            pts in arb_points(),
            mem in prop::sample::select(vec![877u32, 900]),
            core in 50u32..2100,
            pick in 0usize..40,
        ) {
            let idx = IndexedSweep::new(pts.clone());
            let q = ClockConfig::new(mem, core);
            prop_assert_eq!(idx.point_at(q), point_at(&pts, q));
            let base = pts[pick % pts.len()].clocks;
            for target in EnergyTarget::PAPER_SET {
                prop_assert_eq!(idx.search(target, base), search_optimal(target, &pts, base));
                prop_assert_eq!(
                    idx.frequency_ape(target, base, q),
                    frequency_ape(target, &pts, base, q)
                );
            }
        }
    }
}
