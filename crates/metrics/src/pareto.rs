//! Pareto fronts over (time, energy).
//!
//! The paper's characterization figures (2, 7, 8) draw the Pareto front of
//! the speedup/normalized-energy cloud; the energy targets of Section 5 are
//! then defined over that front. Minimizing both execution time and energy,
//! a point is Pareto-optimal when no other point is at least as good on
//! both axes and strictly better on one.

use crate::point::MetricPoint;

/// Compute the Pareto front (minimize time, minimize energy).
///
/// Returns the front sorted by ascending time (hence descending energy).
/// Duplicate-coordinate points keep one representative. `O(n log n)`.
///
/// ```
/// use synergy_metrics::{pareto_front, MetricPoint};
/// use synergy_sim::ClockConfig;
///
/// let points = vec![
///     MetricPoint::new(ClockConfig::new(877, 1530), 1.0, 10.0),
///     MetricPoint::new(ClockConfig::new(877, 1000), 2.0, 5.0),
///     MetricPoint::new(ClockConfig::new(877, 1200), 2.5, 6.0), // dominated
/// ];
/// let front = pareto_front(&points);
/// assert_eq!(front.len(), 2);
/// assert_eq!(front[0].clocks.core_mhz, 1530);
/// ```
pub fn pareto_front(points: &[MetricPoint]) -> Vec<MetricPoint> {
    let mut sorted: Vec<MetricPoint> = points.to_vec();
    // Sort by time, ties broken by energy so the best-energy duplicate wins.
    sorted.sort_by(|a, b| {
        a.time_s
            .total_cmp(&b.time_s)
            .then(a.energy_j.total_cmp(&b.energy_j))
    });
    let mut front: Vec<MetricPoint> = Vec::new();
    let mut best_energy = f64::INFINITY;
    let mut last_time = f64::NEG_INFINITY;
    for p in sorted {
        if p.energy_j < best_energy {
            // Equal-time points: only the first (lowest-energy) survives.
            if p.time_s == last_time {
                continue;
            }
            best_energy = p.energy_j;
            last_time = p.time_s;
            front.push(p);
        }
    }
    front
}

/// Indices into `points` of the Pareto-optimal elements (first occurrence
/// per coordinate pair), in input order.
pub fn pareto_indices(points: &[MetricPoint]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| {
            let p = &points[i];
            !points.iter().enumerate().any(|(j, q)| {
                (q.dominates(p))
                    || (j < i && q.time_s == p.time_s && q.energy_j == p.energy_j)
            })
        })
        .collect()
}

/// True when `p` lies on the Pareto front of `points` (it is not dominated
/// by any of them).
pub fn is_pareto_optimal(p: &MetricPoint, points: &[MetricPoint]) -> bool {
    !points.iter().any(|q| q.dominates(p))
}

/// Pareto-optimality of every point at once, in input order:
/// `pareto_flags(points)[i] == is_pareto_optimal(&points[i], points)`,
/// computed in one O(n log n) sweep instead of n linear scans (the
/// characterization figures mark a whole sweep per benchmark).
pub fn pareto_flags(points: &[MetricPoint]) -> Vec<bool> {
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&a, &b| {
        points[a]
            .time_s
            .total_cmp(&points[b].time_s)
            .then(points[a].energy_j.total_cmp(&points[b].energy_j))
    });
    let mut flags = vec![true; points.len()];
    // Minimum energy over all points with strictly smaller time.
    let mut prev_min = f64::INFINITY;
    let mut i = 0;
    while i < order.len() {
        // Group of time-equal points; sorted by energy, so the first
        // element carries the group minimum.
        let mut j = i;
        while j < order.len()
            && points[order[j]]
                .time_s
                .total_cmp(&points[order[i]].time_s)
                .is_eq()
        {
            j += 1;
        }
        let group_min = points[order[i]].energy_j;
        for &k in &order[i..j] {
            let p = &points[k];
            // A NaN time compares false against everything: undominated.
            if p.time_s.is_nan() {
                continue;
            }
            // Dominated by a strictly-faster point with no worse energy,
            // or by an equal-time point with strictly better energy.
            if prev_min <= p.energy_j || group_min < p.energy_j {
                flags[k] = false;
            }
        }
        if group_min < prev_min {
            prev_min = group_min;
        }
        i = j;
    }
    flags
}

#[cfg(test)]
mod tests {
    use super::*;
    use synergy_sim::ClockConfig;

    fn p(core: u32, t: f64, e: f64) -> MetricPoint {
        MetricPoint::new(ClockConfig::new(877, core), t, e)
    }

    #[test]
    fn simple_front() {
        let pts = vec![
            p(1, 1.0, 10.0),
            p(2, 2.0, 5.0),
            p(3, 3.0, 2.0),
            p(4, 2.5, 6.0), // dominated by (2.0, 5.0)
            p(5, 1.5, 12.0), // dominated by (1.0, 10.0)
        ];
        let front = pareto_front(&pts);
        let cores: Vec<u32> = front.iter().map(|q| q.clocks.core_mhz).collect();
        assert_eq!(cores, vec![1, 2, 3]);
    }

    #[test]
    fn front_is_sorted_and_monotone() {
        let pts = vec![p(1, 3.0, 1.0), p(2, 1.0, 3.0), p(3, 2.0, 2.0)];
        let front = pareto_front(&pts);
        assert_eq!(front.len(), 3);
        for w in front.windows(2) {
            assert!(w[0].time_s < w[1].time_s);
            assert!(w[0].energy_j > w[1].energy_j);
        }
    }

    #[test]
    fn duplicates_collapse() {
        let pts = vec![p(1, 1.0, 1.0), p(2, 1.0, 1.0), p(3, 1.0, 1.0)];
        assert_eq!(pareto_front(&pts).len(), 1);
        assert_eq!(pareto_indices(&pts), vec![0]);
    }

    #[test]
    fn single_point_is_front() {
        let pts = vec![p(1, 5.0, 5.0)];
        assert_eq!(pareto_front(&pts), pts);
        assert!(is_pareto_optimal(&pts[0], &pts));
    }

    #[test]
    fn empty_input() {
        assert!(pareto_front(&[]).is_empty());
        assert!(pareto_indices(&[]).is_empty());
    }

    #[test]
    fn indices_agree_with_front() {
        let pts = vec![
            p(1, 1.0, 10.0),
            p(2, 2.0, 5.0),
            p(3, 1.5, 12.0),
            p(4, 3.0, 2.0),
        ];
        let idx = pareto_indices(&pts);
        let mut from_idx: Vec<MetricPoint> = idx.iter().map(|&i| pts[i]).collect();
        from_idx.sort_by(|a, b| a.time_s.total_cmp(&b.time_s));
        assert_eq!(from_idx, pareto_front(&pts));
    }

    #[test]
    fn dominated_point_detected() {
        let pts = vec![p(1, 1.0, 1.0), p(2, 2.0, 2.0)];
        assert!(!is_pareto_optimal(&pts[1], &pts));
        assert!(is_pareto_optimal(&pts[0], &pts));
    }

    #[test]
    fn flags_match_per_point_scan() {
        let pts = vec![
            p(1, 1.0, 10.0),
            p(2, 2.0, 5.0),
            p(3, 3.0, 2.0),
            p(4, 2.5, 6.0),
            p(5, 1.5, 12.0),
            // Duplicates and axis ties: equal points do not dominate each
            // other, but strictly better same-time/same-energy points do.
            p(6, 2.0, 5.0),
            p(7, 2.0, 7.0),
            p(8, 4.0, 2.0),
        ];
        let flags = pareto_flags(&pts);
        for (i, q) in pts.iter().enumerate() {
            assert_eq!(flags[i], is_pareto_optimal(q, &pts), "index {i}");
        }
        assert_eq!(
            flags,
            vec![true, true, true, false, false, true, false, false]
        );
    }

    #[test]
    fn flags_empty_and_single() {
        assert!(pareto_flags(&[]).is_empty());
        assert_eq!(pareto_flags(&[p(1, 5.0, 5.0)]), vec![true]);
    }
}
