//! Energy targets (Section 5): scalar metrics that pick one Pareto-optimal
//! frequency configuration on the user's behalf.
//!
//! * `MAX_PERF` / `MIN_ENERGY` — the extremes of the tradeoff interval.
//! * `MIN_EDP`, `MIN_ED2P` — classic energy-delay products.
//! * `ES_x` — the best-performing configuration that realizes x% of the
//!   *potential* energy saving, where the potential is the gap between the
//!   default configuration's energy and the minimum achievable energy.
//!   `ES_100` is the minimum-energy configuration.
//! * `PL_x` — the most energy-efficient configuration whose performance
//!   loss is at most x% of the *potential* loss over the same interval
//!   (default-frequency time to minimum-energy-frequency time).

use crate::point::MetricPoint;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A user-selectable energy target for a kernel.
///
/// Targets round-trip through their paper spelling:
///
/// ```
/// use synergy_metrics::EnergyTarget;
///
/// let t: EnergyTarget = "ES_25".parse().unwrap();
/// assert_eq!(t, EnergyTarget::EnergySaving(25));
/// assert_eq!(t.to_string(), "ES_25");
/// assert_eq!(EnergyTarget::PAPER_SET.len(), 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EnergyTarget {
    /// Fastest configuration, ignoring energy.
    MaxPerf,
    /// Lowest-energy configuration, ignoring performance.
    MinEnergy,
    /// Minimize the energy-delay product `e·t`.
    MinEdp,
    /// Minimize the energy-delay-squared product `e·t²`.
    MinEd2p,
    /// Best performance subject to achieving `x`% of the potential energy
    /// saving (`ES_x`), `x` in `[0, 100]`.
    EnergySaving(u8),
    /// Best energy subject to losing at most `x`% of the potential
    /// performance (`PL_x`), `x` in `[0, 100]`.
    PerfLoss(u8),
}

impl EnergyTarget {
    /// The ten targets evaluated throughout the paper (Table 2, Figure 9).
    pub const PAPER_SET: [EnergyTarget; 10] = [
        EnergyTarget::MaxPerf,
        EnergyTarget::MinEnergy,
        EnergyTarget::MinEdp,
        EnergyTarget::MinEd2p,
        EnergyTarget::EnergySaving(25),
        EnergyTarget::EnergySaving(50),
        EnergyTarget::EnergySaving(75),
        EnergyTarget::PerfLoss(25),
        EnergyTarget::PerfLoss(50),
        EnergyTarget::PerfLoss(75),
    ];

    /// The scalar objective this target minimizes, when it is a plain
    /// argmin (None for the constrained ES/PL targets).
    pub fn objective(&self, p: &MetricPoint) -> Option<f64> {
        match self {
            EnergyTarget::MaxPerf => Some(p.time_s),
            EnergyTarget::MinEnergy => Some(p.energy_j),
            EnergyTarget::MinEdp => Some(p.edp()),
            EnergyTarget::MinEd2p => Some(p.ed2p()),
            _ => None,
        }
    }
}

impl fmt::Display for EnergyTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnergyTarget::MaxPerf => write!(f, "MAX_PERF"),
            EnergyTarget::MinEnergy => write!(f, "MIN_ENERGY"),
            EnergyTarget::MinEdp => write!(f, "MIN_EDP"),
            EnergyTarget::MinEd2p => write!(f, "MIN_ED2P"),
            EnergyTarget::EnergySaving(x) => write!(f, "ES_{x}"),
            EnergyTarget::PerfLoss(x) => write!(f, "PL_{x}"),
        }
    }
}

/// Error parsing an [`EnergyTarget`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTargetError(pub String);

impl fmt::Display for ParseTargetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown energy target `{}`", self.0)
    }
}

impl std::error::Error for ParseTargetError {}

impl FromStr for EnergyTarget {
    type Err = ParseTargetError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let up = s.trim().to_ascii_uppercase();
        match up.as_str() {
            "MAX_PERF" => return Ok(EnergyTarget::MaxPerf),
            "MIN_ENERGY" => return Ok(EnergyTarget::MinEnergy),
            "MIN_EDP" => return Ok(EnergyTarget::MinEdp),
            "MIN_ED2P" => return Ok(EnergyTarget::MinEd2p),
            _ => {}
        }
        let parse_pct = |rest: &str| -> Option<u8> {
            rest.parse::<u8>().ok().filter(|&x| x <= 100)
        };
        if let Some(rest) = up.strip_prefix("ES_") {
            if let Some(x) = parse_pct(rest) {
                return Ok(EnergyTarget::EnergySaving(x));
            }
        }
        if let Some(rest) = up.strip_prefix("PL_") {
            if let Some(x) = parse_pct(rest) {
                return Ok(EnergyTarget::PerfLoss(x));
            }
        }
        Err(ParseTargetError(s.to_string()))
    }
}

/// Select the configuration meeting `target` from `points`, judging energy
/// savings and performance loss against `baseline` (the default-frequency
/// point). Returns `None` only for an empty `points`.
pub fn select(
    target: EnergyTarget,
    points: &[MetricPoint],
    baseline: &MetricPoint,
) -> Option<MetricPoint> {
    if points.is_empty() {
        return None;
    }
    let argmin = |f: &dyn Fn(&MetricPoint) -> f64| -> MetricPoint {
        *points
            .iter()
            .min_by(|a, b| f(a).total_cmp(&f(b)))
            .expect("non-empty")
    };
    match target {
        EnergyTarget::MaxPerf => Some(argmin(&|p| p.time_s)),
        EnergyTarget::MinEnergy => Some(argmin(&|p| p.energy_j)),
        EnergyTarget::MinEdp => Some(argmin(&|p| p.edp())),
        EnergyTarget::MinEd2p => Some(argmin(&|p| p.ed2p())),
        EnergyTarget::EnergySaving(x) => {
            let e_min = points
                .iter()
                .map(|p| p.energy_j)
                .fold(f64::INFINITY, f64::min);
            let potential = (baseline.energy_j - e_min).max(0.0);
            let budget = baseline.energy_j - potential * x as f64 / 100.0;
            let feasible: Vec<MetricPoint> = points
                .iter()
                .filter(|p| p.energy_j <= budget + 1e-12)
                .copied()
                .collect();
            // The min-energy point always qualifies, so this is non-empty.
            feasible
                .iter()
                .min_by(|a, b| a.time_s.total_cmp(&b.time_s))
                .copied()
        }
        EnergyTarget::PerfLoss(x) => {
            let min_energy_point = argmin(&|p| p.energy_j);
            let potential = (min_energy_point.time_s - baseline.time_s).max(0.0);
            let allowance = baseline.time_s + potential * x as f64 / 100.0;
            let feasible: Vec<MetricPoint> = points
                .iter()
                .filter(|p| p.time_s <= allowance + 1e-12)
                .copied()
                .collect();
            if feasible.is_empty() {
                // Baseline itself is not in `points` and everything is
                // slower than the allowance: degrade gracefully to the
                // fastest configuration.
                return Some(argmin(&|p| p.time_s));
            }
            feasible
                .iter()
                .min_by(|a, b| a.energy_j.total_cmp(&b.energy_j))
                .copied()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synergy_sim::ClockConfig;

    fn p(core: u32, t: f64, e: f64) -> MetricPoint {
        MetricPoint::new(ClockConfig::new(877, core), t, e)
    }

    /// A synthetic sweep shaped like a real one: faster costs more energy
    /// above the knee; the baseline sits near (but not at) max perf.
    fn sweep() -> (Vec<MetricPoint>, MetricPoint) {
        let points = vec![
            p(400, 4.0, 8.0),
            p(600, 3.0, 6.0),
            p(800, 2.5, 5.0), // min energy
            p(1000, 2.2, 5.5),
            p(1200, 2.0, 6.5),
            p(1312, 1.9, 7.5), // baseline / default
            p(1530, 1.8, 9.0), // max perf
        ];
        let baseline = points[5];
        (points, baseline)
    }

    #[test]
    fn display_and_parse_roundtrip() {
        for t in EnergyTarget::PAPER_SET {
            let s = t.to_string();
            assert_eq!(s.parse::<EnergyTarget>().unwrap(), t, "{s}");
        }
        assert!("ES_101".parse::<EnergyTarget>().is_err());
        assert!("WHAT".parse::<EnergyTarget>().is_err());
        assert_eq!(
            "min_edp".parse::<EnergyTarget>().unwrap(),
            EnergyTarget::MinEdp
        );
    }

    #[test]
    fn extremes() {
        let (pts, base) = sweep();
        assert_eq!(
            select(EnergyTarget::MaxPerf, &pts, &base).unwrap().clocks.core_mhz,
            1530
        );
        assert_eq!(
            select(EnergyTarget::MinEnergy, &pts, &base).unwrap().clocks.core_mhz,
            800
        );
    }

    #[test]
    fn edp_family() {
        let (pts, base) = sweep();
        let edp = select(EnergyTarget::MinEdp, &pts, &base).unwrap();
        // argmin of e*t over the sweep: 800 -> 12.5, 1000 -> 12.1,
        // 1200 -> 13, so 1000 wins.
        assert_eq!(edp.clocks.core_mhz, 1000);
        let ed2p = select(EnergyTarget::MinEd2p, &pts, &base).unwrap();
        // ed2p favours speed: 1530 -> 29.16, 1312 -> 27.1, 1200 -> 26,
        // 1000 -> 26.6 => 1200.
        assert_eq!(ed2p.clocks.core_mhz, 1200);
    }

    #[test]
    fn es_semantics() {
        let (pts, base) = sweep();
        // potential saving = 7.5 - 5.0 = 2.5
        // ES_100: energy <= 5.0 -> only the 800 MHz point.
        let es100 = select(EnergyTarget::EnergySaving(100), &pts, &base).unwrap();
        assert_eq!(es100.clocks.core_mhz, 800);
        // ES_0: budget = baseline energy; fastest point under 7.5 J is 1312.
        let es0 = select(EnergyTarget::EnergySaving(0), &pts, &base).unwrap();
        assert_eq!(es0.clocks.core_mhz, 1312);
        // ES_50: budget = 7.5 - 1.25 = 6.25; feasible {400,600,800,1000};
        // fastest is 1000 MHz.
        let es50 = select(EnergyTarget::EnergySaving(50), &pts, &base).unwrap();
        assert_eq!(es50.clocks.core_mhz, 1000);
    }

    #[test]
    fn pl_semantics() {
        let (pts, base) = sweep();
        // min-energy point time = 2.5, baseline = 1.9: potential loss 0.6 s.
        // PL_0: allowance 1.9 -> {1312, 1530}; lower energy is 1312.
        let pl0 = select(EnergyTarget::PerfLoss(0), &pts, &base).unwrap();
        assert_eq!(pl0.clocks.core_mhz, 1312);
        // PL_100: allowance 2.5 -> includes 800; min energy = 800.
        let pl100 = select(EnergyTarget::PerfLoss(100), &pts, &base).unwrap();
        assert_eq!(pl100.clocks.core_mhz, 800);
        // PL_50: allowance 2.2 -> {1000,1200,1312,1530}; min energy = 1000.
        let pl50 = select(EnergyTarget::PerfLoss(50), &pts, &base).unwrap();
        assert_eq!(pl50.clocks.core_mhz, 1000);
    }

    #[test]
    fn es_monotone_in_x() {
        let (pts, base) = sweep();
        let mut prev_energy = f64::INFINITY;
        for x in [0u8, 25, 50, 75, 100] {
            let sel = select(EnergyTarget::EnergySaving(x), &pts, &base).unwrap();
            assert!(
                sel.energy_j <= prev_energy + 1e-12,
                "ES_{x} energy should not increase"
            );
            prev_energy = sel.energy_j;
        }
    }

    #[test]
    fn pl_monotone_in_x() {
        let (pts, base) = sweep();
        let mut prev_time = 0.0;
        for x in [0u8, 25, 50, 75, 100] {
            let sel = select(EnergyTarget::PerfLoss(x), &pts, &base).unwrap();
            assert!(
                sel.time_s >= prev_time - 1e-12,
                "PL_{x} time should not decrease"
            );
            prev_time = sel.time_s;
        }
    }

    #[test]
    fn empty_points_yield_none() {
        let base = p(1312, 1.0, 1.0);
        assert_eq!(select(EnergyTarget::MinEdp, &[], &base), None);
    }

    #[test]
    fn single_point_always_selected() {
        let only = p(800, 2.0, 2.0);
        let base = p(1312, 1.0, 3.0);
        for t in EnergyTarget::PAPER_SET {
            assert_eq!(select(t, &[only], &base), Some(only), "{t}");
        }
    }

    #[test]
    fn baseline_faster_than_min_energy_degenerate_interval() {
        // Min-energy config is *faster* than baseline: potential loss is
        // zero, every PL_x returns the best-energy point within baseline
        // time.
        let pts = vec![p(800, 1.5, 2.0), p(1312, 1.9, 7.5)];
        let base = pts[1];
        for x in [0u8, 50, 100] {
            let sel = select(EnergyTarget::PerfLoss(x), &pts, &base).unwrap();
            assert_eq!(sel.clocks.core_mhz, 800);
        }
    }
}
