//! A sorted/indexed sweep representation.
//!
//! The compile step and the accuracy bookkeeping repeatedly look up "the
//! point of this sweep at (or nearest to) these clocks" — once per target
//! per kernel. The plain [`point_at`](crate::point_at) helper is an O(n)
//! scan over the sweep; on a 196-configuration table queried for ten targets
//! across four algorithms and 23 benchmarks that scan dominates the
//! bookkeeping. [`IndexedSweep`] builds a binary-searchable index over the
//! points once and answers every subsequent lookup in O(log n), while
//! keeping the points in their **original order** so target selection
//! ([`select`]) iterates exactly like the unindexed path (ties resolve
//! identically).

use crate::point::MetricPoint;
use crate::targets::{select, EnergyTarget};
use synergy_sim::ClockConfig;

/// A metric sweep plus a binary-searchable (mem, core) index.
///
/// Lookups reproduce the linear-scan semantics of
/// [`point_at`](crate::point_at) bit for bit: the memory clock must match
/// exactly, the nearest core clock wins, and any tie (duplicate points, or
/// two cores equidistant from the query) resolves to the point that appears
/// first in the original sweep order.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexedSweep {
    /// Points in their original order (selection iterates over these).
    points: Vec<MetricPoint>,
    /// `(mem_mhz, core_mhz, first_original_index)` sorted by `(mem, core)`,
    /// deduplicated to the first occurrence per clock pair.
    index: Vec<(u32, u32, u32)>,
}

impl IndexedSweep {
    /// Index a sweep. O(n log n) once; lookups are O(log n) afterwards.
    pub fn new(points: Vec<MetricPoint>) -> IndexedSweep {
        let mut index: Vec<(u32, u32, u32)> = points
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clocks.mem_mhz, p.clocks.core_mhz, i as u32))
            .collect();
        // Sort by (mem, core, original index) then keep the first original
        // occurrence of each (mem, core) pair — that is the point the linear
        // scan would return for an exact hit.
        index.sort_unstable();
        index.dedup_by(|b, a| (a.0, a.1) == (b.0, b.1));
        IndexedSweep { points, index }
    }

    /// The underlying points, in their original sweep order.
    pub fn points(&self) -> &[MetricPoint] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the sweep holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The point at (or nearest in core clock to) `clocks`, binary-searched.
    ///
    /// Equivalent to [`point_at`](crate::point_at) on the original slice.
    pub fn point_at(&self, clocks: ClockConfig) -> Option<MetricPoint> {
        // Range of index entries with the queried memory clock.
        let lo = self
            .index
            .partition_point(|&(m, _, _)| m < clocks.mem_mhz);
        let hi = self
            .index
            .partition_point(|&(m, _, _)| m <= clocks.mem_mhz);
        let slice = &self.index[lo..hi];
        if slice.is_empty() {
            return None;
        }
        // First entry with core >= query; the best candidates are that entry
        // and its predecessor.
        let at = slice.partition_point(|&(_, c, _)| c < clocks.core_mhz);
        let mut best: Option<(u32, u32)> = None; // (abs_diff, original index)
        let cands = at.saturating_sub(1)..(at + 1).min(slice.len());
        for &(_, core, idx) in &slice[cands] {
            let d = core.abs_diff(clocks.core_mhz);
            // Strictly-better distance wins; on equal distance the linear
            // scan keeps whichever point came first in the sweep.
            let better = match best {
                None => true,
                Some((bd, bi)) => d < bd || (d == bd && idx < bi),
            };
            if better {
                best = Some((d, idx));
            }
        }
        best.map(|(_, idx)| self.points[idx as usize])
    }

    /// Run the target search against this sweep: equivalent to
    /// [`search_optimal`](crate::search_optimal) on the original slice, with
    /// the baseline lookup binary-searched instead of scanned.
    pub fn search(
        &self,
        target: EnergyTarget,
        baseline_clocks: ClockConfig,
    ) -> Option<MetricPoint> {
        let baseline = self.point_at(baseline_clocks)?;
        select(target, &self.points, &baseline)
    }

    /// Absolute percentage error of a predicted optimal frequency against
    /// this (measured) sweep — the indexed equivalent of
    /// [`frequency_ape`](crate::frequency_ape).
    pub fn frequency_ape(
        &self,
        target: EnergyTarget,
        baseline_clocks: ClockConfig,
        predicted_clocks: ClockConfig,
    ) -> Option<f64> {
        let actual_opt = self.search(target, baseline_clocks)?;
        let at_predicted = self.point_at(predicted_clocks)?;
        let actual = crate::search::objective_value(target, &actual_opt);
        let predicted = crate::search::objective_value(target, &at_predicted);
        if actual == 0.0 {
            return Some(0.0);
        }
        Some(((predicted - actual) / actual).abs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{frequency_ape, point_at, search_optimal};

    fn p(mem: u32, core: u32, t: f64, e: f64) -> MetricPoint {
        MetricPoint::new(ClockConfig::new(mem, core), t, e)
    }

    fn two_dim_sweep() -> Vec<MetricPoint> {
        let mut pts = Vec::new();
        for &mem in &[405u32, 877] {
            for (i, &core) in [400u32, 600, 800, 1000, 1200, 1312, 1530].iter().enumerate() {
                let t = 4.0 - 0.3 * i as f64 + if mem == 405 { 0.4 } else { 0.0 };
                let e = 8.0 - 0.5 * i as f64 + 0.09 * (i * i) as f64;
                pts.push(p(mem, core, t, e));
            }
        }
        pts
    }

    #[test]
    fn matches_linear_point_at_everywhere() {
        let pts = two_dim_sweep();
        let idx = IndexedSweep::new(pts.clone());
        for mem in [400u32, 405, 877, 900] {
            for core in (350..1600).step_by(7) {
                let q = ClockConfig::new(mem, core);
                assert_eq!(idx.point_at(q), point_at(&pts, q), "query {q:?}");
            }
        }
    }

    #[test]
    fn matches_linear_search_for_all_targets() {
        let pts = two_dim_sweep();
        let idx = IndexedSweep::new(pts.clone());
        let base = ClockConfig::new(877, 1312);
        for t in EnergyTarget::PAPER_SET {
            assert_eq!(idx.search(t, base), search_optimal(t, &pts, base), "{t}");
        }
    }

    #[test]
    fn matches_linear_ape() {
        let pts = two_dim_sweep();
        let idx = IndexedSweep::new(pts.clone());
        let base = ClockConfig::new(877, 1312);
        for t in EnergyTarget::PAPER_SET {
            for &pred in &[400u32, 800, 1530] {
                let q = ClockConfig::new(877, pred);
                assert_eq!(
                    idx.frequency_ape(t, base, q),
                    frequency_ape(t, &pts, base, q),
                    "{t} @ {pred}"
                );
            }
        }
    }

    #[test]
    fn tie_breaks_like_linear_scan() {
        // 700 is equidistant from 600 and 800; the scan keeps the earlier
        // point in sweep order. Exercise both orderings.
        for flip in [false, true] {
            let mut pts = vec![p(877, 600, 3.0, 6.0), p(877, 800, 2.5, 5.0)];
            if flip {
                pts.reverse();
            }
            let idx = IndexedSweep::new(pts.clone());
            let q = ClockConfig::new(877, 700);
            assert_eq!(idx.point_at(q), point_at(&pts, q), "flip={flip}");
        }
    }

    #[test]
    fn duplicate_points_resolve_to_first() {
        let pts = vec![
            p(877, 800, 2.5, 5.0),
            p(877, 800, 9.9, 9.9), // duplicate clocks, later in order
        ];
        let idx = IndexedSweep::new(pts.clone());
        let q = ClockConfig::new(877, 800);
        assert_eq!(idx.point_at(q), point_at(&pts, q));
        assert_eq!(idx.point_at(q).unwrap().time_s, 2.5);
    }

    #[test]
    fn empty_and_wrong_mem() {
        let idx = IndexedSweep::new(Vec::new());
        assert!(idx.is_empty());
        assert_eq!(idx.point_at(ClockConfig::new(877, 800)), None);
        let idx = IndexedSweep::new(vec![p(877, 800, 1.0, 1.0)]);
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.point_at(ClockConfig::new(900, 800)), None);
        assert_eq!(idx.search(EnergyTarget::MinEdp, ClockConfig::new(900, 800)), None);
    }
}
