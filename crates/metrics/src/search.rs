//! Frequency search (step ⑥ of the paper's Figure 6) and the paper's
//! prediction-accuracy bookkeeping.
//!
//! Given per-frequency metric predictions for a new kernel, the search picks
//! the frequency configuration that realizes a user target. Accuracy is then
//! judged the way Section 8.3 defines it: *"the error metrics are not
//! between the predicted and actual objectives ... but between the predicted
//! and actual optimal frequency. The actual value is one objective obtained
//! from the training set according to the actual optimal frequency. The
//! predicted value is the same objective obtained from the training set but
//! corresponds to the predicted optimal frequency."*

use crate::point::MetricPoint;
use crate::targets::{select, EnergyTarget};
use synergy_sim::ClockConfig;

/// The scalar objective the paper reads off for a target when scoring a
/// predicted frequency: time for performance-flavoured targets, energy for
/// energy-flavoured ones, the product for EDP/ED2P.
pub fn objective_value(target: EnergyTarget, p: &MetricPoint) -> f64 {
    match target {
        EnergyTarget::MaxPerf | EnergyTarget::PerfLoss(_) => p.time_s,
        EnergyTarget::MinEnergy | EnergyTarget::EnergySaving(_) => p.energy_j,
        EnergyTarget::MinEdp => p.edp(),
        EnergyTarget::MinEd2p => p.ed2p(),
    }
}

/// Find the point of a sweep at (or nearest in core clock to) `clocks`.
pub fn point_at(points: &[MetricPoint], clocks: ClockConfig) -> Option<MetricPoint> {
    points
        .iter()
        .filter(|p| p.clocks.mem_mhz == clocks.mem_mhz)
        .min_by_key(|p| p.clocks.core_mhz.abs_diff(clocks.core_mhz))
        .copied()
}

/// Run the target search over a (predicted or measured) sweep.
///
/// The baseline for ES/PL semantics is the sweep's own point at
/// `baseline_clocks` (nearest core clock). Returns the selected point.
pub fn search_optimal(
    target: EnergyTarget,
    sweep: &[MetricPoint],
    baseline_clocks: ClockConfig,
) -> Option<MetricPoint> {
    let baseline = point_at(sweep, baseline_clocks)?;
    select(target, sweep, &baseline)
}

/// Absolute percentage error of a *predicted* optimal frequency, evaluated
/// on the measured sweep per the paper's definition. Returns `0.0` when the
/// predicted frequency coincides with the measured optimum.
pub fn frequency_ape(
    target: EnergyTarget,
    measured: &[MetricPoint],
    baseline_clocks: ClockConfig,
    predicted_clocks: ClockConfig,
) -> Option<f64> {
    let actual_opt = search_optimal(target, measured, baseline_clocks)?;
    let at_predicted = point_at(measured, predicted_clocks)?;
    let actual = objective_value(target, &actual_opt);
    let predicted = objective_value(target, &at_predicted);
    if actual == 0.0 {
        return Some(0.0);
    }
    Some(((predicted - actual) / actual).abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(core: u32, t: f64, e: f64) -> MetricPoint {
        MetricPoint::new(ClockConfig::new(877, core), t, e)
    }

    fn sweep() -> Vec<MetricPoint> {
        vec![
            p(400, 4.0, 8.0),
            p(600, 3.0, 6.0),
            p(800, 2.5, 5.0),
            p(1000, 2.2, 5.5),
            p(1200, 2.0, 6.5),
            p(1312, 1.9, 7.5),
            p(1530, 1.8, 9.0),
        ]
    }

    #[test]
    fn point_at_exact_and_nearest() {
        let s = sweep();
        assert_eq!(point_at(&s, ClockConfig::new(877, 800)).unwrap().clocks.core_mhz, 800);
        assert_eq!(point_at(&s, ClockConfig::new(877, 790)).unwrap().clocks.core_mhz, 800);
        assert_eq!(point_at(&s, ClockConfig::new(900, 800)), None, "wrong mem clock");
    }

    #[test]
    fn search_uses_sweep_baseline() {
        let s = sweep();
        let opt = search_optimal(
            EnergyTarget::EnergySaving(100),
            &s,
            ClockConfig::new(877, 1312),
        )
        .unwrap();
        assert_eq!(opt.clocks.core_mhz, 800);
    }

    #[test]
    fn perfect_prediction_has_zero_ape() {
        let s = sweep();
        let base = ClockConfig::new(877, 1312);
        for target in EnergyTarget::PAPER_SET {
            let opt = search_optimal(target, &s, base).unwrap();
            let ape = frequency_ape(target, &s, base, opt.clocks).unwrap();
            assert_eq!(ape, 0.0, "{target}");
        }
    }

    #[test]
    fn wrong_prediction_has_positive_ape() {
        let s = sweep();
        let base = ClockConfig::new(877, 1312);
        // Predicting f_min for MAX_PERF: time 4.0 vs optimal 1.8.
        let ape = frequency_ape(
            EnergyTarget::MaxPerf,
            &s,
            base,
            ClockConfig::new(877, 400),
        )
        .unwrap();
        assert!((ape - (4.0 - 1.8) / 1.8).abs() < 1e-12);
    }

    #[test]
    fn objective_values_match_target_flavour() {
        let q = p(1000, 2.0, 3.0);
        assert_eq!(objective_value(EnergyTarget::MaxPerf, &q), 2.0);
        assert_eq!(objective_value(EnergyTarget::PerfLoss(50), &q), 2.0);
        assert_eq!(objective_value(EnergyTarget::MinEnergy, &q), 3.0);
        assert_eq!(objective_value(EnergyTarget::EnergySaving(25), &q), 3.0);
        assert_eq!(objective_value(EnergyTarget::MinEdp, &q), 6.0);
        assert_eq!(objective_value(EnergyTarget::MinEd2p, &q), 12.0);
    }

    #[test]
    fn empty_sweep_yields_none() {
        assert_eq!(
            search_optimal(EnergyTarget::MinEdp, &[], ClockConfig::new(877, 1312)),
            None
        );
    }
}
