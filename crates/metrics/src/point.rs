//! Measured (or predicted) metric points: one frequency configuration with
//! its execution time and energy, plus the derived energy-delay products.

use serde::{Deserialize, Serialize};
use synergy_sim::ClockConfig;

/// One (frequency, time, energy) observation for a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricPoint {
    /// The clock configuration the kernel ran (or would run) at.
    pub clocks: ClockConfig,
    /// Execution time in seconds.
    pub time_s: f64,
    /// Energy in joules.
    pub energy_j: f64,
}

impl MetricPoint {
    /// Construct a point.
    pub fn new(clocks: ClockConfig, time_s: f64, energy_j: f64) -> Self {
        MetricPoint {
            clocks,
            time_s,
            energy_j,
        }
    }

    /// Energy-delay product `e·t` (Horowitz et al.).
    pub fn edp(&self) -> f64 {
        self.energy_j * self.time_s
    }

    /// Energy-delay-squared product `e·t²`, weighting performance more.
    pub fn ed2p(&self) -> f64 {
        self.energy_j * self.time_s * self.time_s
    }

    /// Speedup relative to a baseline point (>1 means faster).
    pub fn speedup_vs(&self, baseline: &MetricPoint) -> f64 {
        baseline.time_s / self.time_s
    }

    /// Energy normalized to a baseline point (<1 means saving).
    pub fn normalized_energy_vs(&self, baseline: &MetricPoint) -> f64 {
        self.energy_j / baseline.energy_j
    }

    /// Pareto dominance for (minimize time, minimize energy): true when
    /// `self` is no worse on both axes and strictly better on at least one.
    pub fn dominates(&self, other: &MetricPoint) -> bool {
        (self.time_s <= other.time_s && self.energy_j <= other.energy_j)
            && (self.time_s < other.time_s || self.energy_j < other.energy_j)
    }

    /// All fields finite and positive — a sanity gate for model output.
    pub fn is_physical(&self) -> bool {
        self.time_s.is_finite()
            && self.energy_j.is_finite()
            && self.time_s > 0.0
            && self.energy_j > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(core: u32, t: f64, e: f64) -> MetricPoint {
        MetricPoint::new(ClockConfig::new(877, core), t, e)
    }

    #[test]
    fn derived_products() {
        let a = p(1000, 2.0, 3.0);
        assert_eq!(a.edp(), 6.0);
        assert_eq!(a.ed2p(), 12.0);
    }

    #[test]
    fn speedup_and_normalized_energy() {
        let base = p(1312, 2.0, 10.0);
        let a = p(1530, 1.0, 12.0);
        assert_eq!(a.speedup_vs(&base), 2.0);
        assert_eq!(a.normalized_energy_vs(&base), 1.2);
    }

    #[test]
    fn dominance() {
        let a = p(1, 1.0, 1.0);
        let b = p(2, 2.0, 2.0);
        let c = p(3, 1.0, 2.0);
        let d = p(4, 1.0, 1.0);
        assert!(a.dominates(&b));
        assert!(a.dominates(&c));
        assert!(!a.dominates(&d), "equal points do not dominate");
        assert!(!b.dominates(&a));
        assert!(!c.dominates(&b) || b.time_s > c.time_s);
    }

    #[test]
    fn physicality() {
        assert!(p(1, 1.0, 1.0).is_physical());
        assert!(!p(1, 0.0, 1.0).is_physical());
        assert!(!p(1, f64::NAN, 1.0).is_physical());
        assert!(!p(1, 1.0, f64::INFINITY).is_physical());
    }
}
