#!/usr/bin/env bash
# Tier-1 verification: build, test, compile the criterion benches, and
# regenerate experiments/BENCH_pipeline.json with the CI-sized suite so the
# compile-time pipeline's perf trajectory is tracked on every PR.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings
cargo bench --workspace --no-run
cargo run --release -p synergy-bench --bin pipeline_perf -- --small
