#!/usr/bin/env bash
# Tier-1 verification: build, test, compile the criterion benches,
# regenerate experiments/BENCH_pipeline.json and BENCH_serve.json with the
# CI-sized configurations so the compile-time pipeline's and the serving
# path's perf trajectories are tracked on every PR, and smoke-test the
# `synergy trace` exporter and the `synergy serve` daemon.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings
cargo bench --workspace --no-run
cargo run --release -p synergy-bench --bin pipeline_perf -- --small
cargo run --release -p synergy-bench --bin serve_perf -- --small
cargo run --release -p synergy-bench --bin fleet_perf -- --small

# Perf-regression gate: diff the headline counters of the runs above
# against the previous same-parameter line in bench_history.jsonl.
# A fresh clone has no baseline yet — the diff skips cleanly and the
# gate arms itself on the next run. Tolerance is loose (35%) because
# CI boxes are noisy; the default 10% is for interactive use.
for suite in pipeline serve fleet; do
  target/release/synergy bench "$suite" --no-run --tolerance 35
done

# Static-analysis ratchet: the whole suite x every device must analyze
# clean against the grandfathered baseline — any new finding (or baseline
# drift) fails the gate. The SARIF artifact is what CI annotators consume.
analyze_out="$(mktemp -t synergy-analyze-XXXXXX.sarif)"
target/release/synergy analyze --all --device all --format sarif \
  --out "$analyze_out" --baseline experiments/lint_baseline.json
grep -q '"version":"2.1.0"' "$analyze_out"
rm -f "$analyze_out"

# Unsafe audit: every `unsafe` block or fn in the workspace must carry a
# `// SAFETY:` comment on an adjacent preceding line.
python3 - <<'EOF'
import pathlib, re, sys
bad = []
for path in pathlib.Path("crates").rglob("*.rs"):
    lines = path.read_text().splitlines()
    for i, line in enumerate(lines):
        code = line.split("//")[0]
        if not re.search(r"\bunsafe\b\s*(\{|fn\b)", code):
            continue
        window = lines[max(0, i - 6):i]
        if not any("SAFETY:" in w for w in window):
            bad.append(f"{path}:{i + 1}: unsafe without a // SAFETY: comment")
print("\n".join(bad) or "unsafe audit: every unsafe block documents its safety argument")
sys.exit(1 if bad else 0)
EOF

# The batched inference engine must report its throughput fields and be at
# least as fast as the per-config reference on the full V/F grid, and the
# flat training engine must report its cold-fit time and never be slower
# than the reference trainers it bit-for-bit reproduces.
python3 - <<'EOF'
import json
with open("experiments/BENCH_pipeline.json") as f:
    perf = json.load(f)
for field in (
    "predict_rows_per_sec_serial",
    "predict_rows_per_sec_batch",
    "predict_batch_speedup",
    "train_cold_s",
    "train_speedup",
):
    assert field in perf, f"BENCH_pipeline.json missing {field}"
    assert perf[field] > 0.0, f"{field} must be positive, got {perf[field]}"
speedup = perf["predict_batch_speedup"]
assert speedup >= 1.0, f"batched prediction slower than per-config path: {speedup:.2f}x"
print(f"predict_batch_speedup {speedup:.2f}x over {perf['predict_grid_configs']} configs")
train_speedup = perf["train_speedup"]
assert train_speedup >= 1.0, \
    f"flat training engine slower than the reference trainers: {train_speedup:.2f}x"
print(f"train_speedup {train_speedup:.2f}x "
      f"(cold fit {perf['train_cold_s'] * 1e3:.1f} ms)")
EOF

# The serve load test must report the client count, tail latency, the
# accept-to-first-byte percentiles and the measured live-metrics
# overhead, and must have answered everything.
python3 - <<'EOF'
import json
with open("experiments/BENCH_serve.json") as f:
    perf = json.load(f)
for field in ("clients", "p99_ms", "first_byte_p50_ms", "first_byte_p99_ms",
              "metrics_overhead_pct"):
    assert field in perf, f"BENCH_serve.json missing {field}"
assert perf["clients"] > 0, "serve_perf must record the simulated client count"
assert perf["dropped"] == 0 and perf["mismatched"] == 0, \
    f"serve_perf dropped {perf['dropped']}, mismatched {perf['mismatched']}"
assert perf["metrics_overhead_pct"] >= 0.0, \
    "metrics_overhead_pct must be a clamped percentage"
print(f"serve_perf: {perf['clients']} clients, p99 {perf['p99_ms']:.2f} ms, "
      f"first byte p99 {perf['first_byte_p99_ms']:.2f} ms, "
      f"metrics overhead {perf['metrics_overhead_pct']:.2f}%")
with open("experiments/bench_history.jsonl") as f:
    lines = [json.loads(l) for l in f if l.strip()]
assert any(l.get("bench") == "serve_perf" for l in lines), \
    "bench_history.jsonl missing a serve_perf line"
assert any(l.get("bench") == "pipeline_perf" for l in lines), \
    "bench_history.jsonl missing a pipeline_perf line"
EOF

# The fleet load test must have run its node-count ladder plus the
# preemption (volatility) pass with nothing dropped or mismatched
# anywhere, and the coordinator must actually have preempted a node.
python3 - <<'EOF'
import json
with open("experiments/BENCH_fleet.json") as f:
    perf = json.load(f)
for field in ("node_counts", "scaling_max", "passes"):
    assert field in perf, f"BENCH_fleet.json missing {field}"
assert len(perf["passes"]) == len(perf["node_counts"]) + 1, \
    "expected one pass per node count plus the volatility pass"
for p in perf["passes"]:
    assert p["dropped"] == 0 and p["mismatched"] == 0, \
        f"fleet pass at {p['nodes']} nodes dropped {p['dropped']}, " \
        f"mismatched {p['mismatched']}"
    assert p["answered"] == p["total_requests"] - p["expired"], \
        f"fleet pass at {p['nodes']} nodes lost accepted requests"
vol = perf["passes"][-1]
assert vol["volatility"] and vol["preemptions"] > 0, \
    "the volatility pass never preempted a node"
print(f"fleet_perf: ladder {perf['node_counts']}, "
      f"scaling {perf['scaling_max']:.2f}x, volatility pass answered "
      f"{vol['answered']}/{vol['total_requests']} with "
      f"{vol['reassigned']} reassigned")
with open("experiments/bench_history.jsonl") as f:
    lines = [json.loads(l) for l in f if l.strip()]
assert any(l.get("bench") == "fleet_perf" for l in lines), \
    "bench_history.jsonl missing a fleet_perf line"
EOF

# Smoke test: one benchmark through the traced pipeline; the exported
# Chrome trace must be non-trivial JSON.
trace_out="$(mktemp -t synergy-trace-XXXXXX.json)"
trap 'rm -f "$trace_out"' EXIT
cargo run --release -p synergy-cli --bin synergy -- \
  trace vec_add --device v100 --out "$trace_out" --summary
grep -q '"traceEvents"' "$trace_out"

# Smoke test: start the daemon on an ephemeral port, serve one request,
# scrape the live metrics plane mid-run in both formats, drain, and
# check it exits cleanly with final counters and a final snapshot.
serve_out="$(mktemp -t synergy-serve-XXXXXX.log)"
metrics_out="$(mktemp -t synergy-metrics-XXXXXX.om)"
trap 'rm -f "$trace_out" "$serve_out" "$metrics_out"' EXIT
cargo run --release -p synergy-cli --bin synergy -- \
  serve --small --addr 127.0.0.1:0 --workers 2 > "$serve_out" &
serve_pid=$!
for _ in $(seq 1 100); do
  grep -q '^listening on ' "$serve_out" && break
  sleep 0.1
done
serve_addr="$(sed -n 's/^listening on //p' "$serve_out")"
synergy_bin=target/release/synergy
"$synergy_bin" request ping --addr "$serve_addr"
"$synergy_bin" request compile vec_add --device v100 --targets ES_50 --addr "$serve_addr"
"$synergy_bin" metrics "$serve_addr" --format openmetrics > "$metrics_out"
grep -q '^# EOF$' "$metrics_out"
"$synergy_bin" metrics "$serve_addr" --format json | python3 - <<'EOF'
import json, sys
snap = json.load(sys.stdin)
kinds = {tuple(tuple(l) for l in s["labels"]): s["value"]
         for s in snap["counters"] if s["name"] == "synergy_requests_total"}
total = sum(kinds.values())
assert total > 0, "mid-run scrape saw no requests"
assert kinds.get((("kind", "ping"),)) == 1.0, f"ping counter wrong: {kinds}"
assert kinds.get((("kind", "compile"),)) == 1.0, f"compile counter wrong: {kinds}"
print(f"daemon metrics scrape: {int(total)} requests counted across "
      f"{len(kinds)} kinds")
EOF
"$synergy_bin" request drain --addr "$serve_addr"
wait "$serve_pid"
grep -q '^drained: ' "$serve_out"
python3 -c 'import json; json.load(open("experiments/metrics_final.json"))'

# Fleet e2e smoke: a coordinator over three daemons; kill one with
# SIGKILL while chunked sweeps are in flight. Every accepted sweep must
# still exit 0 (orphaned chunks complete elsewhere), the roster and the
# fleet cost rollup must render, and the coordinator must drain cleanly.
fleet_out="$(mktemp -t synergy-fleet-XXXXXX.log)"
node_logs=()
node_pids=()
node_addrs=()
trap 'rm -f "$trace_out" "$serve_out" "$metrics_out" "$fleet_out" "${node_logs[@]:-}"' EXIT
for i in 1 2 3; do
  node_log="$(mktemp -t synergy-fleet-node${i}-XXXXXX.log)"
  node_logs+=("$node_log")
  "$synergy_bin" serve --small --addr 127.0.0.1:0 --workers 2 > "$node_log" &
  node_pids+=($!)
done
for node_log in "${node_logs[@]}"; do
  for _ in $(seq 1 100); do
    grep -q '^listening on ' "$node_log" && break
    sleep 0.1
  done
  node_addrs+=("$(sed -n 's/^listening on //p' "$node_log")")
done
"$synergy_bin" fleet --addr 127.0.0.1:0 \
  --node "${node_addrs[0]}" --node "${node_addrs[1]}" --node "${node_addrs[2]}" \
  --heartbeat 50 --dead-after 400 --sweep-chunk 16 > "$fleet_out" &
fleet_pid=$!
for _ in $(seq 1 100); do
  grep -q '^fleet listening on ' "$fleet_out" && break
  sleep 0.1
done
fleet_addr="$(sed -n 's/^fleet listening on //p' "$fleet_out")"
"$synergy_bin" request ping --addr "$fleet_addr"
sweep_pids=()
sweep_logs=()
for bench in mat_mul sobel3 vec_add black_scholes; do
  sweep_log="$(mktemp -t synergy-fleet-sweep-XXXXXX.log)"
  sweep_logs+=("$sweep_log")
  "$synergy_bin" request sweep "$bench" --device v100 \
    --addr "$fleet_addr" --deadline 60000 --retries 1000 > "$sweep_log" &
  sweep_pids+=($!)
done
# Yank the third node mid-sweep: no drain, no goodbye.
kill -9 "${node_pids[2]}"
wait "${node_pids[2]}" 2>/dev/null || true
for pid in "${sweep_pids[@]}"; do
  wait "$pid"   # set -e: a dropped or errored sweep fails the gate here
done
for sweep_log in "${sweep_logs[@]}"; do
  grep -q 'Pareto points' "$sweep_log"
done
"$synergy_bin" request nodes --addr "$fleet_addr" | grep -q 'node(s)'
"$synergy_bin" metrics "$fleet_addr" --fleet | grep -q 'fleet cost rollup'
"$synergy_bin" request drain --addr "$fleet_addr"
wait "$fleet_pid"
grep -q '^drained: ' "$fleet_out"
for i in 0 1; do
  "$synergy_bin" request drain --addr "${node_addrs[$i]}"
  wait "${node_pids[$i]}"
done
rm -f "${sweep_logs[@]}"
echo "fleet e2e smoke: survived a SIGKILL mid-sweep with zero drops"
