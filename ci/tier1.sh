#!/usr/bin/env bash
# Tier-1 verification: build, test, compile the criterion benches,
# regenerate experiments/BENCH_pipeline.json with the CI-sized suite so the
# compile-time pipeline's perf trajectory (and telemetry overhead) is
# tracked on every PR, and smoke-test the `synergy trace` exporter.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings
cargo bench --workspace --no-run
cargo run --release -p synergy-bench --bin pipeline_perf -- --small

# Smoke test: one benchmark through the traced pipeline; the exported
# Chrome trace must be non-trivial JSON.
trace_out="$(mktemp -t synergy-trace-XXXXXX.json)"
trap 'rm -f "$trace_out"' EXIT
cargo run --release -p synergy-cli --bin synergy -- \
  trace vec_add --device v100 --out "$trace_out" --summary
grep -q '"traceEvents"' "$trace_out"
