#!/usr/bin/env bash
# Tier-1 verification: build, test, compile the criterion benches,
# regenerate experiments/BENCH_pipeline.json and BENCH_serve.json with the
# CI-sized configurations so the compile-time pipeline's and the serving
# path's perf trajectories are tracked on every PR, and smoke-test the
# `synergy trace` exporter and the `synergy serve` daemon.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings
cargo bench --workspace --no-run
cargo run --release -p synergy-bench --bin pipeline_perf -- --small
cargo run --release -p synergy-bench --bin serve_perf -- --small

# Static-analysis ratchet: the whole suite x every device must analyze
# clean against the grandfathered baseline — any new finding (or baseline
# drift) fails the gate. The SARIF artifact is what CI annotators consume.
analyze_out="$(mktemp -t synergy-analyze-XXXXXX.sarif)"
target/release/synergy analyze --all --device all --format sarif \
  --out "$analyze_out" --baseline experiments/lint_baseline.json
grep -q '"version":"2.1.0"' "$analyze_out"
rm -f "$analyze_out"

# Unsafe audit: every `unsafe` block or fn in the workspace must carry a
# `// SAFETY:` comment on an adjacent preceding line.
python3 - <<'EOF'
import pathlib, re, sys
bad = []
for path in pathlib.Path("crates").rglob("*.rs"):
    lines = path.read_text().splitlines()
    for i, line in enumerate(lines):
        code = line.split("//")[0]
        if not re.search(r"\bunsafe\b\s*(\{|fn\b)", code):
            continue
        window = lines[max(0, i - 6):i]
        if not any("SAFETY:" in w for w in window):
            bad.append(f"{path}:{i + 1}: unsafe without a // SAFETY: comment")
print("\n".join(bad) or "unsafe audit: every unsafe block documents its safety argument")
sys.exit(1 if bad else 0)
EOF

# The batched inference engine must report its throughput fields and be at
# least as fast as the per-config reference on the full V/F grid.
python3 - <<'EOF'
import json
with open("experiments/BENCH_pipeline.json") as f:
    perf = json.load(f)
for field in (
    "predict_rows_per_sec_serial",
    "predict_rows_per_sec_batch",
    "predict_batch_speedup",
):
    assert field in perf, f"BENCH_pipeline.json missing {field}"
    assert perf[field] > 0.0, f"{field} must be positive, got {perf[field]}"
speedup = perf["predict_batch_speedup"]
assert speedup >= 1.0, f"batched prediction slower than per-config path: {speedup:.2f}x"
print(f"predict_batch_speedup {speedup:.2f}x over {perf['predict_grid_configs']} configs")
EOF

# The serve load test must report the client count, tail latency, the
# accept-to-first-byte percentiles and the measured live-metrics
# overhead, and must have answered everything.
python3 - <<'EOF'
import json
with open("experiments/BENCH_serve.json") as f:
    perf = json.load(f)
for field in ("clients", "p99_ms", "first_byte_p50_ms", "first_byte_p99_ms",
              "metrics_overhead_pct"):
    assert field in perf, f"BENCH_serve.json missing {field}"
assert perf["clients"] > 0, "serve_perf must record the simulated client count"
assert perf["dropped"] == 0 and perf["mismatched"] == 0, \
    f"serve_perf dropped {perf['dropped']}, mismatched {perf['mismatched']}"
assert perf["metrics_overhead_pct"] >= 0.0, \
    "metrics_overhead_pct must be a clamped percentage"
print(f"serve_perf: {perf['clients']} clients, p99 {perf['p99_ms']:.2f} ms, "
      f"first byte p99 {perf['first_byte_p99_ms']:.2f} ms, "
      f"metrics overhead {perf['metrics_overhead_pct']:.2f}%")
with open("experiments/bench_history.jsonl") as f:
    lines = [json.loads(l) for l in f if l.strip()]
assert any(l.get("bench") == "serve_perf" for l in lines), \
    "bench_history.jsonl missing a serve_perf line"
assert any(l.get("bench") == "pipeline_perf" for l in lines), \
    "bench_history.jsonl missing a pipeline_perf line"
EOF

# Smoke test: one benchmark through the traced pipeline; the exported
# Chrome trace must be non-trivial JSON.
trace_out="$(mktemp -t synergy-trace-XXXXXX.json)"
trap 'rm -f "$trace_out"' EXIT
cargo run --release -p synergy-cli --bin synergy -- \
  trace vec_add --device v100 --out "$trace_out" --summary
grep -q '"traceEvents"' "$trace_out"

# Smoke test: start the daemon on an ephemeral port, serve one request,
# scrape the live metrics plane mid-run in both formats, drain, and
# check it exits cleanly with final counters and a final snapshot.
serve_out="$(mktemp -t synergy-serve-XXXXXX.log)"
metrics_out="$(mktemp -t synergy-metrics-XXXXXX.om)"
trap 'rm -f "$trace_out" "$serve_out" "$metrics_out"' EXIT
cargo run --release -p synergy-cli --bin synergy -- \
  serve --small --addr 127.0.0.1:0 --workers 2 > "$serve_out" &
serve_pid=$!
for _ in $(seq 1 100); do
  grep -q '^listening on ' "$serve_out" && break
  sleep 0.1
done
serve_addr="$(sed -n 's/^listening on //p' "$serve_out")"
synergy_bin=target/release/synergy
"$synergy_bin" request ping --addr "$serve_addr"
"$synergy_bin" request compile vec_add --device v100 --targets ES_50 --addr "$serve_addr"
"$synergy_bin" metrics "$serve_addr" --format openmetrics > "$metrics_out"
grep -q '^# EOF$' "$metrics_out"
"$synergy_bin" metrics "$serve_addr" --format json | python3 - <<'EOF'
import json, sys
snap = json.load(sys.stdin)
kinds = {tuple(tuple(l) for l in s["labels"]): s["value"]
         for s in snap["counters"] if s["name"] == "synergy_requests_total"}
total = sum(kinds.values())
assert total > 0, "mid-run scrape saw no requests"
assert kinds.get((("kind", "ping"),)) == 1.0, f"ping counter wrong: {kinds}"
assert kinds.get((("kind", "compile"),)) == 1.0, f"compile counter wrong: {kinds}"
print(f"daemon metrics scrape: {int(total)} requests counted across "
      f"{len(kinds)} kinds")
EOF
"$synergy_bin" request drain --addr "$serve_addr"
wait "$serve_pid"
grep -q '^drained: ' "$serve_out"
python3 -c 'import json; json.load(open("experiments/metrics_final.json"))'
